"""Lockstep execution of K same-shape co-simulations on one kernel batch.

:func:`run_cosim_batch` builds one :class:`~repro.engine.network.SimdBatch`
with K lanes, one full :class:`~repro.core.cosim.CoSimulator` per lane
(each with its own system, feedback table, and quantum bookkeeping), and
advances them window by window in *global lockstep*: every lane runs its
system phase and flushes its messages, then the shared batch steps once
to the window boundary (the first lane's ``advance`` does the kernel
work; the rest see the clock already there and no-op), then every lane
collects its deliveries.  Per-lane results are bit-identical to running
each config alone through the batched engine — the heterogeneity between
lanes (seed, app, CMP parameters) lives entirely in the per-lane systems.

Lanes may finish at different times.  A finished lane's system stops;
its empty lane rides along in the shared arrays (masked work only) while
the remaining lanes drain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.config import TargetConfig, build_cosim
from ..core.cosim import CoSimResult, CoSimulator
from ..errors import ConfigError, SimulationError
from .api import EngineDecision, KERNEL_VERSION, batch_supported
from .network import SimdBatch

__all__ = ["BatchCosimResult", "configs_batchable", "run_cosim_batch"]

_MAIN, _DRAIN, _DONE = 0, 1, 2


@dataclass
class BatchCosimResult:
    """Per-lane results plus whole-batch execution evidence."""

    results: List[CoSimResult]
    lanes: int
    #: kernel invocations for the entire batch — K lanes share every
    #: launch, which is the point; compare with K * (a single run's).
    kernel_launches: int
    engine: EngineDecision


def _shape_key(config: TargetConfig) -> Tuple:
    """What must coincide for two configs to share one kernel batch.

    Workload identity (app, seed, scale, CMP parameters) may differ —
    it lives in the per-lane systems; the shared arrays only care about
    the network shape and the synchronization cadence.
    """
    return (
        config.width,
        config.height,
        config.concentration,
        config.topology,
        config.quantum,
        repr(config.noc),
    )


def configs_batchable(configs: Sequence[TargetConfig]) -> Tuple[bool, str]:
    """Whether ``configs`` may run as lanes of one batch (and why not)."""
    if not configs:
        return False, "empty batch"
    for config in configs:
        ok, reason = batch_supported(config)
        if not ok:
            return False, reason
    shape = _shape_key(configs[0])
    for config in configs[1:]:
        if _shape_key(config) != shape:
            return False, (
                "configs disagree on network shape or quantum; "
                "only same-shape simulations can share a batch"
            )
    return True, "batchable"


def run_cosim_batch(
    configs: Sequence[TargetConfig],
    max_cycles: int = 5_000_000,
    check_invariants: bool = False,
    verify: str = "warn",
) -> BatchCosimResult:
    """Run every config as one lane of a shared batched kernel.

    Raises :class:`~repro.errors.ConfigError` when the configs cannot
    share a batch (callers gate on :func:`configs_batchable` first).
    """
    configs = list(configs)
    ok, reason = configs_batchable(configs)
    if not ok:
        raise ConfigError(f"configs are not batchable: {reason}")
    lanes = len(configs)
    batch = SimdBatch(configs[0].make_topology(), configs[0].noc, lanes=lanes)
    decision = EngineDecision(
        "batched", f"lockstep batch of {lanes}", KERNEL_VERSION
    )
    cosims: List[CoSimulator] = []
    for index, config in enumerate(configs):
        lane = batch.lane(index)
        cosim = build_cosim(
            config,
            simd_network_factory=lambda topo, noc, _lane=lane: _lane,
            check_invariants=check_invariants,
            verify=verify,
        )
        cosim.engine_decision = decision
        cosims.append(cosim)
    results = _run_lockstep(batch, cosims, max_cycles)
    return BatchCosimResult(
        results=results,
        lanes=lanes,
        kernel_launches=batch.kernel_launches,
        engine=decision,
    )


def _run_lockstep(
    batch: SimdBatch, cosims: List[CoSimulator], max_cycles: int
) -> List[CoSimResult]:
    wall_start = time.perf_counter()  # simlint: allow[wall-clock]
    n = len(cosims)
    phase = [_MAIN] * n
    guards = [0] * n
    results: List[Optional[CoSimResult]] = [None] * n
    # Same-shape implies identical fixed quanta (part of the shape key).
    window = cosims[0].quantum.next_quantum()

    def finish(i: int) -> None:
        phase[i] = _DONE
        results[i] = cosims[i]._result(
            time.perf_counter() - wall_start  # simlint: allow[wall-clock]
        )

    def enter_drain(i: int) -> None:
        # Mirrors run(): after the last core finishes, either the tail is
        # already empty or we keep draining windows under a guard.
        if not cosims[i]._tail_pending():
            finish(i)
        else:
            phase[i] = _DRAIN
            guards[i] = cosims[i]._drain_guard()

    for i, cosim in enumerate(cosims):
        cosim._begin()
        if cosim.system.all_finished:
            enter_drain(i)

    while any(p != _DONE for p in phase):
        if any(p == _MAIN for p in phase):
            target = min(batch.cycle + window, max_cycles)
        else:
            target = batch.cycle + window
        sent_before = [0] * n

        # System half of the window, then flush, for every active lane —
        # all injections must be buffered before the shared clock moves.
        for i, cosim in enumerate(cosims):
            if phase[i] == _MAIN:
                cosim._check_wedge()
                sent_before[i] = cosim.messages_sent
                cosim._phase_system(target)
                cosim._phase_flush()
            elif phase[i] == _DRAIN:
                if cosim.system.now > guards[i]:
                    raise SimulationError(
                        "co-simulation tail failed to drain "
                        f"({cosim.system.events.pending} events, "
                        f"{getattr(cosim.network, 'in_flight', 0)} packets "
                        f"left in lane {i})"
                    )
                cosim.system.run_until(target)
                cosim._phase_flush()

        # One kernel advance for the whole batch: the first active lane
        # steps the shared clock to the boundary, the rest no-op.
        for i, cosim in enumerate(cosims):
            if phase[i] != _DONE:
                cosim._phase_advance(target)

        # Deliveries and window bookkeeping, per lane.
        for i, cosim in enumerate(cosims):
            if phase[i] == _MAIN:
                cosim._phase_collect()
                cosim._phase_finish(target, sent_before[i])
                if cosim.system.all_finished:
                    enter_drain(i)
                elif target >= max_cycles:
                    finish(i)
            elif phase[i] == _DRAIN:
                cosim._phase_collect()
                if cosim.invariants is not None:
                    cosim.invariants.after_window(cosim, target)
                if not cosim._tail_pending():
                    finish(i)

    return [r for r in results if r is not None]
