"""repro.engine: batched vectorized NoC execution engines.

The engine layer separates *what* a co-simulation computes (the target
config) from *how* its NoC cycles are executed.  Two engines implement
the :class:`NocEngine` protocol:

* :class:`OoEngine` — the existing object-oriented router loop (and the
  single-simulation SIMD model), exactly as ``build_cosim`` has always
  constructed it.  Always available; the semantic reference.
* :class:`BatchedSimdEngine` — a rewritten NumPy kernel where one
  vectorized step advances *all* routers of *N same-shape simulations*
  as batched array ops over ``(job, router, port, VC)`` tensors.  Each
  job is a lane of :class:`~repro.engine.network.SimdBatch`; per-lane
  results are bit-identical to the single-simulation SIMD network.

``build_cosim(..., engine="auto")`` picks the fast path automatically
when the target config is engine-compatible and falls back to the OO
loop with a logged reason otherwise (see :mod:`repro.engine.api`).
Lockstep multi-job execution lives in :mod:`repro.engine.batch`.
"""

from .api import (
    BatchedSimdEngine,
    EngineDecision,
    KERNEL_VERSION,
    NocEngine,
    OoEngine,
    batch_supported,
    get_engine,
    resolve_engine,
)
from .batch import BatchCosimResult, run_cosim_batch
from .network import BatchedSimdNetwork, SimdBatch

__all__ = [
    "BatchCosimResult",
    "BatchedSimdEngine",
    "BatchedSimdNetwork",
    "EngineDecision",
    "KERNEL_VERSION",
    "NocEngine",
    "OoEngine",
    "SimdBatch",
    "batch_supported",
    "get_engine",
    "resolve_engine",
    "run_cosim_batch",
]
