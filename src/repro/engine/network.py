"""The batched SIMD network: N same-shape simulations, one kernel stream.

:class:`SimdBatch` owns the lane-extended structure-of-arrays state and
steps every lane with one invocation of the :mod:`repro.engine.kernels`
pipeline per cycle.  Each lane is driven through a
:class:`BatchedSimdNetwork` view, which exposes exactly the
``inject`` / ``step`` / ``run`` / ``drain`` / ``pop_delivered`` /
``stats`` surface of :class:`~repro.noc_gpu.simd_network.SimdNetwork` —
so existing adapters and the co-simulator drive a lane without knowing
it shares kernels with its batch-mates.

Lockstep contract: ``lane.step()`` advances the *whole batch* one cycle.
Drivers that interleave lanes (see :mod:`repro.engine.batch`) exploit
that an adapter's ``advance(to_cycle)`` loop no-ops once the shared
clock has already reached the target.  Per-lane behaviour is
bit-identical to a single-lane run: host-side injection and ejection
are per-lane state machines identical to ``SimdNetwork``'s, and the
kernels keep lanes independent by construction.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError, SimulationError
from ..noc.config import NocConfig
from ..noc.packet import Packet
from ..noc.stats import NetworkStats
from ..noc.topology import LOCAL, Topology
from .kernels import FLAG_HEAD, FLAG_TAIL, route_compute, switch_traverse, vc_allocate
from .layout import build_batch_state

__all__ = ["BatchedSimdNetwork", "SimdBatch"]


class _Source:
    """Per-router injection state (mirrors the OO network's source queue)."""

    __slots__ = ("pending", "flits_left", "pkt_index", "size", "vc")

    def __init__(self) -> None:
        self.pending: Deque[Packet] = deque()
        self.flits_left = 0
        self.pkt_index = -1
        self.size = 0
        self.vc = -1


class SimdBatch:
    """Shared kernel state and clock for ``lanes`` same-shape simulations."""

    def __init__(
        self,
        topo: Topology,
        config: Optional[NocConfig] = None,
        lanes: int = 1,
    ) -> None:
        self.topo = topo
        self.config = config or NocConfig()
        if self.config.vc_select != "any_free":
            raise ConfigError("SimdBatch supports vc_select='any_free' only")
        self.cycle = 0
        self.state = build_batch_state(topo, self.config, lanes)
        self.lanes = self.state.L
        self._hops = np.zeros(1024, dtype=np.int64)
        #: credits in flight: (apply_cycle, lanes, routers, ports, vcs)
        self._pending_credits: Deque[
            Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = deque()
        self.kernel_launches = 0
        self._lane_views = [BatchedSimdNetwork(self, i) for i in range(self.lanes)]

    def lane(self, index: int) -> "BatchedSimdNetwork":
        return self._lane_views[index]

    @property
    def in_flight(self) -> int:
        return sum(view.in_flight for view in self._lane_views)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance every lane one cycle with one kernel invocation."""
        now = self.cycle
        self._apply_credits(now)
        for view in self._lane_views:
            view._admit(now)
        for view in self._lane_views:
            view._inject_flits(now)
        st = self.state
        route_compute(st)
        va = vc_allocate(st)
        grants, link_moves, cl, cr, cp, cv = switch_traverse(
            st, now, self._dispatch_eject, self._hops
        )
        self.kernel_launches += 4
        if len(cl):
            self._pending_credits.append(
                (now + self.config.credit_delay, cl, cr, cp, cv)
            )
        for i, view in enumerate(self._lane_views):
            view.va_grants += int(va[i])
            g = int(grants[i])
            m = int(link_moves[i])
            view.switch_grants += g
            view.link_traversals += m
            view.buffer_writes += m
            if g:
                view._last_progress = now
            view._check_watchdog(now)
        self.cycle += 1
        for view in self._lane_views:
            view.stats.cycles = self.cycle

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    # ------------------------------------------------------------------
    def _apply_credits(self, now: int) -> None:
        while self._pending_credits and self._pending_credits[0][0] <= now:
            _, lane, r, p, v = self._pending_credits.popleft()
            np.add.at(self.state.credits, (lane, r, p, v), 1)

    def _dispatch_eject(
        self,
        lanes: np.ndarray,
        pkt_idx: np.ndarray,
        seq: np.ndarray,
        flags: np.ndarray,
        routers: np.ndarray,
    ) -> None:
        tails = (flags & FLAG_TAIL) != 0
        for lane, idx in zip(lanes[tails], pkt_idx[tails]):
            self._lane_views[int(lane)]._eject_packet(int(idx))

    def grow_hops(self, needed: int) -> None:
        if needed <= len(self._hops):
            return
        grown = np.zeros(max(needed, len(self._hops) * 2), dtype=np.int64)
        grown[: len(self._hops)] = self._hops
        self._hops = grown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimdBatch({self.topo!r}, lanes={self.lanes}, cycle={self.cycle}, "
            f"in_flight={self.in_flight})"
        )


class BatchedSimdNetwork:
    """One lane of a :class:`SimdBatch`, driven like a ``SimdNetwork``.

    The view owns all host-side per-lane state (injection queues, the
    future heap, delivered packets, stats, energy counters, watchdog)
    and delegates cycle advancement to the shared batch — ``step()``
    steps *every* lane.
    """

    def __init__(self, batch: SimdBatch, lane_index: int) -> None:
        self.batch = batch
        self.lane_index = lane_index
        self.topo = batch.topo
        self.config = batch.config
        self.on_eject: Optional[Callable[[Packet, int], None]] = None
        self.stats = NetworkStats()
        self._sources = [_Source() for _ in range(batch.topo.num_routers)]
        # Insertion-ordered (dict-as-set) so injection order never
        # depends on hash order — keeps lanes bit-identical to the
        # single-simulation SIMD network.
        self._active_sources: Dict[int, None] = {}
        self._future: List[Tuple[int, int, Packet]] = []
        self._future_seq = 0
        self._delivered: Deque[Packet] = deque()
        self._last_progress = 0
        # Energy event counters (see repro.noc.energy)
        self.buffer_writes = 0
        self.switch_grants = 0
        self.link_traversals = 0
        self.va_grants = 0

    # ------------------------------------------------------------------
    # Driving (same surface as SimdNetwork / CycleNetwork)
    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.batch.cycle

    @property
    def kernel_launches(self) -> int:
        return self.batch.kernel_launches

    def inject(self, packet: Packet, cycle: Optional[int] = None) -> None:
        when = self.cycle if cycle is None else cycle
        if when < self.cycle:
            raise SimulationError(
                f"cannot inject at cycle {when}; network is at {self.cycle}"
            )
        packet.inject_cycle = when
        heapq.heappush(self._future, (when, self._future_seq, packet))
        self._future_seq += 1

    def step(self) -> None:
        """Advance the whole batch one cycle (lockstep contract)."""
        self.batch.step()

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.batch.step()

    def drain(self, max_cycles: int = 1_000_000) -> None:
        start = self.cycle
        while self.in_flight > 0:
            if self.cycle - start > max_cycles:
                raise SimulationError(
                    f"batched SIMD lane failed to drain within {max_cycles} "
                    f"cycles ({self.in_flight} packets in flight)"
                )
            self.batch.step()

    def pop_delivered(self) -> List[Packet]:
        out = list(self._delivered)
        self._delivered.clear()
        return out

    @property
    def in_flight(self) -> int:
        return self.stats.in_flight_packets + len(self._future)

    # ------------------------------------------------------------------
    # Per-cycle host-side phases (invoked by SimdBatch.step)
    # ------------------------------------------------------------------
    def _admit(self, now: int) -> None:
        while self._future and self._future[0][0] <= now:
            _, _, packet = heapq.heappop(self._future)
            router = self.topo.node_router(packet.src)
            self._sources[router].pending.append(packet)
            self._active_sources[router] = None
            self.stats.record_injection(packet)

    def _inject_flits(self, now: int) -> None:
        st = self.batch.state
        lane = self.lane_index
        done = []
        for rid in self._active_sources:
            source = self._sources[rid]
            if source.flits_left == 0:
                if not source.pending:
                    done.append(rid)
                    continue
                vc = self._free_local_vc(rid)
                if vc is None:
                    continue
                packet = source.pending.popleft()
                packet.network_entry_cycle = now
                idx = st.register_packet(packet)
                self.batch.grow_hops(idx + 1)
                source.pkt_index = idx
                source.size = packet.size_flits
                source.flits_left = packet.size_flits
                source.vc = vc
            vc = source.vc
            if st.count[lane, rid, LOCAL, vc] >= st.B:
                continue
            seq = source.size - source.flits_left
            flags = (FLAG_HEAD if seq == 0 else 0) | (
                FLAG_TAIL if source.flits_left == 1 else 0
            )
            slot = (st.head[lane, rid, LOCAL, vc] + st.count[lane, rid, LOCAL, vc]) % st.B
            st.buf_pkt[lane, rid, LOCAL, vc, slot] = source.pkt_index
            st.buf_seq[lane, rid, LOCAL, vc, slot] = seq
            st.buf_flags[lane, rid, LOCAL, vc, slot] = flags
            st.buf_ready[lane, rid, LOCAL, vc, slot] = now + self.config.router_delay
            st.count[lane, rid, LOCAL, vc] += 1
            self.buffer_writes += 1
            source.flits_left -= 1
            if source.flits_left == 0:
                source.vc = -1
                if not source.pending:
                    done.append(rid)
        for rid in done:
            self._active_sources.pop(rid, None)

    def _free_local_vc(self, rid: int) -> Optional[int]:
        st = self.batch.state
        lane = self.lane_index
        for vc in range(st.V):
            if (
                not st.active[lane, rid, LOCAL, vc]
                and st.route_port[lane, rid, LOCAL, vc] < 0
                and st.count[lane, rid, LOCAL, vc] == 0
            ):
                return vc
        return None

    def _eject_packet(self, idx: int) -> None:
        packet = self.batch.state.pkt_objects[idx]
        packet.eject_cycle = self.cycle + self.config.ejection_delay
        packet.hops = int(self.batch._hops[idx])
        self.stats.record_ejection(packet)
        self._delivered.append(packet)
        if self.on_eject is not None:
            self.on_eject(packet, packet.eject_cycle)

    def _check_watchdog(self, now: int) -> None:
        limit = self.config.watchdog_cycles
        if not limit:
            return
        if self.stats.in_flight_packets > 0 and now - self._last_progress > limit:
            raise SimulationError(
                f"batched SIMD lane {self.lane_index}: no flit movement for "
                f"{limit} cycles with {self.stats.in_flight_packets} packets "
                "in flight"
            )

    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        return self.batch.state.buffered_flits(self.lane_index)

    def energy_counters(self):
        """Event counts for :func:`repro.noc.energy.estimate_energy`."""
        from ..noc.energy import NetworkEventCounts

        return NetworkEventCounts(
            buffer_writes=self.buffer_writes,
            switch_grants=self.switch_grants,
            link_traversals=self.link_traversals,
            allocations=self.switch_grants + self.va_grants,
            ejected_flits=self.stats.ejected_flits,
            cycles=self.cycle,
            routers=self.batch.state.R,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedSimdNetwork(lane={self.lane_index}/{self.batch.lanes}, "
            f"cycle={self.cycle}, in_flight={self.in_flight})"
        )
