"""Lane-batched per-cycle kernels for the batched SIMD network.

These are the :mod:`repro.noc_gpu.kernels` stages generalized with a
leading lane axis: one kernel invocation advances every router of every
lane.  All scatter-reduction bucket keys carry the lane index, so
arbitration in one lane can never observe another — per-lane results
are bit-identical to running :mod:`repro.noc_gpu` on each lane alone
(``tests/test_engine_batched.py`` enforces this).  ``np.nonzero`` over
``[L,R,P,V]`` masks enumerates lane-major in C order, so the per-lane
sub-order of every gather/scatter matches the single-lane kernels
exactly.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..noc.topology import EAST, LOCAL, NORTH, SOUTH, WEST
from ..noc_gpu.kernels import FLAG_HEAD, FLAG_TAIL
from .layout import BIG, OWNER_DTYPE, PORT_DTYPE, VC_DTYPE, BatchState

__all__ = [
    "FLAG_HEAD",
    "FLAG_TAIL",
    "route_compute",
    "vc_allocate",
    "switch_traverse",
]


def route_compute(st: BatchState) -> None:
    """Kernel 1: XY route for every VC whose front flit is an unrouted head."""
    need = (st.count > 0) & (st.route_port < 0)
    if not need.any():
        return
    lane, r, p, v = np.nonzero(need)
    slot = st.head[lane, r, p, v]
    pkt = st.buf_pkt[lane, r, p, v, slot]
    dst = st.pkt_dst_router[pkt]
    dx = st.x[dst] - st.x[r]
    dy = st.y[dst] - st.y[r]
    port = np.where(
        dx > 0,
        EAST,
        np.where(dx < 0, WEST, np.where(dy > 0, NORTH, np.where(dy < 0, SOUTH, LOCAL))),
    )
    st.route_port[lane, r, p, v] = port.astype(PORT_DTYPE)


def vc_allocate(st: BatchState) -> np.ndarray:
    """Kernel 2: separable VC allocation across all lanes.

    Same two stages as the single-lane kernel — selection of the first
    free output VC, then scatter-min round-robin arbitration — with the
    lane folded into the bucket key so conflicts never cross lanes.
    Returns the per-lane grant counts, shape ``[L]``.
    """
    zeros = np.zeros(st.L, dtype=np.int64)
    req = (st.route_port >= 0) & ~st.active & (st.count > 0)
    if not req.any():
        return zeros
    lane, r, p, v = np.nonzero(req)
    op = st.route_port[lane, r, p, v].astype(np.int64)

    free = st.ovc_owner[lane, r, op, :] == -1  # [n, V]
    has_free = free.any(axis=1)
    if not has_free.any():
        return zeros
    lane, r, p, v, op = (a[has_free] for a in (lane, r, p, v, op))
    ov = np.argmax(free[has_free], axis=1).astype(np.int64)

    PV = st.P * st.V
    in_code = p * st.V + v
    rank = (in_code - st.va_ptr[lane, r, op, ov]) % PV
    score = rank * PV + in_code  # unique per (lane, router, op, ov)
    target = ((lane * st.R + r) * st.P + op) * st.V + ov
    best = np.full(st.L * st.R * st.P * st.V, BIG, dtype=np.int64)
    np.minimum.at(best, target, score)
    won = score == best[target]

    lw, rw, pw, vw = lane[won], r[won], p[won], v[won]
    opw, ovw = op[won], ov[won]
    st.out_vc[lw, rw, pw, vw] = ovw.astype(VC_DTYPE)
    st.active[lw, rw, pw, vw] = True
    st.ovc_owner[lw, rw, opw, ovw] = (pw * st.V + vw).astype(OWNER_DTYPE)
    st.va_ptr[lw, rw, opw, ovw] = ((pw * st.V + vw + 1) % PV).astype(np.int32)
    return np.bincount(lw, minlength=st.L).astype(np.int64)


def switch_traverse(
    st: BatchState,
    now: int,
    eject: Callable[
        [np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray], None
    ],
    hop_counter: np.ndarray,
) -> Tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
]:
    """Kernels 3+4: switch allocation and traversal across all lanes.

    ``eject`` receives ``(lanes, pkt_idx, seq, flags, routers)`` for
    flits leaving at a local port, lane-major in C order (so per-lane
    ejection order matches the single-lane kernel).  ``hop_counter`` is
    the global per-packet hop array.

    Returns ``(grants, link_moves, credit_lanes, credit_routers,
    credit_ports, credit_vcs)``; ``grants`` and ``link_moves`` are
    per-lane counts of shape ``[L]``.
    """
    empty = np.empty(0, dtype=np.int64)
    zeros = np.zeros(st.L, dtype=np.int64)
    front_ready = np.take_along_axis(
        st.buf_ready, st.head[..., None].astype(np.int64), axis=4
    )[..., 0]
    cand = st.active & (st.count > 0) & (front_ready <= now)
    if not cand.any():
        return zeros, zeros, empty, empty, empty, empty
    lane, r, p, v = np.nonzero(cand)
    op = st.route_port[lane, r, p, v].astype(np.int64)
    ov = st.out_vc[lane, r, p, v].astype(np.int64)
    has_credit = st.credits[lane, r, op, ov] > 0
    if not has_credit.any():
        return zeros, zeros, empty, empty, empty, empty
    lane, r, p, v, op, ov = (a[has_credit] for a in (lane, r, p, v, op, ov))

    # Input stage: one VC per input port (round-robin over VCs).
    key_in = (lane * st.R + r) * st.P + p
    score_in = ((v - st.sa_in_ptr[lane, r, p]) % st.V) * st.V + v
    best_in = np.full(st.L * st.R * st.P, BIG, dtype=np.int64)
    np.minimum.at(best_in, key_in, score_in)
    nominated = score_in == best_in[key_in]
    lane, r, p, v, op, ov = (a[nominated] for a in (lane, r, p, v, op, ov))

    # Output stage: one input port per output port (round-robin over ports).
    key_out = (lane * st.R + r) * st.P + op
    score_out = ((p - st.sa_out_ptr[lane, r, op]) % st.P) * st.P + p
    best_out = np.full(st.L * st.R * st.P, BIG, dtype=np.int64)
    np.minimum.at(best_out, key_out, score_out)
    won = score_out == best_out[key_out]
    lane, r, p, v, op, ov = (a[won] for a in (lane, r, p, v, op, ov))

    st.sa_in_ptr[lane, r, p] = ((v + 1) % st.V).astype(np.int32)
    st.sa_out_ptr[lane, r, op] = ((p + 1) % st.P).astype(np.int32)

    # Pop the front flits.
    slot = st.head[lane, r, p, v].astype(np.int64)
    pkt = st.buf_pkt[lane, r, p, v, slot]
    seq = st.buf_seq[lane, r, p, v, slot]
    flags = st.buf_flags[lane, r, p, v, slot]
    st.buf_pkt[lane, r, p, v, slot] = -1
    st.head[lane, r, p, v] = ((slot + 1) % st.B).astype(np.int32)
    st.count[lane, r, p, v] -= 1

    # Tails release the input VC and the held output VC.
    is_tail = (flags & FLAG_TAIL) != 0
    lt, rt, pt, vt = lane[is_tail], r[is_tail], p[is_tail], v[is_tail]
    st.active[lt, rt, pt, vt] = False
    st.route_port[lt, rt, pt, vt] = -1
    st.out_vc[lt, rt, pt, vt] = -1
    st.ovc_owner[lt, rt, op[is_tail], ov[is_tail]] = -1

    # Ejections leave the network here.
    local = op == LOCAL
    if local.any():
        eject(lane[local], pkt[local], seq[local], flags[local], r[local])

    # Inter-router moves land in the neighbour's input buffer.
    mv = ~local
    link_moves = np.bincount(lane[mv], minlength=st.L).astype(np.int64)
    if mv.any():
        lm, rm, opm, ovm = lane[mv], r[mv], op[mv], ov[mv]
        st.credits[lm, rm, opm, ovm] -= 1
        nr = st.nbr_router[rm, opm].astype(np.int64)
        npt = st.nbr_port[rm, opm].astype(np.int64)
        dst_slot = (
            (st.head[lm, nr, npt, ovm] + st.count[lm, nr, npt, ovm]) % st.B
        ).astype(np.int64)
        st.buf_pkt[lm, nr, npt, ovm, dst_slot] = pkt[mv]
        st.buf_seq[lm, nr, npt, ovm, dst_slot] = seq[mv]
        st.buf_flags[lm, nr, npt, ovm, dst_slot] = flags[mv]
        st.buf_ready[lm, nr, npt, ovm, dst_slot] = (
            now + st.config.link_delay + st.config.router_delay
        )
        st.count[lm, nr, npt, ovm] += 1
        head_mv = (flags[mv] & FLAG_HEAD) != 0
        np.add.at(hop_counter, pkt[mv][head_mv], 1)

    # Credits for the freed input slots flow to the upstream router; the
    # local port needs none (the injection queue reads occupancy directly).
    up = p != LOCAL
    ur = st.nbr_router[r[up], p[up]].astype(np.int64)
    uport = st.nbr_port[r[up], p[up]].astype(np.int64)
    grants = np.bincount(lane, minlength=st.L).astype(np.int64)
    return grants, link_moves, lane[up], ur, uport, v[up]
