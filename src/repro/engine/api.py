"""Engine selection: which kernel executes a co-simulation's NoC.

An *engine* decides how the cycle-level network of a
:class:`~repro.core.config.TargetConfig` is executed; it never changes
what is computed.  :func:`resolve_engine` is the single policy point:
``build_cosim`` consults it for every construction, campaign records its
verdict in result provenance, and serve's scheduler asks it whether a
shape-batch may take the fast path.

Fallback is never an error: requesting ``engine="batched"`` for an
incompatible config logs the reason on the ``repro.engine`` logger and
runs the reference engine, because both engines are bit-identical on
any config they share (``tests/test_engine_cosim.py``).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Protocol, Tuple

from ..errors import ConfigError
from ..noc.topology import Mesh

__all__ = [
    "BatchedSimdEngine",
    "ENGINE_NAMES",
    "EngineDecision",
    "KERNEL_VERSION",
    "NocEngine",
    "OoEngine",
    "batch_supported",
    "get_engine",
    "resolve_engine",
]

log = logging.getLogger("repro.engine")

#: version tag of the batched kernel pipeline, recorded in result
#: provenance so a cached row can be traced to the kernels that made it.
KERNEL_VERSION = "batched-simd-1"

#: version tag recorded for runs executed by the reference engine.
OO_KERNEL_VERSION = "oo-loop-1"

ENGINE_NAMES = ("auto", "oo", "batched")


@dataclass(frozen=True)
class EngineDecision:
    """The outcome of engine selection for one config."""

    name: str  #: "oo" or "batched"
    reason: str  #: why this engine was chosen (or why batched was refused)
    kernel_version: str  #: version tag for provenance

    @property
    def is_batched(self) -> bool:
        return self.name == "batched"


class NocEngine(Protocol):
    """What an execution engine must provide."""

    name: str
    kernel_version: str

    def supports(self, config) -> Tuple[bool, str]:
        """Whether this engine can execute ``config`` (and why not)."""

    def make_networks(self, config, lanes: int) -> List[object]:
        """``lanes`` driveable network objects for same-shape simulations."""


class OoEngine:
    """The reference engine: the existing per-object simulator loop.

    Executes any config — it builds exactly the network ``build_cosim``
    has always built (the OO router loop, or the single-simulation SIMD
    model for ``network_model="simd"``).
    """

    name = "oo"
    kernel_version = OO_KERNEL_VERSION

    def supports(self, config) -> Tuple[bool, str]:
        return True, "reference engine"

    def make_networks(self, config, lanes: int) -> List[object]:
        from ..noc.network import CycleNetwork
        from ..noc.routing import make_routing
        from ..noc_gpu import SimdNetwork

        out = []
        for _ in range(lanes):
            topo = config.make_topology()
            if config.network_model == "simd":
                out.append(SimdNetwork(topo, config.noc))
            else:
                out.append(
                    CycleNetwork(
                        topo, config.noc, routing=make_routing(config.routing)
                    )
                )
        return out


class BatchedSimdEngine:
    """The fast path: lane-batched NumPy kernels (:mod:`repro.engine`)."""

    name = "batched"
    kernel_version = KERNEL_VERSION

    def supports(self, config) -> Tuple[bool, str]:
        return batch_supported(config)

    def make_networks(self, config, lanes: int) -> List[object]:
        from .network import SimdBatch

        ok, reason = self.supports(config)
        if not ok:
            raise ConfigError(f"config not batchable: {reason}")
        batch = SimdBatch(config.make_topology(), config.noc, lanes=lanes)
        return [batch.lane(i) for i in range(lanes)]


def batch_supported(config) -> Tuple[bool, str]:
    """Whether ``config`` can run on :class:`BatchedSimdEngine`.

    The batched kernels implement exactly the functional scope of the
    single-simulation SIMD network: the ``simd`` network model on a mesh
    with ``any_free`` VC selection and no fault injection.
    """
    if config.network_model != "simd":
        return False, (
            f"network_model={config.network_model!r} "
            "(batched kernels implement the 'simd' model)"
        )
    if config.faults is not None:
        return False, "fault injection requires the OO router loop"
    if config.noc.vc_select != "any_free":
        return False, f"vc_select={config.noc.vc_select!r} (need 'any_free')"
    if not isinstance(config.make_topology(), Mesh):
        return False, f"topology={config.topology!r} (batched kernels need a mesh)"
    return True, "engine-compatible"


def get_engine(name: str):
    """The engine instance for ``name`` ("oo" or "batched")."""
    if name == "oo":
        return OoEngine()
    if name == "batched":
        return BatchedSimdEngine()
    raise ConfigError(f"unknown engine {name!r}; known: ('oo', 'batched')")


def resolve_engine(config, engine: str = "auto") -> EngineDecision:
    """Pick the engine that will execute ``config``.

    ``engine`` is the caller's request: ``"auto"`` takes the batched
    fast path whenever the config is compatible, ``"batched"`` does the
    same but logs the fallback at WARNING (the caller asked for speed it
    is not getting), and ``"oo"`` pins the reference engine.
    """
    if engine not in ENGINE_NAMES:
        raise ConfigError(f"unknown engine {engine!r}; known: {ENGINE_NAMES}")
    if engine == "oo":
        return EngineDecision("oo", "explicitly requested", OO_KERNEL_VERSION)
    ok, reason = batch_supported(config)
    if ok:
        return EngineDecision("batched", reason, KERNEL_VERSION)
    level = logging.WARNING if engine == "batched" else logging.INFO
    log.log(
        level,
        "engine fallback to the OO loop for %s/%s: %s",
        config.network_model,
        config.topology,
        reason,
    )
    return EngineDecision("oo", f"fallback: {reason}", OO_KERNEL_VERSION)
