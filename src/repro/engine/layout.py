"""Structure-of-arrays state for the *batched* SIMD network.

This is :mod:`repro.noc_gpu.layout` with one extra leading axis: ``L``
lanes, each an independent same-shape simulation.  Array shapes are
``L`` lanes × ``R`` routers × ``P`` ports × ``V`` virtual channels × ``B``
buffer slots.  Geometry tables are shared across lanes (one copy,
indexed by every lane), because a batch only ever groups simulations of
identical topology and NoC config.

The packet table is global across lanes: ``buf_pkt`` stores indices into
one shared table, and lane ownership is implicit — a packet index only
ever appears in the lane that injected it, so kernels never need a
per-packet lane column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import ConfigError
from ..noc.config import NocConfig
from ..noc.topology import EAST, LOCAL, NORTH, SOUTH, WEST, Topology
from ..noc_gpu.layout import (
    BIG,
    LOCAL_CREDITS,
    OWNER_DTYPE,
    PORT_DTYPE,
    PTR_DTYPE,
    VC_DTYPE,
    mesh_geometry,
)

__all__ = [
    "BatchState",
    "build_batch_state",
    "BIG",
    "PORT_DTYPE",
    "VC_DTYPE",
    "OWNER_DTYPE",
    "PTR_DTYPE",
    "SHAPE_CONTRACT",
]

# Machine-readable layout contract for the batched state; same syntax as
# :data:`repro.noc_gpu.layout.SHAPE_CONTRACT` with the leading lane axis.
# The ``pkt`` domain is declared lane-partitioned: a packet index only
# ever appears in the lane that injected it (see the module docstring),
# which is what makes per-packet scatters keyed by gathered ``buf_pkt``
# values lane-safe without an explicit lane term.
SHAPE_CONTRACT = {
    "BatchState": {
        "dims": ["L", "R", "P", "V", "B"],
        "lane_axis": "L",
        "fields": {
            "x": {"shape": "R", "dtype": "int32"},
            "y": {"shape": "R", "dtype": "int32"},
            "nbr_router": {"shape": "R,P", "dtype": "int32", "values": "router"},
            "nbr_port": {"shape": "R,P", "dtype": "int32", "values": "port"},
            "buf_pkt": {"shape": "L,R,P,V,B", "dtype": "int32", "values": "pkt"},
            "buf_seq": {"shape": "L,R,P,V,B", "dtype": "int32"},
            "buf_flags": {"shape": "L,R,P,V,B", "dtype": "int8"},
            "buf_ready": {"shape": "L,R,P,V,B", "dtype": "int64"},
            "head": {"shape": "L,R,P,V", "dtype": "int32", "values": "slot"},
            "count": {"shape": "L,R,P,V", "dtype": "int32"},
            "route_port": {"shape": "L,R,P,V", "dtype": "int8", "values": "port"},
            "out_vc": {"shape": "L,R,P,V", "dtype": "int8", "values": "vc"},
            "active": {"shape": "L,R,P,V", "dtype": "bool"},
            "ovc_owner": {"shape": "L,R,P,V", "dtype": "int16"},
            "credits": {"shape": "L,R,P,V", "dtype": "int64"},
            "sa_in_ptr": {"shape": "L,R,P", "dtype": "int32"},
            "sa_out_ptr": {"shape": "L,R,P", "dtype": "int32"},
            "va_ptr": {"shape": "L,R,P,V", "dtype": "int32"},
            "pkt_dst_router": {"shape": "N", "dtype": "int32", "values": "router"},
        },
        "domains": {"pkt": {"lane_partitioned": True}},
    },
}


@dataclass
class BatchState:
    """All mutable simulator state for ``L`` lanes, as flat arrays."""

    topo: Topology
    config: NocConfig
    L: int
    R: int
    P: int
    V: int
    B: int

    # --- geometry (read-only after build, shared by all lanes) ---------
    x: np.ndarray  # [R] router x coordinate
    y: np.ndarray  # [R] router y coordinate
    nbr_router: np.ndarray  # [R,P] neighbour router id (-1: edge/local)
    nbr_port: np.ndarray  # [R,P] arrival port at the neighbour

    # --- flit buffers (ring buffers per input VC) ----------------------
    buf_pkt: np.ndarray  # [L,R,P,V,B] packet-table index, -1 empty
    buf_seq: np.ndarray  # [L,R,P,V,B] flit sequence within packet
    buf_flags: np.ndarray  # [L,R,P,V,B] bit0 head, bit1 tail
    buf_ready: np.ndarray  # [L,R,P,V,B] earliest cycle the flit may move
    head: np.ndarray  # [L,R,P,V] ring-buffer head index
    count: np.ndarray  # [L,R,P,V] occupancy

    # --- per-input-VC wormhole state -----------------------------------
    route_port: np.ndarray  # [L,R,P,V] chosen output port, -1 unrouted
    out_vc: np.ndarray  # [L,R,P,V] allocated output VC, -1 none
    active: np.ndarray  # [L,R,P,V] bool: holds an output VC

    # --- output side ----------------------------------------------------
    ovc_owner: np.ndarray  # [L,R,P,V] flattened (in_port*V+in_vc) owner
    credits: np.ndarray  # [L,R,P,V] downstream credits per (out port, vc)

    # --- arbitration pointers -------------------------------------------
    sa_in_ptr: np.ndarray  # [L,R,P] round-robin over V (switch input stage)
    sa_out_ptr: np.ndarray  # [L,R,P] round-robin over P (switch output stage)
    va_ptr: np.ndarray  # [L,R,P,V] round-robin over P*V (VC allocation)

    # --- packet table (global across lanes; grows) ----------------------
    pkt_dst_router: np.ndarray = field(default=None)  # [N]
    pkt_objects: List = field(default_factory=list)

    def grow_packet_table(self, needed: int) -> None:
        """Ensure the packet-table arrays can index ``needed`` entries."""
        current = len(self.pkt_dst_router)
        if needed <= current:
            return
        new_size = max(needed, current * 2, 1024)
        grown = np.full(new_size, -1, dtype=np.int32)
        grown[:current] = self.pkt_dst_router
        self.pkt_dst_router = grown

    def register_packet(self, packet) -> int:
        """Add a packet to the global table; returns its index."""
        idx = len(self.pkt_objects)
        self.pkt_objects.append(packet)
        self.grow_packet_table(idx + 1)
        self.pkt_dst_router[idx] = self.topo.node_router(packet.dst)
        return idx

    # ------------------------------------------------------------------
    def buffered_flits(self, lane: int) -> int:
        return int(self.count[lane].sum())

    def total_buffered_flits(self) -> int:
        return int(self.count.sum())


def build_batch_state(topo: Topology, config: NocConfig, lanes: int) -> BatchState:
    """Allocate and initialize all arrays for ``lanes`` same-shape sims."""
    if lanes < 1:
        raise ConfigError(f"batch needs at least one lane, got {lanes}")
    L = lanes
    R, P, V, B = topo.num_routers, topo.radix, config.num_vcs, config.buffer_depth
    x, y, nbr_router, nbr_port = mesh_geometry(topo)

    credits = np.full((L, R, P, V), B, dtype=np.int64)
    credits[:, :, LOCAL, :] = LOCAL_CREDITS
    # Edge ports have no neighbour; routing never selects them, but zero
    # credits make any bug fail loudly instead of teleporting flits.
    for port in (EAST, WEST, NORTH, SOUTH):
        credits[:, nbr_router[:, port] < 0, port, :] = 0

    return BatchState(
        topo=topo,
        config=config,
        L=L,
        R=R,
        P=P,
        V=V,
        B=B,
        x=x,
        y=y,
        nbr_router=nbr_router,
        nbr_port=nbr_port,
        buf_pkt=np.full((L, R, P, V, B), -1, dtype=np.int32),
        buf_seq=np.zeros((L, R, P, V, B), dtype=np.int32),
        buf_flags=np.zeros((L, R, P, V, B), dtype=np.int8),
        buf_ready=np.zeros((L, R, P, V, B), dtype=np.int64),
        head=np.zeros((L, R, P, V), dtype=np.int32),
        count=np.zeros((L, R, P, V), dtype=np.int32),
        route_port=np.full((L, R, P, V), -1, dtype=PORT_DTYPE),
        out_vc=np.full((L, R, P, V), -1, dtype=VC_DTYPE),
        active=np.zeros((L, R, P, V), dtype=bool),
        ovc_owner=np.full((L, R, P, V), -1, dtype=OWNER_DTYPE),
        credits=credits,
        sa_in_ptr=np.zeros((L, R, P), dtype=PTR_DTYPE),
        sa_out_ptr=np.zeros((L, R, P), dtype=PTR_DTYPE),
        va_ptr=np.zeros((L, R, P, V), dtype=PTR_DTYPE),
        pkt_dst_router=np.full(1024, -1, dtype=np.int32),
    )
