"""Queueing-theoretic contention model.

A middle fidelity point between the fixed hop model and the cycle-level
simulator: each channel on a message's path is an M/D/1 queue whose
utilization is estimated online from the traffic the model itself routes.
Per-hop waiting time follows the M/D/1 mean-wait formula

    W = rho * S / (2 * (1 - rho))

with ``S`` the mean packet service time (flits) observed on that channel.

The model is *self-contained*: it needs no detailed simulator.  It also
accepts reciprocal feedback (:meth:`observe`), which it uses to scale its
predictions by the measured-to-predicted ratio — the hybrid configuration
exercised by experiment E8.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError
from ..noc.routing import RoutingFunction, XYRouting
from ..noc.topology import LOCAL, Topology
from ..util import clamp, ewma
from .base import AbstractNetworkModel

__all__ = ["QueueingLatencyModel"]


class _ChannelLoad:
    """Online utilization and mean-service estimate for one channel."""

    __slots__ = ("flits_in_window", "packets_in_window", "rho", "mean_service")

    def __init__(self) -> None:
        self.flits_in_window = 0
        self.packets_in_window = 0
        self.rho = 0.0
        self.mean_service = 1.0

    def age(self, window_cycles: int, alpha: float) -> None:
        sample_rho = min(1.0, self.flits_in_window / max(1, window_cycles))
        self.rho = ewma(self.rho, sample_rho, alpha)
        if self.packets_in_window:
            sample_service = self.flits_in_window / self.packets_in_window
            self.mean_service = ewma(self.mean_service, sample_service, alpha)
        self.flits_in_window = 0
        self.packets_in_window = 0


class QueueingLatencyModel(AbstractNetworkModel):
    """Hop latency plus per-channel M/D/1 waiting time.

    Args:
        topo, config: as for every network model.
        routing: routing function used to enumerate a message's path
            (deterministic XY by default — adaptive functions are followed
            along their first preference).
        alpha: EWMA weight for utilization updates per quantum.
        rho_cap: utilizations are clamped below this to keep the M/D/1
            denominator finite; saturated channels predict a large but
            bounded wait, matching how a real network sheds load upstream.
        feedback_gain: 0 disables reciprocal feedback; 1 fully trusts the
            measured/predicted ratio from :meth:`observe`.
    """

    def __init__(
        self,
        topo: Topology,
        config,
        routing: RoutingFunction | None = None,
        alpha: float = 0.5,
        rho_cap: float = 0.95,
        feedback_gain: float = 0.0,
    ) -> None:
        super().__init__(topo, config)
        if not 0.0 < rho_cap < 1.0:
            raise ConfigError(f"rho_cap must be in (0, 1), got {rho_cap}")
        if not 0.0 <= feedback_gain <= 1.0:
            raise ConfigError(f"feedback_gain must be in [0, 1], got {feedback_gain}")
        self.routing = routing or XYRouting()
        self.alpha = alpha
        self.rho_cap = rho_cap
        self.feedback_gain = feedback_gain
        self._channels: Dict[Tuple[int, int], _ChannelLoad] = {}
        self._correction = 1.0  # measured/predicted ratio, EWMA-smoothed
        self._last_quantum_end = 0

    # ------------------------------------------------------------------
    def path(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Channels (router, out_port) a message crosses from src to dst."""
        cur = self.topo.node_router(src)
        goal = self.topo.node_router(dst)
        channels: List[Tuple[int, int]] = []
        # Path length is bounded by the network diameter; the guard protects
        # against a routing function that fails to converge.
        for _ in range(self.topo.num_routers + 1):
            if cur == goal:
                return channels
            port = self.routing.first(self.topo, cur, goal)
            if port == LOCAL:
                return channels
            channels.append((cur, port))
            nxt = self.topo.neighbor(cur, port)
            if nxt is None:
                raise ConfigError(
                    f"routing walked off the topology at router {cur} port {port}"
                )
            cur = nxt
        raise ConfigError(f"routing did not reach {goal} from {src}")

    # ------------------------------------------------------------------
    def latency(
        self, src: int, dst: int, size_flits: int, msg_class: int, now: int
    ) -> int:
        base = self.zero_load_latency(src, dst, size_flits)
        wait = 0.0
        for key in self.path(src, dst):
            chan = self._channels.get(key)
            if chan is None:
                chan = self._channels[key] = _ChannelLoad()
            chan.flits_in_window += size_flits
            chan.packets_in_window += 1
            rho = clamp(chan.rho, 0.0, self.rho_cap)
            wait += rho * chan.mean_service / (2.0 * (1.0 - rho))
        predicted = base + wait
        if self.feedback_gain:
            gain = self.feedback_gain
            predicted = predicted * ((1.0 - gain) + gain * self._correction)
        return max(base, round(predicted))

    def observe(
        self, src: int, dst: int, size_flits: int, msg_class: int, measured: int
    ) -> None:
        if not self.feedback_gain:
            return
        # Compare against the *uncorrected* prediction so the correction
        # ratio does not chase its own tail.
        base = self.zero_load_latency(src, dst, size_flits)
        wait = sum(
            clamp(ch.rho, 0.0, self.rho_cap)
            * ch.mean_service
            / (2.0 * (1.0 - clamp(ch.rho, 0.0, self.rho_cap)))
            for key in self.path(src, dst)
            if (ch := self._channels.get(key)) is not None
        )
        predicted = max(1.0, base + wait)
        self._correction = ewma(self._correction, measured / predicted, 0.05)

    def on_quantum(self, now: int, quantum: int) -> None:
        window = max(1, now - self._last_quantum_end)
        self._last_quantum_end = now
        for chan in self._channels.values():
            chan.age(window, self.alpha)

    # ------------------------------------------------------------------
    def channel_utilization(self, router: int, port: int) -> float:
        chan = self._channels.get((router, port))
        return chan.rho if chan is not None else 0.0

    def describe(self) -> Dict[str, object]:
        return {
            "model": "queueing",
            "alpha": self.alpha,
            "rho_cap": self.rho_cap,
            "feedback_gain": self.feedback_gain,
        }
