"""Abstract (message-level) network models — the coarse side of the paper's
fidelity spectrum.

* :class:`FixedLatencyModel` — zero-load hop latency, no contention.
* :class:`QueueingLatencyModel` — hop latency + M/D/1 per-channel waits.
* :class:`TableLatencyModel` — EWMA table retuned from observed latencies.

All three implement :class:`AbstractNetworkModel` and agree exactly with the
cycle-level simulator at zero load.
"""

from .analytical import FixedLatencyModel
from .base import AbstractNetworkModel
from .queueing import QueueingLatencyModel
from .table import TableLatencyModel

__all__ = [
    "AbstractNetworkModel",
    "FixedLatencyModel",
    "QueueingLatencyModel",
    "TableLatencyModel",
]
