"""Interface shared by the abstract (non-cycle-level) network models.

An abstract model answers one question: *how long will this message take?*
It never simulates flits; the co-simulation layer calls :meth:`latency` when
a message is sent and schedules the delivery directly.

Models may also *learn*: :meth:`observe` feeds back latencies measured by a
detailed simulator (this is the reciprocal direction of reciprocal
abstraction), and :meth:`on_quantum` lets load-tracking models age their
state once per synchronization quantum.
"""

from __future__ import annotations

from typing import Dict

from ..noc.config import NocConfig
from ..noc.topology import Topology

__all__ = ["AbstractNetworkModel"]


class AbstractNetworkModel:
    """Base class for message-level network latency models."""

    def __init__(self, topo: Topology, config: NocConfig) -> None:
        self.topo = topo
        self.config = config

    # ------------------------------------------------------------------
    def latency(
        self, src: int, dst: int, size_flits: int, msg_class: int, now: int
    ) -> int:
        """Predicted end-to-end latency (cycles) for one message."""
        raise NotImplementedError

    def observe(
        self, src: int, dst: int, size_flits: int, msg_class: int, measured: int
    ) -> None:
        """Feed back a latency measured by a detailed simulator (optional)."""

    def on_quantum(self, now: int, quantum: int) -> None:
        """Hook called once per synchronization quantum (optional)."""

    # ------------------------------------------------------------------
    def zero_load_latency(self, src: int, dst: int, size_flits: int) -> int:
        """Contention-free latency; identical across all models by design."""
        hops = self.topo.node_distance(src, dst)
        return self.config.min_latency(hops, size_flits)

    def describe(self) -> Dict[str, object]:
        """Model name and key parameters, for experiment reports."""
        return {"model": type(self).__name__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__
