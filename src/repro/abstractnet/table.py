"""Retunable latency-table model.

The model keeps an EWMA latency estimate per (hop distance, message class)
bucket, seeded from the zero-load formula.  Standing alone it behaves like
the fixed model; fed with observations (either from a short cycle-level
calibration run or continuously, as the reciprocal-abstraction feedback path
does) it converges to the detailed simulator's *average* behaviour while
remaining O(1) per message.

This is the "model-based co-simulation" design point: cheaper than keeping
the detailed simulator in the loop, more accurate than a static formula, but
blind to transient congestion — exactly the gap experiment E8 quantifies.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..util import ewma
from .base import AbstractNetworkModel

__all__ = ["TableLatencyModel"]


class TableLatencyModel(AbstractNetworkModel):
    """Per-(distance, class) EWMA latency table.

    Args:
        alpha: EWMA weight for each observation.
        per_flit: extra cycles charged per body flit beyond the bucket's
            base (buckets are keyed by distance and class only, so packet
            size is factored out before averaging and added back after).
    """

    def __init__(self, topo, config, alpha: float = 0.1) -> None:
        super().__init__(topo, config)
        self.alpha = alpha
        #: (distance, msg_class) -> EWMA of size-normalized latency
        self._table: Dict[Tuple[int, int], float] = {}
        self.observations = 0

    # ------------------------------------------------------------------
    def _base(self, hops: int) -> float:
        """Size-normalized zero-load latency for a distance bucket."""
        return float(self.config.min_latency(hops, 1))

    def latency(
        self, src: int, dst: int, size_flits: int, msg_class: int, now: int
    ) -> int:
        hops = self.topo.node_distance(src, dst)
        key = (hops, msg_class)
        normalized = self._table.get(key)
        if normalized is None:
            normalized = self._base(hops)
        return max(1, round(normalized + (size_flits - 1)))

    def observe(
        self, src: int, dst: int, size_flits: int, msg_class: int, measured: int
    ) -> None:
        hops = self.topo.node_distance(src, dst)
        key = (hops, msg_class)
        sample = float(measured - (size_flits - 1))
        current = self._table.get(key)
        if current is None:
            # First observation replaces the seed outright: the seed is a
            # lower bound, not a sample, and should not drag the average.
            self._table[key] = sample
        else:
            self._table[key] = ewma(current, sample, self.alpha)
        self.observations += 1

    # ------------------------------------------------------------------
    def table_snapshot(self) -> Dict[Tuple[int, int], float]:
        """Copy of the learned table (tests and reports)."""
        return dict(self._table)

    def describe(self) -> Dict[str, object]:
        return {
            "model": "table",
            "alpha": self.alpha,
            "observations": self.observations,
            "buckets": len(self._table),
        }
