"""The fixed-latency (zero-load hop) model.

This is the "more abstract network model" of the paper's comparison: latency
is a pure function of hop count and packet size, ignoring all contention.
It is exact at zero load and increasingly optimistic as load grows — the
inaccuracy the headline 69%-error-reduction claim is measured against.
"""

from __future__ import annotations

from typing import Dict

from ..util import check_non_negative
from .base import AbstractNetworkModel

__all__ = ["FixedLatencyModel"]


class FixedLatencyModel(AbstractNetworkModel):
    """Latency = zero-load pipeline latency (+ an optional fixed slack).

    Args:
        slack: constant cycles added to every prediction.  A small slack is
            how simulators typically "calibrate" a hop model against an
            average observed load; the default of 0 is the pure hop model.
    """

    def __init__(self, topo, config, slack: int = 0) -> None:
        super().__init__(topo, config)
        check_non_negative(slack, "slack")
        self.slack = slack

    def latency(
        self, src: int, dst: int, size_flits: int, msg_class: int, now: int
    ) -> int:
        return self.zero_load_latency(src, dst, size_flits) + self.slack

    def describe(self) -> Dict[str, object]:
        return {"model": "fixed", "slack": self.slack}
