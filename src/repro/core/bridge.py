"""Message ↔ packet translation between the two abstraction levels.

The full-system simulator thinks in protocol :class:`Message` s; the
cycle-level network thinks in :class:`Packet` s of flits.  The bridge maps
one to the other and back, carrying the message as the packet payload so no
lookup table is needed on ejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import SimulationError
from ..fullsys.coherence import Message
from ..noc.packet import Packet

__all__ = ["MessageBridge", "ResilientBridge", "OutstandingSend"]


class MessageBridge:
    """Stateless translator (kept as a class for counting and symmetry)."""

    def __init__(self) -> None:
        self.packets_created = 0
        self.messages_recovered = 0

    def to_packet(self, msg: Message, inject_cycle: int) -> Packet:
        """Wrap a protocol message as a network packet."""
        if msg.src == msg.dst:
            raise SimulationError(
                f"message {msg!r} is tile-local; it must not reach the network"
            )
        self.packets_created += 1
        return Packet(
            src=msg.src,
            dst=msg.dst,
            size_flits=msg.size_flits,
            msg_class=msg.msg_class,
            inject_cycle=inject_cycle,
            payload=msg,
        )

    def to_message(self, packet: Packet) -> Message:
        """Recover the protocol message carried by an ejected packet."""
        msg = packet.payload
        if not isinstance(msg, Message):
            raise SimulationError(
                f"packet {packet!r} does not carry a protocol message"
            )
        self.messages_recovered += 1
        return msg


@dataclass
class OutstandingSend:
    """Bookkeeping for one message sent but not yet confirmed delivered."""

    msg: Message
    #: times this message has been handed to the network (1 = original only)
    attempts: int
    #: simulated cycle after which the current attempt is presumed lost
    deadline: int
    #: cycle a retransmission is already scheduled for, if any
    resend_at: Optional[int] = None
    #: True once the retry budget is exhausted (or the send was refused);
    #: the entry is kept so message accounting still balances.
    abandoned: bool = False


class ResilientBridge(MessageBridge):
    """Message ↔ packet bridge with end-to-end retransmission bookkeeping.

    Tracks every network-bound message from send to confirmed delivery:
    the outstanding table (keyed by message id) is the single source of
    truth for duplicate suppression, retry budgets, and the per-fault
    drop/retry accounting the fault experiments report.  The *timing* of
    retransmissions (timeouts, backoff) lives in
    :class:`repro.resilience.transport.ResilientNetworkAdapter`, which
    drives this bridge; keeping the state here means the translation layer
    and the recovery ledger can never disagree about which messages exist.
    """

    def __init__(self) -> None:
        super().__init__()
        self.outstanding: Dict[int, OutstandingSend] = {}
        self.retransmits = 0
        self.duplicates = 0
        self.corrupt_drops = 0
        self.abandoned = 0
        self.refused = 0

    def register(self, msg: Message, deadline: int) -> OutstandingSend:
        """Track a freshly sent message until its delivery is confirmed."""
        if msg.mid in self.outstanding:
            raise SimulationError(
                f"message mid={msg.mid} sent twice without delivery"
            )
        entry = OutstandingSend(msg=msg, attempts=1, deadline=deadline)
        self.outstanding[msg.mid] = entry
        return entry

    def refuse(self, msg: Message) -> None:
        """Record a send refused at injection (destination fail-stopped).

        The entry stays in the table, abandoned, so conservation
        (sent == delivered + outstanding) holds and the stall diagnostics
        can name the undeliverable messages.
        """
        self.refused += 1
        self.outstanding[msg.mid] = OutstandingSend(
            msg=msg, attempts=0, deadline=-1, abandoned=True
        )

    def complete(self, msg: Message) -> Optional[OutstandingSend]:
        """Confirm delivery; returns ``None`` for a duplicate (suppress it)."""
        entry = self.outstanding.pop(msg.mid, None)
        if entry is None:
            self.duplicates += 1
        return entry

    def counters(self) -> Dict[str, int]:
        return {
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "corrupt_drops": self.corrupt_drops,
            "abandoned": self.abandoned,
            "refused": self.refused,
            "outstanding": len(self.outstanding),
        }
