"""Message ↔ packet translation between the two abstraction levels.

The full-system simulator thinks in protocol :class:`Message` s; the
cycle-level network thinks in :class:`Packet` s of flits.  The bridge maps
one to the other and back, carrying the message as the packet payload so no
lookup table is needed on ejection.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..fullsys.coherence import Message
from ..noc.packet import Packet

__all__ = ["MessageBridge"]


class MessageBridge:
    """Stateless translator (kept as a class for counting and symmetry)."""

    def __init__(self) -> None:
        self.packets_created = 0
        self.messages_recovered = 0

    def to_packet(self, msg: Message, inject_cycle: int) -> Packet:
        """Wrap a protocol message as a network packet."""
        if msg.src == msg.dst:
            raise SimulationError(
                f"message {msg!r} is tile-local; it must not reach the network"
            )
        self.packets_created += 1
        return Packet(
            src=msg.src,
            dst=msg.dst,
            size_flits=msg.size_flits,
            msg_class=msg.msg_class,
            inject_cycle=inject_cycle,
            payload=msg,
        )

    def to_message(self, packet: Packet) -> Message:
        """Recover the protocol message carried by an ejected packet."""
        msg = packet.payload
        if not isinstance(msg, Message):
            raise SimulationError(
                f"packet {packet!r} does not carry a protocol message"
            )
        self.messages_recovered += 1
        return msg
