"""Adapters presenting concrete simulators/models as
:class:`~repro.core.interfaces.NetworkModel`.

* :class:`DetailedNetworkAdapter` — wraps a flit-level simulator (the OO
  :class:`~repro.noc.network.CycleNetwork` or the GPU-style
  :class:`~repro.noc_gpu.simd_network.SimdNetwork`; they share the same
  inject/step/drain surface).
* :class:`AbstractModelAdapter` — wraps any
  :class:`~repro.abstractnet.base.AbstractNetworkModel`; latency is computed
  at send time, so the adapter is *inline* (no quantum skew).
"""

from __future__ import annotations

from typing import List

from ..abstractnet.base import AbstractNetworkModel
from ..errors import InvariantError, SimulationError, StallError
from ..fullsys.coherence import Message
from .bridge import MessageBridge
from .interfaces import Delivery

__all__ = ["DetailedNetworkAdapter", "AbstractModelAdapter"]


class DetailedNetworkAdapter:
    """Quantum-coupled adapter over a flit-level network simulator."""

    inline = False

    def __init__(self, network, bridge: MessageBridge | None = None) -> None:
        self.network = network
        self.bridge = bridge or MessageBridge()
        self.messages_sent = 0

    @property
    def cycle(self) -> int:
        return self.network.cycle

    @property
    def in_flight(self) -> int:
        return self.network.in_flight

    def send(self, msg: Message, now: int) -> None:
        if now < self.network.cycle:
            raise SimulationError(
                f"message created at {now} but network already at "
                f"{self.network.cycle}; quantum coupling is broken"
            )
        self.network.inject(self.bridge.to_packet(msg, now), cycle=now)
        self.messages_sent += 1

    def advance(self, to_cycle: int) -> None:
        while self.network.cycle < to_cycle:
            self.network.step()

    def pop_deliveries(self) -> List[Delivery]:
        out: List[Delivery] = []
        for packet in self.network.pop_delivered():
            msg = self.bridge.to_message(packet)
            out.append((msg, packet.eject_cycle, packet.latency))
        return out

    def drain(self, max_cycles: int = 1_000_000) -> None:
        """Step until empty; a hit cycle cap is a *stall*, never silent.

        The cap exists so a wedged network cannot spin forever, but hitting
        it is always a bug or an injected fault — so it raises a structured
        :class:`~repro.errors.StallError` with the full diagnostic dump
        (VC occupancy, oldest packets) rather than a bare message.
        """
        try:
            self.network.drain(max_cycles)
        except (StallError, InvariantError):
            raise  # already structured / a different failure class
        except SimulationError as exc:
            from ..resilience.watchdog import network_diagnostics

            diag = network_diagnostics(self.network)
            raise StallError(
                f"network failed to drain: {exc}\n" + diag.render(),
                diagnostics=diag,
            ) from exc

    def describe(self) -> dict:
        return {
            "network": type(self.network).__name__,
            "topology": repr(self.network.topo),
            "config": repr(self.network.config),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DetailedNetworkAdapter({self.network!r})"


class AbstractModelAdapter:
    """Inline adapter over a message-level latency model."""

    inline = True

    def __init__(self, model: AbstractNetworkModel) -> None:
        self.model = model
        self.cycle = 0
        self._pending: List[Delivery] = []
        self.messages_sent = 0

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def send(self, msg: Message, now: int) -> None:
        latency = self.model.latency(
            msg.src, msg.dst, msg.size_flits, msg.msg_class, now
        )
        if latency < 1:
            raise SimulationError(
                f"{self.model!r} produced non-positive latency {latency}"
            )
        self._pending.append((msg, now + latency, latency))
        self.messages_sent += 1

    def advance(self, to_cycle: int) -> None:
        self.model.on_quantum(to_cycle, to_cycle - self.cycle)
        self.cycle = to_cycle

    def pop_deliveries(self) -> List[Delivery]:
        out = self._pending
        self._pending = []
        return out

    def drain(self, max_cycles: int = 1_000_000) -> None:
        """Nothing buffered beyond :meth:`pop_deliveries`; a no-op."""

    def describe(self) -> dict:
        return self.model.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AbstractModelAdapter({self.model!r})"
