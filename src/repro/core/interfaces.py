"""The network-model interface the co-simulator programs against.

Reciprocal abstraction needs exactly three capabilities from a network
model, regardless of its fidelity:

1. accept a message at its creation cycle (:meth:`send` — the *context*
   direction: the component sees real traffic),
2. advance its own notion of time (:meth:`advance`), and
3. report deliveries with their latencies (:meth:`pop_deliveries` — the
   *feedback* direction: the system sees real latencies).

Cycle-level simulators implement these by actually moving flits; abstract
models implement them by evaluating a formula.  ``inline`` distinguishes the
two coupling styles: an inline model is evaluated synchronously inside the
full-system event loop (no quantum skew), while a non-inline (detailed)
model advances in quantum-sized slices.
"""

from __future__ import annotations

from typing import List, Protocol, Tuple, runtime_checkable

from ..fullsys.coherence import Message

__all__ = ["NetworkModel", "Delivery"]

#: (message, delivery_cycle, latency_cycles)
Delivery = Tuple[Message, int, int]


@runtime_checkable
class NetworkModel(Protocol):
    """What the co-simulator requires of any network model."""

    #: True when latencies are computed at send time and the model needs no
    #: quantum-synchronized advancement.
    inline: bool

    #: The model's current cycle (detailed models only need this to agree
    #: with the co-simulator about window boundaries).
    cycle: int

    def send(self, msg: Message, now: int) -> None:
        """Accept ``msg`` created at cycle ``now`` (the context direction)."""
        ...

    def advance(self, to_cycle: int) -> None:
        """Advance the model's state to ``to_cycle``."""
        ...

    def pop_deliveries(self) -> List[Delivery]:
        """Messages whose delivery is now known, with cycle and latency."""
        ...

    def drain(self, max_cycles: int) -> None:
        """Deliver everything still in flight (end of simulation)."""
        ...

    def describe(self) -> dict:
        """Name and parameters for reports."""
        ...
