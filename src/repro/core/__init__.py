"""Reciprocal abstraction — the paper's contribution.

The co-simulation framework couples the coarse-grain full-system simulator
with a network model of any fidelity through a three-method interface
(:class:`NetworkModel`), exchanging *traffic context* downward and *measured
latency* upward at synchronization-quantum boundaries.
"""

from .adapters import AbstractModelAdapter, DetailedNetworkAdapter
from .bridge import MessageBridge
from .config import TargetConfig, build_cosim, default_target_table
from .cosim import CoSimResult, CoSimulator
from .feedback import LatencyFeedback
from .interfaces import Delivery, NetworkModel
from .quantum import AdaptiveQuantum, FixedQuantum

__all__ = [
    "NetworkModel",
    "Delivery",
    "CoSimulator",
    "CoSimResult",
    "MessageBridge",
    "LatencyFeedback",
    "FixedQuantum",
    "AdaptiveQuantum",
    "DetailedNetworkAdapter",
    "AbstractModelAdapter",
    "TargetConfig",
    "build_cosim",
    "default_target_table",
]
