"""Synchronization-quantum control.

The two simulators exchange traffic and latencies only at quantum
boundaries.  A larger quantum amortizes coupling overhead (and, with the
GPU-style network, kernel launches) but lets deliveries land up to a quantum
late; experiment E7 sweeps this trade-off.

:class:`AdaptiveQuantum` implements the refinement the paper's design space
invites: shrink the quantum when the network is busy (accuracy matters,
deliveries are frequent) and grow it when idle (nothing to get wrong).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..util import clamp, ewma

__all__ = ["FixedQuantum", "AdaptiveQuantum"]


class FixedQuantum:
    """Constant quantum of ``cycles``."""

    def __init__(self, cycles: int = 4) -> None:
        if cycles < 1:
            raise ConfigError(f"quantum must be >= 1 cycle, got {cycles}")
        self.cycles = cycles

    def next_quantum(self) -> int:
        return self.cycles

    def observe_window(self, messages: int, deliveries: int) -> None:
        """Fixed control ignores traffic."""

    def describe(self) -> dict:
        return {"quantum": "fixed", "cycles": self.cycles}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedQuantum({self.cycles})"


class AdaptiveQuantum:
    """Traffic-sensitive quantum in ``[min_cycles, max_cycles]``.

    Tracks an EWMA of messages exchanged per cycle; the quantum is sized so
    that an *expected* ``target_messages`` cross each window — busy phases
    get fine-grained coupling, idle phases get coarse, cheap windows.
    """

    def __init__(
        self,
        min_cycles: int = 16,
        max_cycles: int = 512,
        target_messages: float = 32.0,
        alpha: float = 0.3,
    ) -> None:
        if not 1 <= min_cycles <= max_cycles:
            raise ConfigError(
                f"need 1 <= min <= max, got {min_cycles}..{max_cycles}"
            )
        if target_messages <= 0:
            raise ConfigError("target_messages must be positive")
        self.min_cycles = min_cycles
        self.max_cycles = max_cycles
        self.target_messages = target_messages
        self.alpha = alpha
        self._rate = 0.0  # messages per cycle, smoothed
        self._current = max_cycles

    def next_quantum(self) -> int:
        return self._current

    def observe_window(self, messages: int, deliveries: int) -> None:
        window = max(1, self._current)
        sample = (messages + deliveries) / window
        self._rate = ewma(self._rate, sample, self.alpha)
        if self._rate <= 0.0:
            self._current = self.max_cycles
            return
        ideal = self.target_messages / self._rate
        self._current = int(clamp(ideal, self.min_cycles, self.max_cycles))

    def describe(self) -> dict:
        return {
            "quantum": "adaptive",
            "min": self.min_cycles,
            "max": self.max_cycles,
            "target_messages": self.target_messages,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdaptiveQuantum({self.min_cycles}..{self.max_cycles})"
