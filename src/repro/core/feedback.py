"""The reciprocal feedback path: detailed-model latencies flowing back up.

:class:`LatencyFeedback` aggregates latencies observed by the detailed
network into an EWMA table keyed by (hop distance, message class).  Three
consumers use it:

* the co-simulator's statistics (per-class latency the system experienced),
* abstract models being retuned online
  (:class:`~repro.abstractnet.table.TableLatencyModel` and the queueing
  model's correction term), via :meth:`attach`,
* the hybrid modes of experiment E8, which *deliver* from the table.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..abstractnet.base import AbstractNetworkModel
from ..fullsys.coherence import Message
from ..noc.topology import Topology
from ..util import ewma

__all__ = ["LatencyFeedback"]


class LatencyFeedback:
    """EWMA latency table fed by detailed-network observations."""

    def __init__(self, topo: Topology, alpha: float = 0.1) -> None:
        self.topo = topo
        self.alpha = alpha
        self._table: Dict[Tuple[int, int], float] = {}
        self._counts: Dict[Tuple[int, int], int] = defaultdict(int)
        self._listeners: List[AbstractNetworkModel] = []
        self.observations = 0

    # ------------------------------------------------------------------
    def attach(self, model: AbstractNetworkModel) -> None:
        """Forward every observation to ``model.observe`` as well."""
        self._listeners.append(model)

    def record(self, msg: Message, latency: int) -> None:
        """One message delivered by the detailed network."""
        distance = self.topo.node_distance(msg.src, msg.dst)
        key = (distance, msg.msg_class)
        current = self._table.get(key)
        self._table[key] = (
            float(latency) if current is None else ewma(current, latency, self.alpha)
        )
        self._counts[key] += 1
        self.observations += 1
        for model in self._listeners:
            model.observe(msg.src, msg.dst, msg.size_flits, msg.msg_class, latency)

    # ------------------------------------------------------------------
    def estimate(
        self, distance: int, msg_class: int, default: Optional[float] = None
    ) -> Optional[float]:
        """Learned latency for a bucket, or ``default`` when never observed.

        Falls back to the same distance in any class (distance dominates
        latency) before giving up.
        """
        value = self._table.get((distance, msg_class))
        if value is not None:
            return value
        same_distance = [
            v for (d, _), v in self._table.items() if d == distance
        ]
        if same_distance:
            return sum(same_distance) / len(same_distance)
        return default

    def snapshot(self) -> Dict[Tuple[int, int], float]:
        return dict(self._table)

    def count(self, distance: int, msg_class: int) -> int:
        return self._counts[(distance, msg_class)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyFeedback(buckets={len(self._table)}, n={self.observations})"
