"""Whole-experiment configuration and the target-machine table.

:class:`TargetConfig` bundles everything one co-simulation run needs —
topology, CMP parameters, NoC parameters, workload, network-model choice,
and quantum — and knows how to build the pieces.  The experiment harness
(:mod:`repro.harness.experiments`) composes runs from these.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..abstractnet import (
    FixedLatencyModel,
    QueueingLatencyModel,
    TableLatencyModel,
)
from ..errors import ConfigError
from ..fullsys.cmp import CmpSystem
from ..fullsys.config import CmpConfig
from ..noc.config import NocConfig
from ..noc.network import CycleNetwork
from ..noc.routing import make_routing
from ..noc.topology import ConcentratedMesh, Mesh, Topology, Torus
from ..workloads.apps import make_mixed_programs, make_programs
from .adapters import AbstractModelAdapter, DetailedNetworkAdapter
from .cosim import CoSimulator
from .feedback import LatencyFeedback

__all__ = ["TargetConfig", "default_target_table", "build_cosim"]

_NETWORK_MODELS = ("cycle", "simd", "fixed", "queueing", "table", "table-shadow")


@dataclass
class TargetConfig:
    """One runnable co-simulation configuration."""

    width: int = 8
    height: int = 8
    concentration: int = 1
    topology: str = "mesh"  # mesh | torus | cmesh
    routing: str = "xy"
    #: application name, or "mix:<a>+<b>+..." for a multiprogrammed mix
    app: str = "fft"
    seed: int = 1
    scale: float = 1.0
    network_model: str = "cycle"
    quantum: int = 4
    noc: NocConfig = field(default_factory=NocConfig)
    cmp: CmpConfig = field(default_factory=CmpConfig)
    #: optional :class:`repro.resilience.faults.FaultConfig` (typed loosely
    #: so the core never imports resilience at module level); requires the
    #: cycle network model.  None keeps every fault hook disabled.
    faults: object = None
    #: watchdog threshold in synchronization quanta: 0 = automatic (a
    #: watchdog is installed only when faults are injected, with its
    #: default threshold); > 0 = always install one with this threshold.
    stall_quanta: int = 0

    def __post_init__(self) -> None:
        if self.network_model not in _NETWORK_MODELS:
            raise ConfigError(
                f"unknown network model {self.network_model!r}; "
                f"known: {_NETWORK_MODELS}"
            )
        if self.stall_quanta < 0:
            raise ConfigError(
                f"stall_quanta must be >= 0, got {self.stall_quanta}"
            )
        if self.faults is not None and self.network_model != "cycle":
            raise ConfigError(
                "fault injection requires network_model='cycle' "
                f"(got {self.network_model!r})"
            )

    # ------------------------------------------------------------------
    def make_topology(self) -> Topology:
        if self.topology == "mesh" and self.concentration == 1:
            return Mesh(self.width, self.height)
        if self.topology == "torus":
            return Torus(self.width, self.height, self.concentration)
        if self.topology in ("mesh", "cmesh"):
            return ConcentratedMesh(self.width, self.height, self.concentration)
        raise ConfigError(f"unknown topology {self.topology!r}")

    @property
    def num_cores(self) -> int:
        return self.width * self.height * self.concentration

    def variant(self, **changes) -> "TargetConfig":
        """A copy with some fields replaced (ablation sweeps)."""
        return replace(self, **changes)


def build_cosim(
    config: TargetConfig,
    simd_network_factory=None,
    check_invariants: bool = False,
    verify: str = "warn",
    engine: str = "auto",
) -> CoSimulator:
    """Assemble system + network model + co-simulator from a config.

    ``simd_network_factory`` injects the GPU-style network constructor
    without making this module depend on :mod:`repro.noc_gpu` (which imports
    the other way for its tests).  ``check_invariants`` installs a
    :class:`~repro.analysis.invariants.InvariantChecker` that validates
    message conservation, time monotonicity, and NoC credit/VC conservation
    at every quantum boundary.

    ``engine`` selects the NoC execution engine (see :mod:`repro.engine`):
    ``"auto"`` (default) runs engine-compatible configs on the batched
    vectorized kernels and everything else on the reference loop;
    ``"batched"`` does the same but logs the fallback louder; ``"oo"``
    pins the reference loop.  Engines are bit-identical wherever both
    apply, and the choice is recorded on the returned co-simulator's
    ``engine_decision`` (and in every result's ``network_description``).

    ``verify`` gates construction on :mod:`repro.verify`'s static checks
    (deadlock-freedom of the routing triple, protocol safety): ``"warn"``
    (default) emits a :class:`RuntimeWarning` per refuted property,
    ``"strict"`` raises :class:`ConfigError`, ``"off"`` skips the pass.
    Verification is memoized per process, so sweeps pay for each distinct
    configuration shape once.
    """
    if verify not in ("off", "warn", "strict"):
        raise ConfigError(
            f"verify must be 'off', 'warn', or 'strict', got {verify!r}"
        )
    if verify != "off":
        from ..verify import verify_target_config  # deferred: optional pass

        failed = [r for r in verify_target_config(config) if not r.ok]
        if failed:
            text = "\n".join(r.render() for r in failed)
            if verify == "strict":
                raise ConfigError(
                    "configuration failed pre-simulation verification:\n" + text
                )
            import warnings

            warnings.warn(
                "configuration failed pre-simulation verification "
                "(simulating anyway; pass verify='strict' to refuse):\n" + text,
                RuntimeWarning,
                stacklevel=2,
            )
    topo = config.make_topology()
    if config.app.startswith("mix:"):
        # Multiprogrammed mix, e.g. "mix:fft+canneal": apps round-robin over
        # cores with disjoint shared regions and no barriers.
        names = config.app[len("mix:"):].split("+")
        programs = make_mixed_programs(
            names, topo.num_nodes, seed=config.seed, scale=config.scale
        )
    else:
        programs = make_programs(
            config.app, topo.num_nodes, seed=config.seed, scale=config.scale
        )
    system = CmpSystem(topo, config.cmp, programs)
    feedback = LatencyFeedback(topo)
    routing = make_routing(config.routing)

    # Deferred so the core's module graph stays engine-free (the engine
    # package imports core back for the lockstep batch driver).
    from ..engine.api import OO_KERNEL_VERSION, EngineDecision, resolve_engine

    if simd_network_factory is not None:
        # The caller supplies the network; provenance says so (the
        # lockstep batch driver overwrites this with its own decision).
        engine_decision = EngineDecision(
            "oo", "injected network factory", OO_KERNEL_VERSION
        )
    else:
        engine_decision = resolve_engine(config, engine)

    name = config.network_model
    shadow = None
    faults_state = None
    if config.faults is not None:
        # Deferred: the core never imports resilience at module level (the
        # harness package eagerly imports this module, and resilience
        # imports the harness-facing core surface back).
        from ..resilience import (
            DegradedRouting,
            FaultState,
            ResilientNetworkAdapter,
            compile_schedule,
        )

        schedule = compile_schedule(config.faults, topo)
        faults_state = FaultState(schedule, topo)
        degraded = DegradedRouting(routing, faults_state, topo, noc=config.noc)
        faults_state.attach_routing(degraded)
        cycle_net = CycleNetwork(topo, config.noc, routing=degraded)
        cycle_net.attach_faults(faults_state)
        network = ResilientNetworkAdapter(cycle_net, faults=faults_state)
    elif name == "cycle":
        network = DetailedNetworkAdapter(
            CycleNetwork(topo, config.noc, routing=routing)
        )
    elif name == "simd":
        if simd_network_factory is not None:
            # An injected factory (tests, the lockstep batch driver)
            # overrides engine selection — it *is* the engine.
            network = DetailedNetworkAdapter(simd_network_factory(topo, config.noc))
        elif engine_decision.is_batched:
            from ..engine.network import SimdBatch  # deferred heavy import

            network = DetailedNetworkAdapter(
                SimdBatch(topo, config.noc, lanes=1).lane(0)
            )
        else:
            from ..noc_gpu import SimdNetwork  # deferred heavy import

            network = DetailedNetworkAdapter(SimdNetwork(topo, config.noc))
    elif name == "fixed":
        network = AbstractModelAdapter(FixedLatencyModel(topo, config.noc))
    elif name == "queueing":
        network = AbstractModelAdapter(
            QueueingLatencyModel(topo, config.noc, routing=routing)
        )
    elif name == "table":
        model = TableLatencyModel(topo, config.noc)
        feedback.attach(model)
        network = AbstractModelAdapter(model)
    elif name == "table-shadow":
        model = TableLatencyModel(topo, config.noc)
        feedback.attach(model)
        network = AbstractModelAdapter(model)
        shadow = DetailedNetworkAdapter(
            CycleNetwork(topo, config.noc, routing=routing)
        )
    else:  # pragma: no cover - guarded in __post_init__
        raise ConfigError(f"unknown network model {name!r}")

    invariants = None
    if check_invariants:
        from ..analysis.invariants import InvariantChecker  # deferred: optional

        invariants = InvariantChecker()
    watchdog = None
    if config.stall_quanta > 0 or faults_state is not None:
        from ..resilience.watchdog import Watchdog  # deferred: optional

        watchdog = (
            Watchdog(config.stall_quanta) if config.stall_quanta > 0 else Watchdog()
        )
    cosim = CoSimulator(
        system,
        network,
        quantum=config.quantum,
        feedback=feedback,
        shadow=shadow,
        invariants=invariants,
        watchdog=watchdog,
    )
    cosim.engine_decision = engine_decision
    return cosim


def default_target_table() -> Dict[str, str]:
    """The target-system configuration table (the paper's Table 1 analogue)."""
    noc = NocConfig()
    cmp = CmpConfig()
    return {
        "Cores": "64 in-order tiles (8x8 mesh), IPC 2, MLP 4",
        "L1 data cache": f"{cmp.l1_lines} lines, {cmp.l1_ways}-way LRU, "
        f"{cmp.l1_hit_latency}-cycle hit",
        "L2 cache": f"distributed S-NUCA, {cmp.l2_lines} lines/bank, "
        f"{cmp.l2_ways}-way, {cmp.l2_latency}-cycle array",
        "Coherence": "directory MSI, blocking home, explicit PutM/PutAck",
        "Memory": f"{cmp.mem_latency}-cycle DRAM, 1 req/{cmp.mem_service} cycles "
        "per controller, controllers at mesh corners",
        "NoC": f"{noc.num_vcs} VCs x {noc.buffer_depth} flits, "
        f"{noc.router_delay}-cycle routers, {noc.link_delay}-cycle links, "
        "XY wormhole, credit flow control",
        "Messages": f"control {cmp.ctrl_flits} flit, data {cmp.data_flits} flits",
        "Co-simulation": "reciprocal abstraction, quantum 4 (ground truth: 1)",
    }
