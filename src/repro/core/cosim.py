"""The reciprocal-abstraction co-simulator — the paper's contribution.

:class:`CoSimulator` couples a coarse-grain full-system simulator
(:class:`~repro.fullsys.cmp.CmpSystem`) with any network model implementing
:class:`~repro.core.interfaces.NetworkModel`:

* **context** direction: every network-bound protocol message the system
  creates is handed to the network model at its creation cycle, so the
  detailed component always sees real, closed-loop traffic;
* **feedback** direction: the latency the network model reports for each
  message is the latency the system experiences, and is additionally
  aggregated into a :class:`~repro.core.feedback.LatencyFeedback` table that
  can retune abstract models online.

Detailed (non-inline) models advance in *synchronization quanta*: the system
runs ``[t, t+Q)``, its messages are injected at their creation cycles, the
network advances the same window, and deliveries landing inside the window
are clamped to the boundary (at Q=1 this clamping is at most one cycle — the
configuration used as ground truth throughout the experiments).  Inline
(abstract) models are evaluated synchronously inside the event loop, exactly
as a built-in analytical network would be.

A *shadow* detailed network can be attached for the hybrid modes of
experiment E8: it receives the same traffic (context) but its deliveries are
discarded except for feeding the feedback table, while an inline model
supplies the latencies the system actually uses.
"""

from __future__ import annotations

import functools
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigError, SimulationError
from ..fullsys.cmp import CmpSystem
from ..fullsys.coherence import Message
from .feedback import LatencyFeedback
from .interfaces import NetworkModel
from .quantum import FixedQuantum

__all__ = ["CoSimulator", "CoSimResult"]


@dataclass
class CoSimResult:
    """Everything an experiment needs from one co-simulation run."""

    finish_cycle: Optional[int]
    cycles: int
    windows: int
    messages_sent: int
    deliveries: int
    clamped_deliveries: int
    #: latency each delivered message *experienced* (incl. quantum clamping),
    #: keyed by message class; key -1 aggregates all classes.
    applied_latencies: Dict[int, List[int]] = field(default_factory=dict)
    wall_system: float = 0.0
    wall_network: float = 0.0
    wall_total: float = 0.0
    system_summary: Dict[str, float] = field(default_factory=dict)
    network_description: Dict[str, object] = field(default_factory=dict)
    feedback_snapshot: Dict = field(default_factory=dict)

    def mean_latency(self, msg_class: int = -1) -> float:
        """Mean applied message latency (all classes by default)."""
        lats = self.applied_latencies.get(msg_class, [])
        return sum(lats) / len(lats) if lats else 0.0

    def latency_count(self, msg_class: int = -1) -> int:
        return len(self.applied_latencies.get(msg_class, []))

    @property
    def completed(self) -> bool:
        return self.finish_cycle is not None


class CoSimulator:
    """Couple a full-system simulator with a network model."""

    def __init__(
        self,
        system: CmpSystem,
        network: NetworkModel,
        quantum: int | FixedQuantum | object = 4,
        feedback: Optional[LatencyFeedback] = None,
        shadow: Optional[NetworkModel] = None,
        invariants: Optional[object] = None,
        watchdog: Optional[object] = None,
        checkpointer: Optional[object] = None,
    ) -> None:
        self.system = system
        self.network = network
        self.quantum = (
            FixedQuantum(quantum) if isinstance(quantum, int) else quantum
        )
        self.feedback = feedback if feedback is not None else LatencyFeedback(
            system.topo
        )
        self.shadow = shadow
        #: optional runtime checker (see repro.analysis.invariants); it is
        #: duck-typed so the core stays import-independent of analysis.
        self.invariants = invariants
        #: optional progress monitor (see repro.resilience.watchdog) and
        #: checkpoint writer (see repro.resilience.checkpoint); duck-typed
        #: for the same reason — core never imports resilience.
        self.watchdog = watchdog
        self.checkpointer = checkpointer
        if shadow is not None and shadow.inline:
            raise ConfigError("a shadow network must be a detailed (non-inline) model")
        if shadow is not None and not network.inline:
            raise ConfigError(
                "shadow mode pairs an inline delivery model with a detailed "
                "shadow; the main network is already detailed"
            )

        self._outbox: List[Message] = []
        self._shadow_outbox: List[Message] = []
        self._applied: Dict[int, List[int]] = defaultdict(list)
        self.messages_sent = 0
        self.deliveries = 0
        self.clamped = 0
        self.windows = 0
        self._wall_system = 0.0
        self._wall_network = 0.0
        #: execution provenance (repro.engine.api.EngineDecision), set by
        #: build_cosim / the lockstep batch driver; duck-typed so the core
        #: never imports the engine package at module level.
        self.engine_decision: Optional[object] = None
        #: False until the first run() call has started the system; lets a
        #: checkpoint-restored CoSimulator resume run() without re-running
        #: system start-up (which would double-schedule core wake-ups).
        self._started = False
        system.transport = self._on_message

    # ------------------------------------------------------------------
    # Transport hook (called by the system at message-creation time)
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        self.messages_sent += 1
        now = self.system.now
        if self.network.inline:
            self.network.send(msg, now)
            for delivered, when, latency in self.network.pop_deliveries():
                self._schedule_delivery(delivered, when, record_feedback=False)
        else:
            self._outbox.append(msg)
        if self.shadow is not None:
            self._shadow_outbox.append(msg)

    def _schedule_delivery(
        self, msg: Message, when: int, record_feedback: bool
    ) -> None:
        deliver_at = max(when, self.system.now)
        if deliver_at > when:
            self.clamped += 1
        latency = deliver_at - msg.created_cycle
        self._applied[msg.msg_class].append(latency)
        self._applied[-1].append(latency)
        self.deliveries += 1
        if record_feedback:
            self.feedback.record(msg, latency)
        # functools.partial of a bound method (not a lambda) so the pending
        # event heap stays picklable for checkpoint/restore.
        self.system.events.schedule(
            deliver_at, functools.partial(self.system.deliver, msg)
        )

    # ------------------------------------------------------------------
    # Window phases
    #
    # One synchronization window decomposes into: (system) run the event
    # loop to the boundary, (flush) hand buffered messages to the network
    # at their creation cycles, (advance) step the network to the
    # boundary, (collect) schedule its deliveries back into the event
    # loop, (finish) invariants / quantum observation / monitors.  run()
    # composes them sequentially; the lockstep multi-job driver
    # (repro.engine.batch) interleaves each phase across all lanes so a
    # shared batched kernel advances every simulation at once.
    # ------------------------------------------------------------------
    def _begin(self) -> None:
        """Start the system exactly once (checkpoint-restore safe)."""
        if not self._started:
            if self.invariants is not None:
                self.invariants.on_run_start(self)
            self.system.start()
            self._started = True

    def _check_wedge(self) -> None:
        if (
            self.system.events.pending == 0
            and not self._outbox
            and getattr(self.network, "in_flight", 0) == 0
        ):
            raise SimulationError(
                "co-simulation wedged: no events, no traffic in flight, "
                f"but only {self.system._finished_cores} of "
                f"{len(self.system.cores)} cores finished"
            )

    def _phase_system(self, target: int) -> None:
        t0 = time.perf_counter()  # simlint: allow[wall-clock]
        self.system.run_until(target)
        self._wall_system += time.perf_counter() - t0  # simlint: allow[wall-clock, nondeterminism-taint]

    def _phase_flush(self) -> None:
        t0 = time.perf_counter()  # simlint: allow[wall-clock]
        if not self.network.inline:
            for msg in self._outbox:
                self.network.send(msg, msg.created_cycle)
            self._outbox.clear()
        if self.shadow is not None:
            for msg in self._shadow_outbox:
                self.shadow.send(msg, msg.created_cycle)
            self._shadow_outbox.clear()
        self._wall_network += time.perf_counter() - t0  # simlint: allow[wall-clock, nondeterminism-taint]

    def _phase_advance(self, target: int) -> None:
        t0 = time.perf_counter()  # simlint: allow[wall-clock]
        self.network.advance(target)
        if self.shadow is not None:
            self.shadow.advance(target)
        self._wall_network += time.perf_counter() - t0  # simlint: allow[wall-clock, nondeterminism-taint]

    def _phase_collect(self) -> None:
        t0 = time.perf_counter()  # simlint: allow[wall-clock]
        if not self.network.inline:
            for msg, when, latency in self.network.pop_deliveries():
                self._schedule_delivery(msg, when, record_feedback=True)
        if self.shadow is not None:
            for msg, when, latency in self.shadow.pop_deliveries():
                # Shadow deliveries feed the reciprocal table only; the
                # system already received this message from the inline model.
                self.feedback.record(msg, latency)
        self._wall_network += time.perf_counter() - t0  # simlint: allow[wall-clock, nondeterminism-taint]

    def _phase_finish(self, target: int, sent_before: int) -> None:
        """Post-window bookkeeping for a main-loop window."""
        if self.invariants is not None:
            self.invariants.after_window(self, target)
        self.quantum.observe_window(
            self.messages_sent - sent_before, self.deliveries
        )
        self.windows += 1
        if self.watchdog is not None:
            self.watchdog.after_window(self, target)
        if self.checkpointer is not None:
            self.checkpointer.after_window(self, target)

    def _tail_pending(self) -> bool:
        """Anything left that :meth:`_drain_tail` must still deliver?"""
        return bool(
            self.system.events.pending
            or self._outbox
            or self._shadow_outbox
            or getattr(self.network, "in_flight", 0)
            or (self.shadow is not None and self.shadow.in_flight)
        )

    def _drain_guard(self) -> int:
        """The cycle beyond which a non-empty tail is a wedge.

        A retransmitting network model may legitimately need far longer
        than the default guard (bounded exponential backoff between
        attempts); it advertises its worst case via ``drain_guard_cycles``.
        """
        return self.system.now + max(
            10_000,
            100 * self.quantum.next_quantum(),
            getattr(self.network, "drain_guard_cycles", 0),
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 5_000_000) -> CoSimResult:
        """Run until every core finishes (or ``max_cycles``)."""
        wall_start = time.perf_counter()  # simlint: allow[wall-clock]
        self._begin()
        t = self.system.now
        while not self.system.all_finished:
            if t >= max_cycles:
                break
            self._check_wedge()
            window = self.quantum.next_quantum()
            target = min(t + window, max_cycles)
            sent_before = self.messages_sent
            self._phase_system(target)
            self._advance_network(target)
            self._phase_finish(target, sent_before)
            t = target
        if self.system.all_finished:
            self._drain_tail()
        return self._result(time.perf_counter() - wall_start)  # simlint: allow[wall-clock]

    def _drain_tail(self) -> None:
        """Deliver the protocol's trailing messages after the last core
        finishes (writebacks, acks, unblocks) so message accounting balances
        and the final system state is quiescent."""
        guard = self._drain_guard()
        while self._tail_pending():
            if self.system.now > guard:
                raise SimulationError(
                    "co-simulation tail failed to drain "
                    f"({self.system.events.pending} events, "
                    f"{getattr(self.network, 'in_flight', 0)} packets left)"
                )
            target = self.system.now + self.quantum.next_quantum()
            self.system.run_until(target)
            self._advance_network(target)
            if self.invariants is not None:
                self.invariants.after_window(self, target)

    def _advance_network(self, target: int) -> None:
        self._phase_flush()
        self._phase_advance(target)
        self._phase_collect()

    # ------------------------------------------------------------------
    def _result(self, wall_total: float) -> CoSimResult:
        description = dict(self.network.describe())
        description["quantum"] = self.quantum.describe()
        if self.shadow is not None:
            description["shadow"] = self.shadow.describe()
        # Execution provenance, set by build_cosim / the batch driver (see
        # repro.engine): which engine ran the NoC.  Engines are
        # bit-identical, so this never affects the metrics themselves.
        engine = getattr(self, "engine_decision", None)
        if engine is not None:
            description["engine"] = {
                "name": engine.name,
                "kernel_version": engine.kernel_version,
            }
        return CoSimResult(
            finish_cycle=self.system.finish_cycle,
            cycles=self.system.now,
            windows=self.windows,
            messages_sent=self.messages_sent,
            deliveries=self.deliveries,
            clamped_deliveries=self.clamped,
            applied_latencies=dict(self._applied),
            wall_system=self._wall_system,
            wall_network=self._wall_network,
            wall_total=wall_total,
            system_summary=self.system.summary(),
            network_description=description,
            feedback_snapshot=self.feedback.snapshot(),
        )
