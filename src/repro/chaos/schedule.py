"""Seeded infrastructure fault schedules: ``ChaosConfig → compile_schedule``.

The design mirrors :mod:`repro.resilience.faults`: a frozen config says
*how much* to break, the compiler turns it into a fully deterministic list
of :class:`ChaosEvent` s, and the same ``(seed, counts)`` always compiles
to the same schedule on every machine — a chaotic run is exactly as
reproducible as a clean one.

Where the resilience schedule is indexed by *simulated cycle*, an
infrastructure schedule is indexed by **operation ordinal**: "the 3rd
store commit fails with an I/O error", "the 2nd worker spawn is
SIGKILLed", "the daemon dies at its 1st pass through the
``serve.submit.before-ack`` crash point".  Ordinals are drawn without
replacement from ``[1, window]`` per choke point, so one schedule never
stacks two faults on the same operation.

Choke points and their fault kinds:

=====================  ==========================================================
operation              kinds
=====================  ==========================================================
``store.commit``       ``io-error`` (sqlite disk I/O error), ``disk-full``
                       (ENOSPC), ``torn`` (transaction rolled back *and* the
                       process dies — the power-cut signature), ``slow``
                       (commit delayed by ``slow_delay_s``)
``pool.spawn``         ``spawn-fail`` (``OSError`` EMFILE — fd exhaustion),
                       ``kill`` (worker SIGKILLed right after spawn)
``checkpoint.save``    ``tear`` (the snapshot file is truncated after the
                       atomic rename — a torn write)
``cluster.node``       ``kill`` (a whole cluster node dies ``kill -9``-style
                       and is later restarted; harness-driven — the cluster
                       audit counts submissions and fires these itself)
crash points           ``crash`` (the process dies at a named code location;
                       see :data:`CRASH_POINTS`)
=====================  ==========================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple

from ..errors import ChaosError
from ..util import Rng, check_non_negative, derive_seed

__all__ = [
    "CRASH_POINTS",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosSchedule",
    "compile_schedule",
]

#: every named crash point a schedule may target.  Each is a single
#: ``CHAOS_CRASH_HOOK`` call in the serve layer:
#:
#: * ``serve.submit.before-ack`` — after the pending row is durable and the
#:   job is queued, before the 200 acknowledgement is written (the
#:   accepted-but-unacked window the durability contract exists for);
#: * ``scheduler.after-mark-running`` — a job's process is live and its row
#:   says ``running``, but the scheduler dies before ever collecting it;
#: * ``scheduler.before-commit`` — a worker finished, but the scheduler
#:   dies before committing the result (the work must be redone, and redone
#:   byte-identically).
CRASH_POINTS: Tuple[str, ...] = (
    "serve.submit.before-ack",
    "scheduler.after-mark-running",
    "scheduler.before-commit",
)


@dataclass(frozen=True)
class ChaosConfig:
    """How much infrastructure to break, described declaratively."""

    seed: int = 0
    #: operation ordinals are drawn uniformly from [1, window] per choke point
    window: int = 8
    #: store commits answered with a wrapped sqlite "disk I/O error"
    store_io_errors: int = 0
    #: store commits answered with ENOSPC
    disk_full_errors: int = 0
    #: store commits rolled back followed by simulated process death
    torn_commits: int = 0
    #: store commits delayed by ``slow_delay_s``
    slow_commits: int = 0
    #: delay per slow commit, seconds
    slow_delay_s: float = 0.05
    #: worker processes SIGKILLed immediately after spawn
    worker_kills: int = 0
    #: worker spawns that fail with OSError (fd exhaustion)
    spawn_failures: int = 0
    #: checkpoint snapshot files truncated after their atomic rename
    checkpoint_tears: int = 0
    #: whole cluster nodes SIGKILLed (and restarted) mid-campaign —
    #: consumed only by the ``--mode cluster`` audit
    node_kills: int = 0
    #: named crash points (:data:`CRASH_POINTS`); each fires once, at a
    #: seeded ordinal of its own pass counter
    crash_points: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.crash_points, list):  # JSON round-trip convenience
            object.__setattr__(self, "crash_points", tuple(self.crash_points))
        for name in (
            "store_io_errors",
            "disk_full_errors",
            "torn_commits",
            "slow_commits",
            "worker_kills",
            "spawn_failures",
            "checkpoint_tears",
            "node_kills",
        ):
            try:
                check_non_negative(getattr(self, name), name)
            except Exception as exc:
                raise ChaosError(str(exc)) from exc
        if self.window < 1:
            raise ChaosError(f"window must be >= 1, got {self.window}")
        if self.slow_delay_s < 0:
            raise ChaosError(f"slow_delay_s must be >= 0, got {self.slow_delay_s}")
        for point in self.crash_points:
            if point not in CRASH_POINTS:
                raise ChaosError(
                    f"unknown crash point {point!r}; known points: "
                    + ", ".join(CRASH_POINTS)
                )
        if len(set(self.crash_points)) != len(self.crash_points):
            raise ChaosError(f"duplicate crash points in {self.crash_points!r}")
        store_faults = (
            self.store_io_errors
            + self.disk_full_errors
            + self.torn_commits
            + self.slow_commits
        )
        if store_faults > self.window:
            raise ChaosError(
                f"{store_faults} store faults do not fit in a window of "
                f"{self.window} commits (raise window=)"
            )
        if self.worker_kills + self.spawn_failures > self.window:
            raise ChaosError(
                f"{self.worker_kills + self.spawn_failures} pool faults do "
                f"not fit in a window of {self.window} spawns (raise window=)"
            )
        if self.checkpoint_tears > self.window:
            raise ChaosError(
                f"{self.checkpoint_tears} checkpoint tears do not fit in a "
                f"window of {self.window} saves (raise window=)"
            )
        if self.node_kills > self.window:
            raise ChaosError(
                f"{self.node_kills} node kills do not fit in a window of "
                f"{self.window} submissions (raise window=)"
            )

    @property
    def any_faults(self) -> bool:
        """True if this config injects anything at all."""
        return bool(
            self.store_io_errors
            or self.disk_full_errors
            or self.torn_commits
            or self.slow_commits
            or self.worker_kills
            or self.spawn_failures
            or self.checkpoint_tears
            or self.node_kills
            or self.crash_points
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (``ChaosConfig(**d)`` round-trips)."""
        data = asdict(self)
        data["crash_points"] = list(self.crash_points)
        return data


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled infrastructure fault: which operation, which pass."""

    op: str  # "store.commit" | "pool.spawn" | "checkpoint.save" | a crash point
    nth: int  # 1-based pass ordinal of ``op`` at which the fault fires
    kind: str  # see the module table

    def describe(self) -> str:
        return f"{self.op}#{self.nth}: {self.kind}"


@dataclass(frozen=True)
class ChaosSchedule:
    """A compiled, deterministic infrastructure fault schedule."""

    config: ChaosConfig
    events: Tuple[ChaosEvent, ...]

    def describe(self) -> Dict[str, object]:
        return {
            "seed": self.config.seed,
            "window": self.config.window,
            "events": [event.describe() for event in self.events],
        }


def _draw_ordinals(rng: Rng, window: int, count: int) -> List[int]:
    """``count`` distinct ordinals from [1, window], ascending."""
    candidates = list(range(1, window + 1))
    rng.shuffle(candidates)
    return sorted(candidates[:count])


def compile_schedule(config: ChaosConfig) -> ChaosSchedule:
    """Compile a :class:`ChaosConfig` into a deterministic schedule.

    Per choke point, fault kinds are shuffled together and assigned to
    ordinals drawn without replacement — both from a stream seeded by
    ``derive_seed(config.seed, "chaos-schedule")``, never from wall-clock
    state, so the schedule is a pure function of the config.
    """
    rng = Rng(derive_seed(config.seed, "chaos-schedule"), "chaos")
    events: List[ChaosEvent] = []

    store_kinds = (
        ["io-error"] * config.store_io_errors
        + ["disk-full"] * config.disk_full_errors
        + ["torn"] * config.torn_commits
        + ["slow"] * config.slow_commits
    )
    rng.shuffle(store_kinds)
    for nth, kind in zip(_draw_ordinals(rng, config.window, len(store_kinds)), store_kinds):
        events.append(ChaosEvent(op="store.commit", nth=nth, kind=kind))

    pool_kinds = ["kill"] * config.worker_kills + ["spawn-fail"] * config.spawn_failures
    rng.shuffle(pool_kinds)
    for nth, kind in zip(_draw_ordinals(rng, config.window, len(pool_kinds)), pool_kinds):
        events.append(ChaosEvent(op="pool.spawn", nth=nth, kind=kind))

    for nth in _draw_ordinals(rng, config.window, config.checkpoint_tears):
        events.append(ChaosEvent(op="checkpoint.save", nth=nth, kind="tear"))

    # Guarded: drawing for a zero count would still consume RNG state and
    # silently change every existing seeded schedule.
    if config.node_kills:
        for nth in _draw_ordinals(rng, config.window, config.node_kills):
            events.append(ChaosEvent(op="cluster.node", nth=nth, kind="kill"))

    # Crash points are iterated in their canonical order (not submission
    # order) so the schedule never depends on how the config was spelled.
    for point in sorted(config.crash_points):
        events.append(
            ChaosEvent(op=point, nth=rng.randint(1, config.window + 1), kind="crash")
        )

    events.sort(key=lambda event: (event.op, event.nth))
    return ChaosSchedule(config=config, events=tuple(events))
