"""Arm a chaos schedule onto the service substrate's choke-point hooks.

Each substrate module exposes one module-level hook global that defaults
to ``None`` (``repro.campaign.store.CHAOS_COMMIT_HOOK``,
``repro.campaign.pool.CHAOS_SPAWN_HOOK``,
``repro.resilience.checkpoint.CHAOS_SAVE_HOOK``, and the
``CHAOS_CRASH_HOOK`` globals in ``repro.serve.scheduler`` /
``repro.serve.server``).  The shim at every choke point is a single
``if HOOK is not None`` — when nothing is armed the substrate runs its
exact pre-chaos code path, which is what the zero-overhead equivalence
test pins down.

:func:`arm` compiles (if needed) and installs a schedule, returning the
live :class:`ChaosState`; :func:`disarm` restores every hook to ``None``.
One schedule is armed at a time, process-wide — chaos is a property of
the process under test, not of a call stack.  With the default ``fork``
start method worker processes inherit the armed hooks, which is how
checkpoint tears fire on the worker side of the pipe.

Crash semantics come in two modes:

* ``crash_mode="raise"`` (default) raises :class:`~repro.errors.ChaosCrash`
  — a ``BaseException`` that generic handlers must not swallow — so
  in-process harnesses can observe the death and restart the component;
* ``crash_mode="exit"`` calls ``os._exit(86)``: the real thing, for
  subprocess audits (the smoke script's daemon-crash scenario).
"""

from __future__ import annotations

import contextlib
import errno
import os
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Union

from ..errors import ChaosCrash, ChaosError, StoreIOError
from .schedule import ChaosConfig, ChaosEvent, ChaosSchedule, compile_schedule

__all__ = ["ChaosState", "arm", "armed", "disarm"]

#: process exit code used by ``crash_mode="exit"`` (distinctive on purpose:
#: a subprocess audit asserts the death was the scheduled one)
CRASH_EXIT_CODE = 86

#: metric series name for injected faults (label: kind, op).  The literal
#: carries the serve prefix so chaos needs no import from the serve layer.
INJECTED_METRIC = "repro_serve_chaos_injected_total"


class ChaosState:
    """The live per-process fault state behind the armed hooks.

    Thread-safe: the serve daemon fires hooks from the asyncio frontier,
    the scheduler thread, and (forked) worker processes.  Counters are
    per-process — a forked worker counts its own checkpoint saves.
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        crash_mode: str = "raise",
        metrics=None,
    ) -> None:
        if crash_mode not in ("raise", "exit"):
            raise ChaosError(
                f"crash_mode must be 'raise' or 'exit', got {crash_mode!r}"
            )
        self.schedule = schedule
        self.crash_mode = crash_mode
        self._metrics = metrics
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._pending: Dict[str, Dict[int, ChaosEvent]] = {}
        for event in schedule.events:
            self._pending.setdefault(event.op, {})[event.nth] = event
        #: descriptions of every event that actually fired, in firing order
        self.fired: List[str] = []

    def bind_metrics(self, metrics) -> None:
        """Point injected-fault counters at a (new) daemon's registry."""
        self._metrics = metrics

    def counts(self) -> Dict[str, int]:
        """Operations seen so far, per choke point."""
        with self._lock:
            return dict(self._counts)

    def tick(self, op: str) -> Optional[ChaosEvent]:
        """Count one pass of a *harness-driven* operation.

        For choke points with no substrate hook — ``cluster.node``, whose
        kills the cluster audit performs itself — the harness calls this
        per operation and acts on the returned event (the fired list and
        metrics update exactly as for hooked operations).
        """
        return self._next(op)

    # -- internals ------------------------------------------------------
    def _next(self, op: str) -> Optional[ChaosEvent]:
        """Count one pass of ``op``; returns the event due at it, if any."""
        with self._lock:
            ordinal = self._counts.get(op, 0) + 1
            self._counts[op] = ordinal
            event = self._pending.get(op, {}).pop(ordinal, None)
            if event is not None:
                self.fired.append(event.describe())
        if event is not None and self._metrics is not None:
            self._metrics.inc(
                INJECTED_METRIC,
                "Infrastructure faults injected by the armed chaos schedule.",
                kind=event.kind,
                op=event.op,
            )
        return event

    def _crash(self, point: str) -> None:
        if self.crash_mode == "exit":
            os._exit(CRASH_EXIT_CODE)
        raise ChaosCrash(point)

    # -- hook implementations (installed by arm()) ----------------------
    def on_store_commit(self, store) -> None:
        """``ResultStore._commit`` shim: fail, tear, or delay this commit."""
        event = self._next("store.commit")
        if event is None:
            return
        if event.kind == "slow":
            time.sleep(self.schedule.config.slow_delay_s)
            return
        # Everything else loses the open transaction, exactly as the real
        # failure would before the WAL frame became durable.
        store.rollback()
        if event.kind == "torn":
            self._crash(f"store.commit#{event.nth}")
        if event.kind == "disk-full":
            raise StoreIOError(
                f"{store.path}: commit failed: [Errno {errno.ENOSPC}] "
                f"no space left on device (chaos store.commit#{event.nth})"
            )
        raise StoreIOError(
            f"{store.path}: commit failed: disk I/O error "
            f"(chaos store.commit#{event.nth})"
        )

    def on_pool_spawn(self) -> Optional[Callable]:
        """``WorkerPool.submit`` shim, called before the process starts.

        Raises ``OSError`` for a spawn failure; for a kill, returns a
        callable the pool invokes with the started process.
        """
        event = self._next("pool.spawn")
        if event is None:
            return None
        if event.kind == "spawn-fail":
            raise OSError(
                errno.EMFILE,
                f"too many open files (chaos pool.spawn#{event.nth})",
            )
        return _kill_worker

    def on_checkpoint_save(self, path: str) -> None:
        """``save_checkpoint`` shim: tear the snapshot that was just renamed.

        Truncating *after* the atomic rename models a torn write the rename
        itself cannot prevent (power cut before the data blocks hit disk):
        the file exists, its header may parse, but its body is gone.
        """
        event = self._next("checkpoint.save")
        if event is None:
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))

    def on_crash_point(self, point: str) -> None:
        """Named-crash-point shim (serve frontier and scheduler)."""
        event = self._next(point)
        if event is not None:
            self._crash(f"{point}#{event.nth}")


def _kill_worker(process) -> None:
    """SIGKILL a just-spawned worker (no grace — that is the point)."""
    process.kill()


#: the one armed state, process-wide (None: substrate runs untouched)
_ARMED: Optional[ChaosState] = None
_ARM_LOCK = threading.Lock()


def arm(
    schedule: Union[ChaosConfig, ChaosSchedule],
    crash_mode: str = "raise",
    metrics=None,
) -> ChaosState:
    """Install ``schedule`` (a config compiles first) onto every hook.

    Returns the live :class:`ChaosState`.  Raises :class:`ChaosError` if a
    schedule is already armed — overlapping schedules would make the fired
    ordinals meaningless.
    """
    global _ARMED
    if isinstance(schedule, ChaosConfig):
        schedule = compile_schedule(schedule)
    state = ChaosState(schedule, crash_mode=crash_mode, metrics=metrics)
    # Deferred imports: the substrate must never import chaos, and chaos
    # only touches the substrate when actually armed.
    from ..campaign import pool, store
    from ..resilience import checkpoint
    from ..serve import scheduler, server

    with _ARM_LOCK:
        if _ARMED is not None:
            raise ChaosError("a chaos schedule is already armed; disarm() first")
        store.CHAOS_COMMIT_HOOK = state.on_store_commit
        pool.CHAOS_SPAWN_HOOK = state.on_pool_spawn
        checkpoint.CHAOS_SAVE_HOOK = state.on_checkpoint_save
        scheduler.CHAOS_CRASH_HOOK = state.on_crash_point
        server.CHAOS_CRASH_HOOK = state.on_crash_point
        _ARMED = state
    return state


def disarm() -> None:
    """Restore every hook to ``None`` (idempotent)."""
    global _ARMED
    from ..campaign import pool, store
    from ..resilience import checkpoint
    from ..serve import scheduler, server

    with _ARM_LOCK:
        store.CHAOS_COMMIT_HOOK = None
        pool.CHAOS_SPAWN_HOOK = None
        checkpoint.CHAOS_SAVE_HOOK = None
        scheduler.CHAOS_CRASH_HOOK = None
        server.CHAOS_CRASH_HOOK = None
        _ARMED = None


@contextlib.contextmanager
def armed(
    schedule: Union[ChaosConfig, ChaosSchedule],
    crash_mode: str = "raise",
    metrics=None,
) -> Iterator[ChaosState]:
    """``with armed(config) as state:`` — arm on entry, disarm on exit."""
    state = arm(schedule, crash_mode=crash_mode, metrics=metrics)
    try:
        yield state
    finally:
        disarm()
