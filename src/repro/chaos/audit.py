"""The exactly-once auditor: run under chaos, restart, prove nothing broke.

The audit is the capstone of :mod:`repro.chaos`: it runs a real campaign
(or a real serve daemon) under an armed fault schedule, restarts whatever
the schedule kills, and then proves **from store provenance alone** that
the substrate kept its contracts:

* every accepted job completed exactly once (status ``done``, attempts
  recorded);
* every result is byte-identical to a fault-free reference run of the
  same grid — infrastructure faults may cost retries and restarts, never
  bits;
* no rejected submission was ever executed (no row, or a row that never
  left ``pending`` with zero attempts);
* the store holds no phantom rows the audit cannot account for.

A failed audit is a *report* (:class:`AuditReport`, ``ok=False``), not an
exception — :class:`~repro.errors.ChaosError` is reserved for harness
failures such as a component that will not come back within the restart
budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Union

from ..campaign.engine import CampaignEngine
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from ..errors import (
    BackpressureError,
    ChaosCrash,
    ChaosError,
    ServeError,
    StoreIOError,
)
from .inject import armed
from .schedule import ChaosConfig, ChaosSchedule

__all__ = ["AuditCheck", "AuditReport", "run_campaign_audit", "run_serve_audit"]


@dataclass(frozen=True)
class AuditCheck:
    """One verified property of the post-chaos store."""

    name: str
    ok: bool
    detail: str

    def render(self) -> str:
        return f"  [{'ok' if self.ok else 'FAIL'}] {self.name}: {self.detail}"


@dataclass
class AuditReport:
    """The full verdict of one chaos audit."""

    mode: str  # "campaign" | "serve"
    eid: str
    quick: bool
    seed: int
    restarts: int
    fired: List[str] = field(default_factory=list)
    checks: List[AuditCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        lines = [
            f"chaos audit ({self.mode}, eid={self.eid}, quick={self.quick}, "
            f"seed={self.seed}): {'PASS' if self.ok else 'FAIL'}",
            f"  restarts: {self.restarts}",
            f"  faults fired: {len(self.fired)}"
            + (" (" + "; ".join(self.fired) + ")" if self.fired else ""),
        ]
        lines.extend(check.render() for check in self.checks)
        return "\n".join(lines)


def _reference_payloads(spec: CampaignSpec, workers: int) -> Dict[str, str]:
    """Fault-free ground truth: ``{job_id: canonical payload text}``.

    Runs the grid through the real campaign engine against an ephemeral
    in-memory store — same code path as the chaotic run, minus the chaos.
    Must be called while nothing is armed.
    """
    with ResultStore(":memory:") as store:
        store.initialize(spec)
        summary = CampaignEngine(
            store, workers=workers, retries=0, progress=False
        ).run()
        if not summary.ok:
            raise ChaosError(
                f"fault-free reference run failed ({summary.failed} job(s)); "
                "the audit needs a healthy baseline"
            )
        return {
            row.job_id: row.payload
            for row in store.all_jobs()
            if row.status == "done"
        }


def _audit_store(
    db_path: str,
    reference: Dict[str, str],
    rejected: Iterable[str] = (),
) -> List[AuditCheck]:
    """Prove the exactly-once and byte-identity contracts from provenance."""
    rejected_ids = set(rejected) - set(reference)
    checks: List[AuditCheck] = []
    with ResultStore(db_path) as store:
        rows = {row.job_id: row for row in store.all_jobs()}

    missing = [jid for jid in reference if jid not in rows]
    not_done = [
        jid for jid in reference if jid in rows and rows[jid].status != "done"
    ]
    checks.append(
        AuditCheck(
            name="completed-exactly-once",
            ok=not missing and not not_done,
            detail=(
                f"all {len(reference)} accepted jobs are done"
                if not missing and not not_done
                else f"{len(missing)} missing, {len(not_done)} not done "
                f"(e.g. {(missing + not_done)[:3]})"
            ),
        )
    )

    mismatched = [
        jid
        for jid, payload in reference.items()
        if jid in rows and rows[jid].status == "done"
        and rows[jid].payload != payload
    ]
    checks.append(
        AuditCheck(
            name="byte-identical-payloads",
            ok=not mismatched,
            detail=(
                "every payload matches the fault-free reference byte for byte"
                if not mismatched
                else f"{len(mismatched)} payload(s) differ (e.g. {mismatched[:3]})"
            ),
        )
    )

    executed_rejects = [
        jid
        for jid in rejected_ids
        if jid in rows and (rows[jid].attempts or 0) > 0
    ]
    checks.append(
        AuditCheck(
            name="rejected-never-executed",
            ok=not executed_rejects,
            detail=(
                f"none of {len(rejected_ids)} rejected submission(s) ran"
                if not executed_rejects
                else f"{len(executed_rejects)} rejected job(s) have attempts"
            ),
        )
    )

    phantoms = [
        jid for jid in rows if jid not in reference and jid not in rejected_ids
    ]
    checks.append(
        AuditCheck(
            name="no-phantom-jobs",
            ok=not phantoms,
            detail=(
                "every store row is accounted for"
                if not phantoms
                else f"{len(phantoms)} unexplained row(s) (e.g. {phantoms[:3]})"
            ),
        )
    )

    unattempted = [
        jid
        for jid in reference
        if jid in rows and rows[jid].status == "done"
        and (rows[jid].attempts or 0) < 1
    ]
    checks.append(
        AuditCheck(
            name="provenance-attempts-recorded",
            ok=not unattempted,
            detail=(
                "every completed job records at least one attempt"
                if not unattempted
                else f"{len(unattempted)} done row(s) with zero attempts"
            ),
        )
    )
    return checks


def run_campaign_audit(
    config: Union[ChaosConfig, ChaosSchedule],
    db_path: str,
    eid: str = "demo",
    quick: bool = True,
    seed: Optional[int] = None,
    workers: int = 2,
    retries: int = 3,
    max_restarts: int = 12,
    checkpoint_dir: Optional[str] = None,
) -> AuditReport:
    """Run one campaign grid under ``config``; audit the surviving store.

    Torn commits and injected crashes kill the engine mid-campaign; the
    harness reopens the store and resumes — exactly what an operator's
    ``--resume`` does — up to ``max_restarts`` times before giving up
    with :class:`ChaosError`.
    """
    spec = CampaignSpec(experiments=(eid,), quick=quick, seed=seed)
    reference = _reference_payloads(spec, workers)
    restarts = 0
    with armed(config, crash_mode="raise") as state:
        while True:
            try:
                with ResultStore(db_path) as store:
                    store.initialize(spec)
                    CampaignEngine(
                        store,
                        workers=workers,
                        retries=retries,
                        progress=False,
                        checkpoint_dir=checkpoint_dir,
                    ).run()
                break
            except (ChaosCrash, StoreIOError):
                restarts += 1
                if restarts > max_restarts:
                    raise ChaosError(
                        f"campaign did not complete within {max_restarts} "
                        "restarts; schedule too hostile or recovery is broken"
                    ) from None
        fired = list(state.fired)
    return AuditReport(
        mode="campaign",
        eid=eid,
        quick=quick,
        seed=spec.seed_for(eid, 0),
        restarts=restarts,
        fired=fired,
        checks=_audit_store(db_path, reference),
    )


def run_serve_audit(
    config: Union[ChaosConfig, ChaosSchedule],
    db_path: str,
    eid: str = "demo",
    quick: bool = True,
    seed: Optional[int] = None,
    workers: int = 2,
    retries: int = 2,
    max_restarts: int = 12,
    round_timeout_s: float = 120.0,
) -> AuditReport:
    """Drive a real in-process serve daemon under ``config``; audit.

    Jobs are submitted over loopback HTTP by a retrying
    :class:`~repro.serve.client.ServeClient`; a crashed scheduler (or a
    daemon that dropped an ack) is answered the way an operator would —
    stop the daemon, start a new one on the same database, let recovery
    re-admit the pending rows — up to ``max_restarts`` times.
    """
    from ..serve.client import ServeClient
    from ..serve.server import ServeConfig, ServeDaemon

    spec = CampaignSpec(experiments=(eid,), quick=quick, seed=seed)
    jobs = spec.expand()
    reference = _reference_payloads(spec, workers)
    rejected: Set[str] = set()
    restarts = 0
    with armed(config, crash_mode="raise") as state:
        unsubmitted = {job.job_id: job for job in jobs}
        while True:
            daemon = None
            done = False
            try:
                daemon = ServeDaemon(
                    ServeConfig(
                        port=0,
                        db=db_path,
                        workers=workers,
                        retries=retries,
                        max_queue=max(64, len(jobs) + 8),
                    )
                )
                state.bind_metrics(daemon.metrics)
                daemon.start()
                client = ServeClient(
                    port=daemon.port,
                    client_id="chaos-audit",
                    retries=4,
                    backoff_s=0.05,
                    backoff_cap_s=0.5,
                )
                for job_id, job in list(unsubmitted.items()):
                    try:
                        ack = client.submit(
                            job.eid,
                            point_index=job.point_index,
                            quick=job.quick,
                            seed=job.seed,
                            replicate=job.replicate,
                        )
                    except BackpressureError:
                        # A definitive refusal (429): the daemon promised
                        # this submission was not accepted.  The audit
                        # holds it to that unless a later round admits it.
                        rejected.add(job_id)
                        continue
                    except ServeError as exc:
                        if exc.status == 0:
                            # Connection-level failure: the ack was lost,
                            # acceptance is *indeterminate* — exactly the
                            # window the durability contract covers.  A
                            # later round's idempotent resubmission joins
                            # or re-admits; never call this "rejected".
                            continue
                        rejected.add(job_id)  # definitive HTTP refusal (503)
                        continue
                    if ack.get("job_id") != job_id:  # pragma: no cover
                        raise ChaosError(
                            f"daemon hashed job to {ack.get('job_id')}, "
                            f"audit expected {job_id}"
                        )
                    rejected.discard(job_id)
                    del unsubmitted[job_id]
                done = _poll_serve_round(daemon, reference, round_timeout_s)
            except (ChaosCrash, StoreIOError):
                # The daemon (or its store) died outside a component that
                # handles its own faults — e.g. mid-construction.  Treat
                # it like any other crash: restart the instance.
                done = False
            finally:
                if daemon is not None:
                    daemon.stop()
            if done and not unsubmitted:
                break
            restarts += 1
            if restarts > max_restarts:
                raise ChaosError(
                    f"serve session did not complete within {max_restarts} "
                    "restarts; schedule too hostile or recovery is broken"
                )
        fired = list(state.fired)
    # A job rejected in one round but accepted in a later one was, in the
    # end, accepted: it belongs to the completed set, not the rejected one.
    rejected -= set(reference) - set(unsubmitted)
    return AuditReport(
        mode="serve",
        eid=eid,
        quick=quick,
        seed=spec.seed_for(eid, 0),
        restarts=restarts,
        fired=fired,
        checks=_audit_store(db_path, reference, rejected),
    )


def _poll_serve_round(
    daemon, reference: Dict[str, str], timeout_s: float
) -> bool:
    """Wait until every reference job is committed, or the daemon dies.

    Returns True when the round finished the whole grid.  Polls the
    daemon's own cache (never the store directly — an audit probe must
    not consume the armed schedule's commit ordinals).
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if daemon.scheduler.crashed:
            return False
        if all(daemon.cache.lookup(jid) is not None for jid in reference):
            return True
        time.sleep(0.05)
    raise ChaosError(
        f"serve round made no progress within {timeout_s}s "
        "(jobs wedged, not crashed — that is a bug, not chaos)"
    )
