"""The exactly-once auditor: run under chaos, restart, prove nothing broke.

The audit is the capstone of :mod:`repro.chaos`: it runs a real campaign
(or a real serve daemon) under an armed fault schedule, restarts whatever
the schedule kills, and then proves **from store provenance alone** that
the substrate kept its contracts:

* every accepted job completed exactly once (status ``done``, attempts
  recorded);
* every result is byte-identical to a fault-free reference run of the
  same grid — infrastructure faults may cost retries and restarts, never
  bits;
* no rejected submission was ever executed (no row, or a row that never
  left ``pending`` with zero attempts);
* the store holds no phantom rows the audit cannot account for.

A failed audit is a *report* (:class:`AuditReport`, ``ok=False``), not an
exception — :class:`~repro.errors.ChaosError` is reserved for harness
failures such as a component that will not come back within the restart
budget.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Union

from ..campaign.engine import CampaignEngine
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from ..errors import (
    BackpressureError,
    ChaosCrash,
    ChaosError,
    ServeError,
    StoreIOError,
)
from .inject import armed
from .schedule import ChaosConfig, ChaosSchedule

__all__ = [
    "AuditCheck",
    "AuditReport",
    "run_campaign_audit",
    "run_cluster_audit",
    "run_serve_audit",
]


@dataclass(frozen=True)
class AuditCheck:
    """One verified property of the post-chaos store."""

    name: str
    ok: bool
    detail: str

    def render(self) -> str:
        return f"  [{'ok' if self.ok else 'FAIL'}] {self.name}: {self.detail}"


@dataclass
class AuditReport:
    """The full verdict of one chaos audit."""

    mode: str  # "campaign" | "serve" | "cluster"
    eid: str
    quick: bool
    seed: int
    restarts: int
    fired: List[str] = field(default_factory=list)
    checks: List[AuditCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        lines = [
            f"chaos audit ({self.mode}, eid={self.eid}, quick={self.quick}, "
            f"seed={self.seed}): {'PASS' if self.ok else 'FAIL'}",
            f"  restarts: {self.restarts}",
            f"  faults fired: {len(self.fired)}"
            + (" (" + "; ".join(self.fired) + ")" if self.fired else ""),
        ]
        lines.extend(check.render() for check in self.checks)
        return "\n".join(lines)


def _reference_payloads(spec: CampaignSpec, workers: int) -> Dict[str, str]:
    """Fault-free ground truth: ``{job_id: canonical payload text}``.

    Runs the grid through the real campaign engine against an ephemeral
    in-memory store — same code path as the chaotic run, minus the chaos.
    Must be called while nothing is armed.
    """
    with ResultStore(":memory:") as store:
        store.initialize(spec)
        summary = CampaignEngine(
            store, workers=workers, retries=0, progress=False
        ).run()
        if not summary.ok:
            raise ChaosError(
                f"fault-free reference run failed ({summary.failed} job(s)); "
                "the audit needs a healthy baseline"
            )
        return {
            row.job_id: row.payload
            for row in store.all_jobs()
            if row.status == "done"
        }


def _audit_store(
    db_path: str,
    reference: Dict[str, str],
    rejected: Iterable[str] = (),
) -> List[AuditCheck]:
    """Prove the exactly-once and byte-identity contracts from provenance."""
    rejected_ids = set(rejected) - set(reference)
    checks: List[AuditCheck] = []
    with ResultStore(db_path) as store:
        rows = {row.job_id: row for row in store.all_jobs()}

    missing = [jid for jid in reference if jid not in rows]
    not_done = [
        jid for jid in reference if jid in rows and rows[jid].status != "done"
    ]
    checks.append(
        AuditCheck(
            name="completed-exactly-once",
            ok=not missing and not not_done,
            detail=(
                f"all {len(reference)} accepted jobs are done"
                if not missing and not not_done
                else f"{len(missing)} missing, {len(not_done)} not done "
                f"(e.g. {(missing + not_done)[:3]})"
            ),
        )
    )

    mismatched = [
        jid
        for jid, payload in reference.items()
        if jid in rows and rows[jid].status == "done"
        and rows[jid].payload != payload
    ]
    checks.append(
        AuditCheck(
            name="byte-identical-payloads",
            ok=not mismatched,
            detail=(
                "every payload matches the fault-free reference byte for byte"
                if not mismatched
                else f"{len(mismatched)} payload(s) differ (e.g. {mismatched[:3]})"
            ),
        )
    )

    executed_rejects = [
        jid
        for jid in rejected_ids
        if jid in rows and (rows[jid].attempts or 0) > 0
    ]
    checks.append(
        AuditCheck(
            name="rejected-never-executed",
            ok=not executed_rejects,
            detail=(
                f"none of {len(rejected_ids)} rejected submission(s) ran"
                if not executed_rejects
                else f"{len(executed_rejects)} rejected job(s) have attempts"
            ),
        )
    )

    phantoms = [
        jid for jid in rows if jid not in reference and jid not in rejected_ids
    ]
    checks.append(
        AuditCheck(
            name="no-phantom-jobs",
            ok=not phantoms,
            detail=(
                "every store row is accounted for"
                if not phantoms
                else f"{len(phantoms)} unexplained row(s) (e.g. {phantoms[:3]})"
            ),
        )
    )

    unattempted = [
        jid
        for jid in reference
        if jid in rows and rows[jid].status == "done"
        and (rows[jid].attempts or 0) < 1
    ]
    checks.append(
        AuditCheck(
            name="provenance-attempts-recorded",
            ok=not unattempted,
            detail=(
                "every completed job records at least one attempt"
                if not unattempted
                else f"{len(unattempted)} done row(s) with zero attempts"
            ),
        )
    )
    return checks


def run_campaign_audit(
    config: Union[ChaosConfig, ChaosSchedule],
    db_path: str,
    eid: str = "demo",
    quick: bool = True,
    seed: Optional[int] = None,
    workers: int = 2,
    retries: int = 3,
    max_restarts: int = 12,
    checkpoint_dir: Optional[str] = None,
) -> AuditReport:
    """Run one campaign grid under ``config``; audit the surviving store.

    Torn commits and injected crashes kill the engine mid-campaign; the
    harness reopens the store and resumes — exactly what an operator's
    ``--resume`` does — up to ``max_restarts`` times before giving up
    with :class:`ChaosError`.
    """
    spec = CampaignSpec(experiments=(eid,), quick=quick, seed=seed)
    reference = _reference_payloads(spec, workers)
    restarts = 0
    with armed(config, crash_mode="raise") as state:
        while True:
            try:
                with ResultStore(db_path) as store:
                    store.initialize(spec)
                    CampaignEngine(
                        store,
                        workers=workers,
                        retries=retries,
                        progress=False,
                        checkpoint_dir=checkpoint_dir,
                    ).run()
                break
            except (ChaosCrash, StoreIOError):
                restarts += 1
                if restarts > max_restarts:
                    raise ChaosError(
                        f"campaign did not complete within {max_restarts} "
                        "restarts; schedule too hostile or recovery is broken"
                    ) from None
        fired = list(state.fired)
    return AuditReport(
        mode="campaign",
        eid=eid,
        quick=quick,
        seed=spec.seed_for(eid, 0),
        restarts=restarts,
        fired=fired,
        checks=_audit_store(db_path, reference),
    )


def run_serve_audit(
    config: Union[ChaosConfig, ChaosSchedule],
    db_path: str,
    eid: str = "demo",
    quick: bool = True,
    seed: Optional[int] = None,
    workers: int = 2,
    retries: int = 2,
    max_restarts: int = 12,
    round_timeout_s: float = 120.0,
) -> AuditReport:
    """Drive a real in-process serve daemon under ``config``; audit.

    Jobs are submitted over loopback HTTP by a retrying
    :class:`~repro.serve.client.ServeClient`; a crashed scheduler (or a
    daemon that dropped an ack) is answered the way an operator would —
    stop the daemon, start a new one on the same database, let recovery
    re-admit the pending rows — up to ``max_restarts`` times.
    """
    from ..serve.client import ServeClient
    from ..serve.server import ServeConfig, ServeDaemon

    spec = CampaignSpec(experiments=(eid,), quick=quick, seed=seed)
    jobs = spec.expand()
    reference = _reference_payloads(spec, workers)
    rejected: Set[str] = set()
    restarts = 0
    with armed(config, crash_mode="raise") as state:
        unsubmitted = {job.job_id: job for job in jobs}
        while True:
            daemon = None
            done = False
            try:
                daemon = ServeDaemon(
                    ServeConfig(
                        port=0,
                        db=db_path,
                        workers=workers,
                        retries=retries,
                        max_queue=max(64, len(jobs) + 8),
                    )
                )
                state.bind_metrics(daemon.metrics)
                daemon.start()
                client = ServeClient(
                    port=daemon.port,
                    client_id="chaos-audit",
                    retries=4,
                    backoff_s=0.05,
                    backoff_cap_s=0.5,
                )
                for job_id, job in list(unsubmitted.items()):
                    try:
                        ack = client.submit(
                            job.eid,
                            point_index=job.point_index,
                            quick=job.quick,
                            seed=job.seed,
                            replicate=job.replicate,
                        )
                    except BackpressureError:
                        # A definitive refusal (429): the daemon promised
                        # this submission was not accepted.  The audit
                        # holds it to that unless a later round admits it.
                        rejected.add(job_id)
                        continue
                    except ServeError as exc:
                        if exc.status == 0:
                            # Connection-level failure: the ack was lost,
                            # acceptance is *indeterminate* — exactly the
                            # window the durability contract covers.  A
                            # later round's idempotent resubmission joins
                            # or re-admits; never call this "rejected".
                            continue
                        rejected.add(job_id)  # definitive HTTP refusal (503)
                        continue
                    if ack.get("job_id") != job_id:  # pragma: no cover
                        raise ChaosError(
                            f"daemon hashed job to {ack.get('job_id')}, "
                            f"audit expected {job_id}"
                        )
                    rejected.discard(job_id)
                    del unsubmitted[job_id]
                done = _poll_serve_round(daemon, reference, round_timeout_s)
            except (ChaosCrash, StoreIOError):
                # The daemon (or its store) died outside a component that
                # handles its own faults — e.g. mid-construction.  Treat
                # it like any other crash: restart the instance.
                done = False
            finally:
                if daemon is not None:
                    daemon.stop()
            if done and not unsubmitted:
                break
            restarts += 1
            if restarts > max_restarts:
                raise ChaosError(
                    f"serve session did not complete within {max_restarts} "
                    "restarts; schedule too hostile or recovery is broken"
                )
        fired = list(state.fired)
    # A job rejected in one round but accepted in a later one was, in the
    # end, accepted: it belongs to the completed set, not the rejected one.
    rejected -= set(reference) - set(unsubmitted)
    return AuditReport(
        mode="serve",
        eid=eid,
        quick=quick,
        seed=spec.seed_for(eid, 0),
        restarts=restarts,
        fired=fired,
        checks=_audit_store(db_path, reference, rejected),
    )


def _poll_serve_round(
    daemon, reference: Dict[str, str], timeout_s: float
) -> bool:
    """Wait until every reference job is committed, or the daemon dies.

    Returns True when the round finished the whole grid.  Polls the
    daemon's own cache (never the store directly — an audit probe must
    not consume the armed schedule's commit ordinals).
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if daemon.scheduler.crashed:
            return False
        if all(daemon.cache.lookup(jid) is not None for jid in reference):
            return True
        time.sleep(0.05)
    raise ChaosError(
        f"serve round made no progress within {timeout_s}s "
        "(jobs wedged, not crashed — that is a bug, not chaos)"
    )


def _audit_cluster_stores(
    db_paths: Iterable[str], reference: Dict[str, str]
) -> List[AuditCheck]:
    """Prove the ring-wide exactly-once contracts from N stores' provenance.

    The single-store checks do not transfer directly: under routing,
    stealing, and peer fill, *which* store computed a job is schedule-
    dependent — only the union is.  The ring-wide contracts are:

    * every accepted job is ``done`` on at least one store;
    * every ``done`` copy — origin or adopted — is byte-identical to the
      fault-free reference (and therefore to every other copy);
    * at least one store *computed* each job (``attempts >= 1``;
      adoption never increments attempts, so a ring where every copy is
      adopted would mean the result appeared from nowhere);
    * no store holds a row outside the accepted set.
    """
    rows_by_store: Dict[str, Dict[str, object]] = {}
    for path in db_paths:
        if not os.path.exists(path):
            continue  # a node that never started owns no rows
        with ResultStore(path) as store:
            rows_by_store[path] = {row.job_id: row for row in store.all_jobs()}

    def done_copies(jid: str):
        return [
            rows[jid]
            for rows in rows_by_store.values()
            if jid in rows and rows[jid].status == "done"
        ]

    checks: List[AuditCheck] = []
    missing = [jid for jid in reference if not done_copies(jid)]
    checks.append(
        AuditCheck(
            name="completed-somewhere-exactly-once",
            ok=not missing,
            detail=(
                f"all {len(reference)} accepted jobs are done on >=1 node"
                if not missing
                else f"{len(missing)} job(s) done nowhere (e.g. {missing[:3]})"
            ),
        )
    )

    mismatched = [
        jid
        for jid, payload in reference.items()
        if any(row.payload != payload for row in done_copies(jid))
    ]
    checks.append(
        AuditCheck(
            name="byte-identical-across-ring",
            ok=not mismatched,
            detail=(
                "every copy on every node matches the fault-free reference "
                "byte for byte"
                if not mismatched
                else f"{len(mismatched)} job(s) differ somewhere "
                f"(e.g. {mismatched[:3]})"
            ),
        )
    )

    uncomputed = [
        jid
        for jid in reference
        if jid not in missing
        and not any(
            jid in rows and (rows[jid].attempts or 0) >= 1
            for rows in rows_by_store.values()
        )
    ]
    checks.append(
        AuditCheck(
            name="computed-at-least-once",
            ok=not uncomputed,
            detail=(
                "every completed job was actually computed on some node "
                "(adoption alone cannot mint results)"
                if not uncomputed
                else f"{len(uncomputed)} job(s) exist only as adoptions"
            ),
        )
    )

    phantoms = sorted(
        {
            jid
            for rows in rows_by_store.values()
            for jid in rows
            if jid not in reference
        }
    )
    checks.append(
        AuditCheck(
            name="no-phantom-jobs",
            ok=not phantoms,
            detail=(
                "every row on every node is accounted for"
                if not phantoms
                else f"{len(phantoms)} unexplained row(s) (e.g. {phantoms[:3]})"
            ),
        )
    )
    return checks


def run_cluster_audit(
    config: Union[ChaosConfig, ChaosSchedule],
    db_dir: str,
    eid: str = "demo",
    quick: bool = True,
    seed: Optional[int] = None,
    nodes: int = 3,
    workers: int = 2,
    retries: int = 2,
    max_restarts: int = 12,
    round_timeout_s: float = 180.0,
) -> AuditReport:
    """Drive an N-node in-process cluster under ``config``; audit the ring.

    Jobs are submitted round-robin over loopback HTTP to *every* node
    (redirects, peer fill, and stealing route them where they belong).
    ``cluster.node`` events — one per ``node_kills`` — are harness-driven:
    after the scheduled submission ordinal, a seeded victim dies via
    :meth:`ClusterNode.kill` (workers SIGKILLed, no drain) and is
    restarted on the same database and port, exercising restart recovery,
    gossip resurrection-by-generation, and ring rebalancing, mid-queue.
    The verdict is :func:`_audit_cluster_stores` over every node's store.
    """
    from ..cluster.node import ClusterConfig, ClusterNode
    from ..serve.client import ServeClient
    from ..serve.server import ServeConfig
    from ..util import Rng, derive_seed

    if nodes < 1:
        raise ChaosError(f"cluster audit needs nodes >= 1, got {nodes}")
    spec = CampaignSpec(experiments=(eid,), quick=quick, seed=seed)
    jobs = spec.expand()
    reference = _reference_payloads(spec, workers)
    os.makedirs(db_dir, exist_ok=True)

    node_ids = [f"n{index + 1}" for index in range(nodes)]
    ports: Dict[str, int] = {node_id: 0 for node_id in node_ids}
    live: Dict[str, "ClusterNode"] = {}
    clients: Dict[str, "ServeClient"] = {}
    chaos_seed = (
        config.seed if isinstance(config, ChaosConfig) else config.config.seed
    )
    victim_rng = Rng(derive_seed(chaos_seed, "cluster-victims"), "chaos")
    restarts = 0

    def note_restart() -> None:
        nonlocal restarts
        restarts += 1
        if restarts > max_restarts:
            raise ChaosError(
                f"cluster audit exceeded {max_restarts} restarts; "
                "schedule too hostile or recovery is broken"
            )

    def start_node(node_id: str) -> None:
        while True:
            node = None
            try:
                node = ClusterNode(
                    ClusterConfig(
                        node_id=node_id,
                        serve=ServeConfig(
                            port=ports[node_id],
                            db=os.path.join(db_dir, f"{node_id}.db"),
                            workers=workers,
                            retries=retries,
                            max_queue=max(64, len(jobs) + 8),
                        ),
                        peers=tuple(
                            f"127.0.0.1:{ports[other]}"
                            for other in node_ids
                            if other != node_id and ports[other]
                        ),
                        gossip_interval_s=0.1,
                        fail_after_s=1.5,
                        re_admit_after_s=3.0,
                    )
                )
                node.start()
                break
            except (ChaosCrash, StoreIOError):
                # The node died *booting* — e.g. a torn commit in restart
                # recovery's reset_running.  Same contract as any other
                # death: clean up the carcass, count it, boot again (the
                # fired ordinal will not fire twice).
                if node is not None:
                    node.kill()
                note_restart()
        ports[node_id] = int(node.port or 0)
        live[node_id] = node
        clients[node_id] = ServeClient(
            port=ports[node_id],
            client_id=f"chaos-cluster-{node_id}",
            retries=4,
            backoff_s=0.05,
            backoff_cap_s=0.5,
        )

    def kill_and_restart(victim: Optional[str] = None) -> None:
        if victim is None:
            victim = node_ids[victim_rng.randint(0, len(node_ids))]
        live[victim].kill()
        clients.pop(victim).close()
        del live[victim]
        note_restart()
        start_node(victim)  # restart recovery re-admits its pending rows

    with armed(config, crash_mode="raise") as state:
        try:
            for node_id in node_ids:
                start_node(node_id)
            for index, job in enumerate(jobs):
                # Round-robin so every node plays frontier for some jobs;
                # a node that is mid-restart just passes its turn.
                order = node_ids[index % nodes:] + node_ids[: index % nodes]
                accepted = False
                for node_id in order:
                    if node_id not in clients:
                        continue
                    try:
                        clients[node_id].submit(
                            job.eid,
                            point_index=job.point_index,
                            quick=job.quick,
                            seed=job.seed,
                            replicate=job.replicate,
                        )
                    except (BackpressureError, ServeError):
                        continue
                    accepted = True
                    break
                if not accepted:
                    raise ChaosError(
                        f"no node accepted job {job.job_id} "
                        "(all refused or unreachable)"
                    )
                if state.tick("cluster.node") is not None:
                    kill_and_restart()
            # Kill ordinals past the submission count still fire — the
            # queue is at its deepest right now, which is the point.
            window = state.schedule.config.window
            for _ in range(len(jobs), window):
                if state.tick("cluster.node") is not None:
                    kill_and_restart()
            _poll_cluster_round(
                live, node_ids, reference, round_timeout_s,
                on_crash=kill_and_restart,
            )
        finally:
            for client in clients.values():
                client.close()
            for node in live.values():
                node.stop()
        fired = list(state.fired)
    db_paths = [os.path.join(db_dir, f"{node_id}.db") for node_id in node_ids]
    return AuditReport(
        mode="cluster",
        eid=eid,
        quick=quick,
        seed=spec.seed_for(eid, 0),
        restarts=restarts,
        fired=fired,
        checks=_audit_cluster_stores(db_paths, reference),
    )


def _poll_cluster_round(
    live: Dict[str, object],
    node_ids: List[str],
    reference: Dict[str, str],
    timeout_s: float,
    on_crash,
) -> None:
    """Wait until every reference job is done on at least one node.

    A node whose scheduler died to an armed crash point gets the same
    treatment as a scheduled node kill: crash-stopped and restarted via
    ``on_crash`` (recovery re-admits its rows).  Lookups go through each
    node's cache, so a locally missing result may be satisfied by peer
    fill — which is itself part of what the audit exercises.
    """
    pending = set(reference)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for node_id in node_ids:
            node = live.get(node_id)
            if node is not None and node.scheduler.crashed:
                on_crash(node_id)
        for jid in sorted(pending):
            for node in list(live.values()):
                if node.cache.lookup(jid) is not None:
                    pending.discard(jid)
                    break
        if not pending:
            return
        time.sleep(0.05)
    raise ChaosError(
        f"cluster round left {len(pending)} job(s) unfinished after "
        f"{timeout_s}s (wedged, not crashed — that is a bug, not chaos)"
    )
