"""``python -m repro chaos`` — compile fault schedules and run audits.

Examples::

    python -m repro chaos show --seed 7 --torn-commits 1 --worker-kills 2
    python -m repro chaos audit --mode campaign --torn-commits 1 --retries 3
    python -m repro chaos audit --mode serve --crash-point serve.submit.before-ack
    python -m repro chaos audit --mode cluster --nodes 3 --node-kills 1

``show`` compiles a :class:`~repro.chaos.schedule.ChaosConfig` and prints
the deterministic event list — useful for understanding exactly what an
audit is about to break.  ``audit`` runs the full crash-consistency
audit: a real campaign (or serve daemon) under the armed schedule,
restarts on every injected death, then the exactly-once / byte-identity
verdict from store provenance.

Exit codes: 0 — audit passed (or ``show``); 1 — audit FAILED (a contract
was broken); 2 — configuration or harness error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional

from ..errors import ChaosError, ConfigError
from .audit import run_campaign_audit, run_cluster_audit, run_serve_audit
from .schedule import CRASH_POINTS, ChaosConfig, compile_schedule

__all__ = ["build_parser", "main"]


def _chaos_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fault schedule")
    group.add_argument("--seed", type=int, default=0)
    group.add_argument(
        "--window", type=int, default=8,
        help="fault ordinals are drawn uniformly from [1, window] "
        "per choke point (default: %(default)s)",
    )
    group.add_argument("--store-io-errors", type=int, default=0)
    group.add_argument("--disk-full-errors", type=int, default=0)
    group.add_argument("--torn-commits", type=int, default=0)
    group.add_argument("--slow-commits", type=int, default=0)
    group.add_argument("--slow-delay-s", type=float, default=0.05)
    group.add_argument("--worker-kills", type=int, default=0)
    group.add_argument("--spawn-failures", type=int, default=0)
    group.add_argument("--checkpoint-tears", type=int, default=0)
    group.add_argument(
        "--node-kills", type=int, default=0,
        help="whole cluster nodes SIGKILLed and restarted mid-campaign "
        "(--mode cluster only)",
    )
    group.add_argument(
        "--crash-point", action="append", default=[], metavar="POINT",
        choices=list(CRASH_POINTS), dest="crash_points",
        help=f"named crash point (repeatable); one of: {', '.join(CRASH_POINTS)}",
    )


def _config_from(args: argparse.Namespace) -> ChaosConfig:
    return ChaosConfig(
        seed=args.seed,
        window=args.window,
        store_io_errors=args.store_io_errors,
        disk_full_errors=args.disk_full_errors,
        torn_commits=args.torn_commits,
        slow_commits=args.slow_commits,
        slow_delay_s=args.slow_delay_s,
        worker_kills=args.worker_kills,
        spawn_failures=args.spawn_failures,
        checkpoint_tears=args.checkpoint_tears,
        node_kills=args.node_kills,
        crash_points=tuple(args.crash_points),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Deterministic infrastructure fault injection and the "
        "crash-consistency audit for the campaign/serve substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="compile and print a fault schedule")
    _chaos_flags(show)
    show.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    audit = sub.add_parser(
        "audit", help="run the exactly-once crash-consistency audit"
    )
    _chaos_flags(audit)
    audit.add_argument(
        "--mode", default="campaign", choices=["campaign", "serve", "cluster"],
        help="drive the campaign engine directly, a full in-process serve "
        "daemon, or an N-node in-process cluster ring (default: %(default)s)",
    )
    audit.add_argument(
        "--nodes", type=int, default=3,
        help="ring size for --mode cluster (default: %(default)s)",
    )
    audit.add_argument(
        "--eid", default="demo",
        help="experiment grid to run (default: %(default)s)",
    )
    audit.add_argument("--quick", action="store_true", default=True)
    audit.add_argument(
        "--full", action="store_false", dest="quick",
        help="audit the full (not quick) grid — slow",
    )
    audit.add_argument("--run-seed", type=int, default=None,
                       help="experiment seed (default: the experiment's own)")
    audit.add_argument("--workers", type=int, default=2)
    audit.add_argument(
        "--retries", type=int, default=3,
        help="per-job retry budget for the audited engine/daemon",
    )
    audit.add_argument(
        "--max-restarts", type=int, default=12,
        help="give up (exit 2) after this many injected-death restarts",
    )
    audit.add_argument(
        "--db", default=None, metavar="PATH",
        help="campaign/serve database (default: a fresh temporary file)",
    )
    return parser


def _cmd_show(args: argparse.Namespace) -> int:
    schedule = compile_schedule(_config_from(args))
    if args.json:
        print(json.dumps(schedule.describe(), indent=2, sort_keys=True))
        return 0
    print(f"chaos schedule (seed={schedule.config.seed}, "
          f"window={schedule.config.window}):")
    if not schedule.events:
        print("  (no faults)")
    for event in schedule.events:
        print(f"  {event.describe()}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    config = _config_from(args)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        if args.mode == "cluster":
            # Each node owns a database, so --db names a directory here.
            report = run_cluster_audit(
                config,
                db_dir=args.db or os.path.join(scratch, "ring"),
                eid=args.eid,
                quick=args.quick,
                seed=args.run_seed,
                nodes=args.nodes,
                workers=args.workers,
                retries=args.retries,
                max_restarts=args.max_restarts,
            )
        else:
            runner = (
                run_campaign_audit if args.mode == "campaign" else run_serve_audit
            )
            db_path = args.db or os.path.join(scratch, "audit.db")
            report = runner(
                config,
                db_path=db_path,
                eid=args.eid,
                quick=args.quick,
                seed=args.run_seed,
                workers=args.workers,
                retries=args.retries,
                max_restarts=args.max_restarts,
            )
    print(report.render())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "show":
            return _cmd_show(args)
        return _cmd_audit(args)
    except (ChaosError, ConfigError) as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
