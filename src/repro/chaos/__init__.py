"""``repro.chaos`` — deterministic infrastructure fault injection.

:mod:`repro.resilience` breaks the *simulated* network; this package
breaks the *service substrate* underneath it — the SQLite result store,
the worker pool, the serve scheduler and frontier, the checkpoint files —
with the same discipline: a declarative :class:`~repro.chaos.schedule.ChaosConfig`
compiles (seeded, deterministic) into a :class:`~repro.chaos.schedule.ChaosSchedule`,
and a runtime :class:`~repro.chaos.inject.ChaosState` applies it through
narrow hooks at the substrate's choke points.  When no schedule is armed
every hook is a module-level ``None`` checked with one ``is not None`` —
zero overhead, bit-identical behavior (enforced by test).

:mod:`repro.chaos.audit` is the capstone: run a campaign or serve session
under a crash schedule, restart whatever dies, and prove from store
provenance that the substrate kept its exactly-once and byte-identical
guarantees.  ``python -m repro chaos audit`` is the CLI face.
"""

from .audit import (
    AuditReport,
    run_campaign_audit,
    run_cluster_audit,
    run_serve_audit,
)
from .inject import ChaosState, arm, armed, disarm
from .schedule import (
    CRASH_POINTS,
    ChaosConfig,
    ChaosEvent,
    ChaosSchedule,
    compile_schedule,
)

__all__ = [
    "CRASH_POINTS",
    "AuditReport",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosState",
    "arm",
    "armed",
    "compile_schedule",
    "disarm",
    "run_campaign_audit",
    "run_cluster_audit",
    "run_serve_audit",
]
