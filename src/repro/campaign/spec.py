"""Campaign and job specifications, content-hashed ids, and the registry.

A :class:`CampaignSpec` names a grid — experiment ids x their sweep points
x seed replicates — and expands it into :class:`JobSpec` rows.  A job's id
is a content hash of everything that determines its result (experiment,
point, quick flag, seed), so the same spec always expands to the same ids:
that is what lets the store skip completed jobs on ``--resume`` and what
makes results independent of worker count or scheduling order.

The registry maps experiment ids to :class:`CampaignExperiment` descriptors.
Multi-point sweeps (E5/E6/E7) decompose into one job per sweep point via
the ``eN_points`` / ``run_eN_point`` / ``assemble_eN`` trio in
:mod:`repro.harness.experiments`; every other experiment runs as a single
job whose payload is the full persisted result.  ``demo`` is a deliberately
tiny sweep (2x2 targets, milliseconds per job) for smoke-testing pools and
resume logic without burning minutes of simulation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..harness import experiments as exp
from ..harness.persist import result_from_dict, result_to_dict
from ..util import derive_seed

__all__ = [
    "JobSpec",
    "CampaignSpec",
    "CampaignExperiment",
    "REGISTRY",
    "register",
    "get_experiment",
    "execute_job",
    "execute_job_batch",
    "jobs_batchable",
]

#: bump when the job-hash preimage or payload layout changes incompatibly
SPEC_VERSION = 1


def _canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _content_hash(data: Any) -> str:
    return hashlib.sha256(_canonical_json(data).encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Experiment descriptors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignExperiment:
    """How one experiment id decomposes into campaign jobs.

    Args:
        eid: experiment id (``E1``..``E10``, ``demo``).
        points: ``quick -> [point, ...]`` — the sweep grid; each point must
            be JSON-serializable (it is part of the job-id hash).
        run_point: ``(point, quick, seed) -> record`` — one independent unit
            of work returning a JSON-serializable record.
        assemble: ``(records, quick, seed) -> ExperimentResult`` — combine
            the records (in ``points`` order) into the experiment's table.
        default_seed: the seed the sequential ``run_eN`` uses, so an
            unseeded campaign reproduces sequential output exactly.
        host_time_columns: header names whose values are host wall-clock
            measurements — the sanctioned nondeterminism, excluded from
            determinism/equivalence comparisons.
        point_config: optional ``(point, quick, seed) -> TargetConfig`` —
            declares the point as *one engine-executable co-simulation*.
            Experiments that provide it (together with ``point_record``)
            get engine selection, engine provenance in the store, and —
            when several same-shape jobs meet in serve's admission queue —
            lockstep batched execution.  ``run_point`` stays the sequential
            reference; the pair must agree with it exactly.
        point_record: optional ``(CoSimResult, point, quick, seed) ->
            record`` — the deterministic record extractor for
            ``point_config`` runs.  Must not include wall-clock fields:
            records are compared byte-for-byte across engines and batch
            sizes.
    """

    eid: str
    points: Callable[[bool], List[Any]]
    run_point: Callable[[Any, bool, int], Any]
    assemble: Callable[[Sequence[Any], bool, int], "exp.ExperimentResult"]
    default_seed: int = 3
    host_time_columns: Tuple[str, ...] = ()
    point_config: Optional[Callable[[Any, bool, int], Any]] = None
    point_record: Optional[Callable[[Any, Any, bool, int], Any]] = None

    @property
    def engine_aware(self) -> bool:
        """Whether jobs of this experiment run through the engine layer."""
        return self.point_config is not None and self.point_record is not None


def _whole_experiment(eid: str, default_seed: int, host_time_columns=()) -> CampaignExperiment:
    """A single-job descriptor: the record is the full persisted result."""
    runner = exp.ALL_EXPERIMENTS[eid]

    def points(quick: bool) -> List[Any]:
        return [None]

    def run_point(point: Any, quick: bool, seed: int) -> Any:
        return result_to_dict(runner(quick=quick, seed=seed))

    def assemble(records: Sequence[Any], quick: bool, seed: int):
        return result_from_dict(records[0], source=f"{eid} job payload")

    return CampaignExperiment(
        eid=eid,
        points=points,
        run_point=run_point,
        assemble=assemble,
        default_seed=default_seed,
        host_time_columns=tuple(host_time_columns),
    )


def _demo_points(quick: bool) -> List[Any]:
    return [[i] for i in range(2 if quick else 4)]


def _demo_run_point(point: Any, quick: bool, seed: int) -> Any:
    """A milliseconds-scale real co-simulation (2x2 CMP, abstract network)."""
    from ..core.config import TargetConfig
    from ..harness.runner import run_cosim

    (index,) = point
    config = TargetConfig(
        width=2,
        height=2,
        app="water",
        seed=derive_seed(seed, "demo", index),
        scale=0.2,
        network_model="fixed",
    )
    result = run_cosim(config, cache=False)
    return [f"job{index}", float(result.finish_cycle or 0), result.mean_latency()]


def _demo_assemble(records: Sequence[Any], quick: bool, seed: int):
    return exp.ExperimentResult(
        eid="demo",
        title="Campaign smoke sweep (tiny 2x2 co-simulations)",
        headers=["job", "finish", "mean_lat"],
        rows=list(records),
        notes={"jobs": float(len(records))},
    )


# -- demo-noc: the engine-aware smoke sweep -----------------------------
#
# Like ``demo`` but on the detailed simd network model, with the point
# declared via ``point_config``/``point_record`` — the exemplar (and smoke
# test) for engine selection, lockstep batching, and engine provenance.
# Every point shares one 4x4 mesh shape, so a serve daemon holding K of
# these dispatches them as lanes of a single batched kernel invocation.


def _demo_noc_points(quick: bool) -> List[Any]:
    return [[i] for i in range(2 if quick else 4)]


def _demo_noc_config(point: Any, quick: bool, seed: int):
    from ..core.config import TargetConfig

    (index,) = point
    return TargetConfig(
        width=4,
        height=4,
        app="water",
        seed=derive_seed(seed, "demo-noc", index),
        scale=0.05 if quick else 0.1,
        network_model="simd",
        quantum=4,
    )


def _demo_noc_record(result: Any, point: Any, quick: bool, seed: int) -> Any:
    # Deterministic fields only: records must be byte-identical across
    # engines and batch sizes (no wall-clock values).
    (index,) = point
    return [
        f"job{index}",
        float(result.finish_cycle or 0),
        result.mean_latency(),
        float(result.deliveries),
    ]


def _demo_noc_run_point(point: Any, quick: bool, seed: int) -> Any:
    """Sequential reference: one engine-selected co-simulation."""
    from ..core.config import build_cosim

    cosim = build_cosim(_demo_noc_config(point, quick, seed))
    return _demo_noc_record(cosim.run(), point, quick, seed)


def _demo_noc_assemble(records: Sequence[Any], quick: bool, seed: int):
    return exp.ExperimentResult(
        eid="demo-noc",
        title="Engine smoke sweep (4x4 simd-model co-simulations)",
        headers=["job", "finish", "mean_lat", "deliveries"],
        rows=list(records),
        notes={"jobs": float(len(records))},
    )


def _build_registry() -> Dict[str, CampaignExperiment]:
    registry: Dict[str, CampaignExperiment] = {}
    # Multi-point sweeps: one job per sweep point.
    registry["E5"] = CampaignExperiment(
        eid="E5",
        points=exp.e5_points,
        run_point=exp.run_e5_point,
        assemble=exp.assemble_e5,
    )
    registry["E6"] = CampaignExperiment(
        eid="E6",
        points=exp.e6_points,
        run_point=exp.run_e6_point,
        assemble=exp.assemble_e6,
        host_time_columns=("cpu_time", "gpu_time", "gpu_reduction"),
    )
    registry["E7"] = CampaignExperiment(
        eid="E7",
        points=exp.e7_points,
        run_point=exp.run_e7_point,
        assemble=exp.assemble_e7,
        host_time_columns=("wall_s",),
    )
    registry["E11"] = CampaignExperiment(
        eid="E11",
        points=exp.e11_points,
        run_point=exp.run_e11_point,
        assemble=exp.assemble_e11,
    )
    # Everything else: one job runs the whole experiment.
    seeds = {"E1": 11, "E2": 5}
    for eid in sorted(exp.ALL_EXPERIMENTS, key=lambda e: (len(e), e)):
        if eid not in registry:
            registry[eid] = _whole_experiment(eid, default_seed=seeds.get(eid, 3))
    registry["demo"] = CampaignExperiment(
        eid="demo",
        points=_demo_points,
        run_point=_demo_run_point,
        assemble=_demo_assemble,
        default_seed=1,
    )
    registry["demo-noc"] = CampaignExperiment(
        eid="demo-noc",
        points=_demo_noc_points,
        run_point=_demo_noc_run_point,
        assemble=_demo_noc_assemble,
        default_seed=1,
        point_config=_demo_noc_config,
        point_record=_demo_noc_record,
    )
    return registry


#: experiment id -> descriptor (extensible via :func:`register`)
REGISTRY: Dict[str, CampaignExperiment] = _build_registry()


def register(experiment: CampaignExperiment) -> None:
    """Add (or replace) a campaign experiment descriptor.

    Registered callables must be importable/inheritable by worker processes:
    with the default ``fork`` start method anything defined before the pool
    starts works; under ``spawn`` they must live at module top level.
    """
    REGISTRY[experiment.eid] = experiment


def get_experiment(eid: str) -> CampaignExperiment:
    try:
        return REGISTRY[eid]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ConfigError(f"unknown campaign experiment {eid!r}; known: {known}") from None


# ----------------------------------------------------------------------
# Job and campaign specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One independent unit of work, identified by a content hash."""

    eid: str
    point_index: int
    point: Any
    quick: bool
    seed: int
    replicate: int = 0

    @property
    def job_id(self) -> str:
        """Content hash of everything that determines this job's result."""
        return _content_hash(self.to_dict())

    def to_dict(self) -> dict:
        return {
            "v": SPEC_VERSION,
            "eid": self.eid,
            "point_index": self.point_index,
            "point": self.point,
            "quick": self.quick,
            "seed": self.seed,
            "replicate": self.replicate,
        }

    def to_json(self) -> str:
        return _canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        if data.get("v") != SPEC_VERSION:
            raise ConfigError(
                f"unsupported job-spec version {data.get('v')!r} "
                f"(this library reads version {SPEC_VERSION})"
            )
        return cls(
            eid=data["eid"],
            point_index=data["point_index"],
            point=data["point"],
            quick=data["quick"],
            seed=data["seed"],
            replicate=data.get("replicate", 0),
        )

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class CampaignSpec:
    """A campaign: which experiments, at which size, with which seeds.

    The grid is ``experiments x points(quick) x replicates``.  Replicate 0
    uses each experiment's own seed (``seed`` if given, else the
    experiment's sequential default) so campaign output matches a
    sequential ``run_eN`` exactly; replicates >= 1 derive fresh seeds with
    :func:`repro.util.derive_seed` — one seed per (experiment, replicate),
    shared by all of that experiment's points, because cross-point
    aggregates (e.g. E7's error vs its quantum-1 reference) only make
    sense within one seed.
    """

    experiments: Tuple[str, ...]
    quick: bool = False
    seed: Optional[int] = None
    replicates: int = 1

    def __post_init__(self) -> None:
        if not self.experiments:
            raise ConfigError("a campaign needs at least one experiment")
        deduped: List[str] = []
        for eid in self.experiments:
            get_experiment(eid)  # validates
            if eid not in deduped:
                deduped.append(eid)
        object.__setattr__(self, "experiments", tuple(deduped))
        if self.replicates < 1:
            raise ConfigError(f"replicates must be >= 1, got {self.replicates}")

    def seed_for(self, eid: str, replicate: int) -> int:
        base = self.seed if self.seed is not None else get_experiment(eid).default_seed
        if replicate == 0:
            return base
        return derive_seed(base, eid, replicate)

    def expand(self) -> List[JobSpec]:
        """The full job grid, in deterministic order."""
        jobs: List[JobSpec] = []
        for eid in self.experiments:
            experiment = get_experiment(eid)
            points = experiment.points(self.quick)
            for replicate in range(self.replicates):
                seed = self.seed_for(eid, replicate)
                for index, point in enumerate(points):
                    jobs.append(
                        JobSpec(
                            eid=eid,
                            point_index=index,
                            point=point,
                            quick=self.quick,
                            seed=seed,
                            replicate=replicate,
                        )
                    )
        return jobs

    def to_dict(self) -> dict:
        return {
            "v": SPEC_VERSION,
            "experiments": list(self.experiments),
            "quick": self.quick,
            "seed": self.seed,
            "replicates": self.replicates,
        }

    def to_json(self) -> str:
        return _canonical_json(self.to_dict())

    @property
    def spec_hash(self) -> str:
        return _content_hash(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        if data.get("v") != SPEC_VERSION:
            raise ConfigError(
                f"unsupported campaign-spec version {data.get('v')!r} "
                f"(this library reads version {SPEC_VERSION})"
            )
        return cls(
            experiments=tuple(data["experiments"]),
            quick=data["quick"],
            seed=data["seed"],
            replicates=data.get("replicates", 1),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))


def _run_engine_point(experiment: CampaignExperiment, spec: JobSpec, engine: str) -> dict:
    """Run one engine-aware point and attach engine provenance.

    The ``_provenance`` key rides in the payload only as far as the store's
    ``mark_done``, which lifts it into dedicated columns — the canonical
    payload text stays byte-identical across engines.
    """
    from ..core.config import build_cosim  # deferred: workers import lazily

    config = experiment.point_config(spec.point, spec.quick, spec.seed)
    cosim = build_cosim(config, engine=engine)
    record = experiment.point_record(cosim.run(), spec.point, spec.quick, spec.seed)
    payload = {"record": record}
    decision = getattr(cosim, "engine_decision", None)
    if decision is not None:
        payload["_provenance"] = {
            "engine": decision.name,
            "kernel_version": decision.kernel_version,
        }
    return payload


def execute_job(job: dict) -> dict:
    """Run one job (worker-side): look up the experiment, run its point.

    ``job`` is the plain-dict form of a :class:`JobSpec` (what travels over
    the pipe to a worker process).  The returned payload is JSON-serializable
    and goes into the store verbatim.

    Underscore keys are execution hints, not job identity:

    - ``_checkpoint`` (``{"path": ..., "every": ...}``, added by the engine
      when ``--checkpoint-dir`` is set) wraps execution in a
      :func:`repro.resilience.checkpoint.job_checkpoint` scope: the run
      snapshots periodically and, if a previous attempt was killed mid-run,
      resumes from its last snapshot instead of restarting from cycle 0.
    - ``_engine`` selects the NoC execution engine for engine-aware
      experiments (``"auto"``/``"oo"``/``"batched"``); others ignore it.
    - ``_batch_members`` (a list of job dicts) turns this into a synthetic
      batch job: every member runs as one lane of a shared kernel batch and
      the payload is ``{"_batch": [{"job_id", "payload"}, ...]}``.
    """
    if "_batch_members" in job:
        return execute_job_batch(job["_batch_members"], engine=job.get("_engine", "auto"))
    checkpoint = job.get("_checkpoint")
    engine = job.get("_engine", "auto")
    spec = JobSpec.from_dict({k: v for k, v in job.items() if not k.startswith("_")})
    experiment = get_experiment(spec.eid)
    if experiment.engine_aware:
        if checkpoint:
            from ..resilience.checkpoint import job_checkpoint  # deferred

            with job_checkpoint(checkpoint["path"], checkpoint["every"]):
                return _run_engine_point(experiment, spec, engine)
        return _run_engine_point(experiment, spec, engine)
    if checkpoint:
        from ..resilience.checkpoint import job_checkpoint  # deferred

        with job_checkpoint(checkpoint["path"], checkpoint["every"]):
            record = experiment.run_point(spec.point, spec.quick, spec.seed)
    else:
        record = experiment.run_point(spec.point, spec.quick, spec.seed)
    return {"record": record}


def jobs_batchable(jobs: Sequence[dict]) -> Tuple[bool, str]:
    """Whether these job dicts may run as lanes of one kernel batch.

    True only when there are at least two jobs, every job's experiment is
    engine-aware, and the configs they declare agree on network shape and
    quantum (per :func:`repro.engine.batch.configs_batchable`).
    """
    if len(jobs) < 2:
        return False, "batching needs at least two jobs"
    configs = []
    for job in jobs:
        spec = JobSpec.from_dict(
            {k: v for k, v in job.items() if not k.startswith("_")}
        )
        experiment = get_experiment(spec.eid)
        if not experiment.engine_aware:
            return False, f"experiment {spec.eid!r} is not engine-aware"
        configs.append(experiment.point_config(spec.point, spec.quick, spec.seed))
    from ..engine.batch import configs_batchable  # deferred

    return configs_batchable(configs)


def execute_job_batch(jobs: Sequence[dict], engine: str = "auto") -> dict:
    """Run several same-shape jobs as lanes of one batched kernel.

    Returns ``{"_batch": [{"job_id": ..., "payload": ...}, ...]}`` in job
    order; each member payload is exactly what :func:`execute_job` would
    have produced for that job, with batched-engine provenance attached.
    """
    from ..engine.batch import run_cosim_batch  # deferred

    specs: List[JobSpec] = []
    experiments: List[CampaignExperiment] = []
    configs = []
    for job in jobs:
        spec = JobSpec.from_dict(
            {k: v for k, v in job.items() if not k.startswith("_")}
        )
        experiment = get_experiment(spec.eid)
        if not experiment.engine_aware:
            raise ConfigError(
                f"experiment {spec.eid!r} cannot join a kernel batch "
                "(no point_config/point_record)"
            )
        specs.append(spec)
        experiments.append(experiment)
        configs.append(experiment.point_config(spec.point, spec.quick, spec.seed))
    batch = run_cosim_batch(configs)
    members = []
    for spec, experiment, result in zip(specs, experiments, batch.results):
        record = experiment.point_record(result, spec.point, spec.quick, spec.seed)
        members.append(
            {
                "job_id": spec.job_id,
                "payload": {
                    "record": record,
                    "_provenance": {
                        "engine": batch.engine.name,
                        "kernel_version": batch.engine.kernel_version,
                    },
                },
            }
        )
    return {"_batch": members}
