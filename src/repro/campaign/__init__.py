"""``repro.campaign`` — parallel, resumable experiment campaigns.

A *campaign* turns an experiment sweep (experiment id x sweep point x seed
replicate) into a grid of independent, content-hashed jobs, executes them on
a ``multiprocessing`` worker pool, and records every outcome in a SQLite
job store.  Because each job's identity (and therefore its seed) is derived
purely from the campaign spec, results are bit-identical regardless of how
many workers ran them — and a campaign killed mid-run resumes exactly where
it stopped.

Modules
-------

``spec``    job/campaign specs, content-hash ids, the experiment registry
``store``   the SQLite-backed job + result store (status, provenance, rows)
``pool``    the host-side worker pool (fresh process per job, timeout kill)
``engine``  the dispatch loop: claim, submit, retry, progress, summary
``report``  reassemble :class:`~repro.harness.experiments.ExperimentResult`
            tables/figures from the store without re-simulating
``cli``     ``python -m repro campaign {run,report,status}``
"""

from .engine import CampaignEngine, CampaignSummary, run_experiment_parallel
from .report import assemble_results, campaign_report, campaign_status
from .spec import (
    REGISTRY,
    CampaignExperiment,
    CampaignSpec,
    JobSpec,
    execute_job,
    get_experiment,
    register,
)
from .store import ResultStore

__all__ = [
    "CampaignEngine",
    "CampaignSummary",
    "run_experiment_parallel",
    "assemble_results",
    "campaign_report",
    "campaign_status",
    "REGISTRY",
    "CampaignExperiment",
    "CampaignSpec",
    "JobSpec",
    "execute_job",
    "get_experiment",
    "register",
    "ResultStore",
]
