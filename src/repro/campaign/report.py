"""Reassemble experiment tables and figures from a campaign store.

``campaign report`` renders exactly what the sequential ``run_eN`` would
have printed — same tables, same notes, same ASCII figures — but from the
stored job payloads, without re-simulating anything.  ``campaign status``
summarizes the store itself: per-experiment job counts, attempts, and
wall-time provenance.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..harness.experiments import ExperimentResult
from ..harness.persist import save_result
from ..harness.report import format_table
from .spec import get_experiment
from .store import ResultStore

__all__ = ["assemble_results", "campaign_report", "campaign_status", "save_results"]


def assemble_results(
    store: ResultStore, eids: Optional[Sequence[str]] = None
) -> List[Tuple[str, int, ExperimentResult]]:
    """Rebuild every fully-completed ``(eid, replicate)`` result.

    Returns ``(eid, replicate, result)`` tuples in store order.  Partially
    completed groups are skipped — their gaps are what ``campaign status``
    is for, and a half-assembled sweep table would silently lie.
    """
    wanted = list(eids) if eids is not None else store.eids()
    spec = store.campaign_spec()
    out: List[Tuple[str, int, ExperimentResult]] = []
    for eid in wanted:
        experiment = get_experiment(eid)
        for replicate in range(spec.replicates):
            jobs = store.jobs_for(eid, replicate=replicate)
            if not jobs or any(job.status != "done" for job in jobs):
                continue
            records = [job.record() for job in jobs]
            result = experiment.assemble(
                records, spec.quick, spec.seed_for(eid, replicate)
            )
            out.append((eid, replicate, result))
    return out


def save_results(store: ResultStore, directory: str | Path) -> List[Path]:
    """Persist every assembled result as JSON under ``directory``.

    Replicate 0 gets the plain ``<eid>.json`` name (what
    :func:`repro.harness.persist.load_all` and the regression tooling
    expect); later replicates get ``<eid>-rep<k>.json``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for eid, replicate, result in assemble_results(store):
        name = f"{eid}.json" if replicate == 0 else f"{eid}-rep{replicate}.json"
        path = directory / name
        save_result(result, path)
        paths.append(path)
    return paths


def campaign_report(
    store: ResultStore,
    eids: Optional[Sequence[str]] = None,
    save_dir: Optional[str | Path] = None,
) -> str:
    """The rendered tables/figures for every completed experiment."""
    assembled = assemble_results(store, eids)
    chunks: List[str] = []
    for eid, replicate, result in assembled:
        if replicate:
            chunks.append(f"--- {eid} replicate {replicate} ---")
        chunks.append(result.render())
    incomplete = _incomplete_eids(store, eids)
    if incomplete:
        chunks.append(
            "incomplete (run with --resume to finish): " + ", ".join(incomplete)
        )
    if not assembled and not incomplete:
        chunks.append("campaign store holds no jobs")
    if save_dir is not None:
        paths = save_results(store, save_dir)
        chunks.append(f"saved {len(paths)} result file(s) under {save_dir}")
    return "\n\n".join(chunks)


def _incomplete_eids(
    store: ResultStore, eids: Optional[Sequence[str]] = None
) -> List[str]:
    wanted = set(eids) if eids is not None else None
    out = []
    for eid, tally in sorted(store.counts_by_eid().items()):
        if wanted is not None and eid not in wanted:
            continue
        missing = sum(tally.values()) - tally["done"]
        if missing:
            out.append(f"{eid} ({missing} of {sum(tally.values())} jobs unfinished)")
    return out


def campaign_status(store: ResultStore) -> str:
    """Per-experiment job counts plus per-job provenance."""
    spec = store.campaign_spec()
    counts = store.counts_by_eid()
    summary_rows = [
        (
            eid,
            tally["pending"],
            tally["running"],
            tally["done"],
            tally["failed"],
        )
        for eid, tally in sorted(counts.items())
    ]
    lines = [
        format_table(
            ["eid", "pending", "running", "done", "failed"],
            summary_rows,
            title=f"Campaign {spec.spec_hash} ({store.path})",
        )
    ]
    job_rows = []
    for job in store.all_jobs():
        job_rows.append(
            (
                job.job_id,
                job.eid,
                job.status,
                job.attempts,
                job.worker or "-",
                job.started_at or "-",
                job.wall_s if job.wall_s is not None else "-",
            )
        )
    lines.append("")
    lines.append(
        format_table(
            ["job", "eid", "status", "attempts", "worker", "started_at", "wall_s"],
            job_rows,
            title="Job provenance",
        )
    )
    return "\n".join(lines)
