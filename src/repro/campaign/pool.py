"""The host-side worker pool: one fresh process per job.

Jobs are coarse (each is a whole co-simulation or sweep point, seconds to
minutes), so the pool deliberately spawns a *fresh process per job* rather
than reusing long-lived workers: a stuck job can be killed without
poisoning a worker, retries automatically get the clean process the
``--retries`` contract promises, and no simulator state can leak between
jobs.  Results travel back over a one-shot pipe; the parent (the campaign
engine) is the only process that touches the job store.

This module is the sanctioned home of host wall-clock reads in the
campaign package (``time.monotonic`` for job durations and timeout
deadlines — monotonic, so neither NTP steps nor DST can corrupt
provenance or kill a healthy job).  Simulated-time code must never read
the host clock; ``simlint`` enforces that split.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError

__all__ = [
    "JobOutcome",
    "WorkerPool",
    "default_start_method",
    "now_monotonic",
    "sleep_s",
]

#: chaos-injection shim (see :mod:`repro.chaos.inject`): when armed, called
#: before every worker spawn.  It may raise ``OSError`` (simulating fd
#: exhaustion) or return a callable the pool invokes with the just-started
#: process (simulating an immediate SIGKILL).  ``None`` (the default) costs
#: one identity check — the pool never imports chaos.
CHAOS_SPAWN_HOOK = None


def now_monotonic() -> float:
    """The sanctioned host-clock read for campaign scheduling decisions.

    The engine uses this (rather than importing :mod:`time` itself) for
    retry-backoff deadlines, keeping every wall-clock read in this module
    where simlint expects it.
    """
    return time.monotonic()


def sleep_s(seconds: float) -> None:
    """Sleep (host time); used by the engine while backoff delays elapse."""
    if seconds > 0:
        time.sleep(seconds)


@dataclass(frozen=True)
class JobOutcome:
    """What happened to one submitted job."""

    job_id: str
    ok: bool
    payload: Optional[dict]
    error: Optional[str]
    wall_s: float
    worker: str
    timed_out: bool = False


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits runtime-registered
    experiments), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _worker_main(conn, job: dict) -> None:
    """Child-process entry point: run the job, ship one result tuple."""
    start = time.monotonic()
    try:
        from .spec import execute_job

        payload = execute_job(job)
        conn.send(("ok", payload, time.monotonic() - start))
    except BaseException:
        conn.send(("error", traceback.format_exc(), time.monotonic() - start))
    finally:
        conn.close()


class _Live:
    """Book-keeping for one in-flight job."""

    __slots__ = ("job_id", "process", "conn", "deadline", "worker")

    def __init__(self, job_id, process, conn, deadline, worker) -> None:
        self.job_id = job_id
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.worker = worker


class WorkerPool:
    """Run jobs on up to ``workers`` concurrent single-job processes.

    Args:
        workers: concurrency cap (>= 1).
        timeout: per-job wall-clock budget in seconds; a job past its
            deadline is killed and reported ``timed_out`` (None: no limit).
        start_method: multiprocessing start method; default
            :func:`default_start_method`.
        term_grace_s: how long a killed job gets between SIGTERM and
            SIGKILL.  Termination always escalates — polite first (so the
            child can flush a checkpoint or atexit handler), forceful after
            the grace expires.
    """

    def __init__(
        self,
        workers: int = 1,
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        term_grace_s: float = 2.0,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"worker pool needs workers >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ConfigError(f"per-job timeout must be positive, got {timeout}")
        if term_grace_s < 0:
            raise ConfigError(f"term_grace_s must be >= 0, got {term_grace_s}")
        self.workers = workers
        self.timeout = timeout
        self.term_grace_s = term_grace_s
        self._ctx = multiprocessing.get_context(start_method or default_start_method())
        self._live: Dict[str, _Live] = {}

    # -- capacity -------------------------------------------------------
    @property
    def active(self) -> int:
        return len(self._live)

    def has_capacity(self) -> bool:
        return self.active < self.workers

    # -- submission -----------------------------------------------------
    def submit(self, job_id: str, job: dict) -> str:
        """Start a fresh process for ``job``; returns the worker name."""
        if not self.has_capacity():
            raise ConfigError("worker pool is full; wait() before submitting")
        if job_id in self._live:
            raise ConfigError(f"job {job_id} is already running")
        hook = CHAOS_SPAWN_HOOK
        after_spawn = hook() if hook is not None else None
        recv, send = self._ctx.Pipe(duplex=False)
        try:
            process = self._ctx.Process(
                target=_worker_main, args=(send, job), daemon=True
            )
            process.start()
        except BaseException:
            # Pipe fds must not outlive a failed spawn (fd exhaustion
            # under repeated submit retries).
            recv.close()
            send.close()
            raise
        send.close()  # child holds the write end now
        if after_spawn is not None:
            after_spawn(process)
        worker = f"pid{process.pid}"
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        self._live[job_id] = _Live(job_id, process, recv, deadline, worker)
        return worker

    # -- collection -----------------------------------------------------
    def wait(
        self, poll_s: float = 0.2, budget_s: Optional[float] = None
    ) -> List[JobOutcome]:
        """Block until at least one in-flight job finishes (or times out).

        Returns every outcome that became available; an empty list only
        when nothing is in flight — or, with ``budget_s`` set, when the
        wait budget elapsed first.  The budget is what lets the serve
        scheduler keep admitting new jobs while long jobs run instead of
        parking inside this call.
        """
        if not self._live:
            return []
        give_up = None if budget_s is None else time.monotonic() + budget_s
        outcomes: List[JobOutcome] = []
        while not outcomes:
            if give_up is not None and time.monotonic() > give_up:
                break
            conns = [entry.conn for entry in self._live.values()]
            ready = multiprocessing.connection.wait(conns, timeout=poll_s)
            ready_ids = {
                entry.job_id
                for entry in self._live.values()
                if entry.conn in ready
            }
            for job_id in sorted(ready_ids):
                outcomes.append(self._collect(self._live.pop(job_id)))
            now = time.monotonic()
            for job_id in sorted(self._live):
                entry = self._live[job_id]
                if entry.deadline is not None and now > entry.deadline:
                    outcomes.append(self._kill(self._live.pop(job_id)))
        return outcomes

    def _collect(self, entry: _Live) -> JobOutcome:
        try:
            kind, value, wall_s = entry.conn.recv()
        except (EOFError, OSError):
            # The process died without reporting (segfault, oom-kill, ...).
            entry.process.join(timeout=5.0)
            return JobOutcome(
                job_id=entry.job_id,
                ok=False,
                payload=None,
                error=(
                    "worker died without reporting a result "
                    f"(exit code {entry.process.exitcode})"
                ),
                wall_s=0.0,
                worker=entry.worker,
            )
        finally:
            entry.conn.close()
        entry.process.join(timeout=5.0)
        if kind == "ok":
            return JobOutcome(
                job_id=entry.job_id,
                ok=True,
                payload=value,
                error=None,
                wall_s=wall_s,
                worker=entry.worker,
            )
        return JobOutcome(
            job_id=entry.job_id,
            ok=False,
            payload=None,
            error=value,
            wall_s=wall_s,
            worker=entry.worker,
        )

    def _terminate(self, entry: _Live) -> None:
        """SIGTERM, wait out the grace period, then SIGKILL stragglers."""
        entry.process.terminate()
        entry.process.join(timeout=self.term_grace_s)
        if entry.process.is_alive():
            entry.process.kill()
            entry.process.join(timeout=5.0)

    def _kill(self, entry: _Live) -> JobOutcome:
        self._terminate(entry)
        entry.conn.close()
        return JobOutcome(
            job_id=entry.job_id,
            ok=False,
            payload=None,
            error=f"job exceeded its {self.timeout}s timeout and was killed",
            wall_s=float(self.timeout or 0.0),
            worker=entry.worker,
            timed_out=True,
        )

    # -- shutdown -------------------------------------------------------
    def kill_all(self) -> None:
        """SIGKILL every in-flight worker immediately (crash simulation).

        No SIGTERM grace, no checkpoint flush — the cluster chaos audit's
        in-process stand-in for a node dying under ``kill -9``.  Restart
        recovery (``reset_running``) is what reclaims the jobs.
        """
        for entry in self._live.values():
            entry.process.kill()
            entry.process.join(timeout=5.0)
            entry.conn.close()
        self._live.clear()

    def shutdown(self) -> None:
        """Stop every in-flight job (abandoning their results).

        Escalates per job: SIGTERM first (letting workers flush checkpoints
        and atexit handlers), SIGKILL after the grace period.
        """
        for entry in self._live.values():
            self._terminate(entry)
            entry.conn.close()
        self._live.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
