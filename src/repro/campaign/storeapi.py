"""``ResultStoreAPI`` — the abstract face of a content-addressed job store.

Extracted from :mod:`repro.campaign.store` so the components that *use* a
store — the campaign engine, the serve scheduler, and the serve result
cache — depend on one interface instead of on SQLite.  Two tiers
implement it:

* :class:`repro.campaign.store.ResultStore` — the durable SQLite tier
  (one database file, WAL mode, crash-safe transitions);
* :class:`repro.cluster.storeapi.PeerBackedStore` — the networked tier: a
  local SQLite store that, on a lookup miss, asks ring peers for the
  content-hashed result before reporting the job unknown.

The contract every implementation keeps:

* **identity is content** — a job's key is its canonical-JSON SHA-256
  hash, so the same work has the same row everywhere;
* **payloads are verbatim text** — whatever text :meth:`mark_done`
  committed is what every later read returns, byte for byte;
* **transitions are atomic** — a crash between any two calls leaves a
  row some caller-visible state (``pending``/``running``/``done``/
  ``failed``), never half of one.

:meth:`adopt_done` is the cluster-enabling addition: committing a result
*computed elsewhere* without re-serializing it, so a peer-filled or
steal-completed payload stays byte-identical to its origin.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports spec)
    from .spec import JobSpec
    from .store import JobRow

__all__ = ["ResultStoreAPI"]


class ResultStoreAPI(abc.ABC):
    """What the engine, scheduler, and cache require of a job store.

    Implementations expose ``path`` (a human-readable location string —
    a file path for the SQLite tier, the local tier's path for a
    networked store) and the lifecycle/query methods below.
    """

    path: str

    # -- lifecycle ------------------------------------------------------
    @abc.abstractmethod
    def close(self) -> None:
        """Release the store's resources; further calls are undefined."""

    # -- meta -----------------------------------------------------------
    @abc.abstractmethod
    def get_meta(self, key: str) -> Optional[str]:
        """The meta value for ``key``, or None when unset."""

    @abc.abstractmethod
    def set_meta(self, key: str, value: str) -> None:
        """Durably set one meta key."""

    # -- admission ------------------------------------------------------
    @abc.abstractmethod
    def add_jobs(self, jobs: Sequence["JobSpec"]) -> int:
        """Insert ``pending`` rows for new jobs; existing rows are kept.

        Returns the number of rows actually inserted.
        """

    @abc.abstractmethod
    def requeue_one(self, job_id: str) -> bool:
        """Put one ``failed`` job back to ``pending`` (fresh submission)."""

    @abc.abstractmethod
    def discard_pending(self, job_id: str) -> bool:
        """Delete a never-attempted ``pending`` row (admission rollback)."""

    @abc.abstractmethod
    def reset_running(self) -> int:
        """Re-queue jobs a crashed runner left ``running``; returns count."""

    @abc.abstractmethod
    def requeue_failed(self, max_attempts: int) -> int:
        """Re-queue ``failed`` jobs with attempts remaining; returns count."""

    @abc.abstractmethod
    def pending_jobs(self) -> List["JobRow"]:
        """Every pending job, in a deterministic order."""

    # -- transitions ----------------------------------------------------
    @abc.abstractmethod
    def mark_running(self, job_id: str, worker: str) -> None:
        """Record that ``worker`` started the job (attempts increment)."""

    @abc.abstractmethod
    def mark_done(self, job_id: str, payload: dict, wall_s: float) -> None:
        """Commit a locally computed result as canonical payload text."""

    @abc.abstractmethod
    def mark_failed(
        self, job_id: str, error: str, wall_s: Optional[float], requeue: bool
    ) -> None:
        """Record a failure; ``requeue`` returns the job to ``pending``."""

    @abc.abstractmethod
    def adopt_done(
        self,
        spec: "JobSpec",
        payload_text: str,
        wall_s: Optional[float],
        engine: Optional[str] = None,
        kernel_version: Optional[str] = None,
    ) -> bool:
        """Commit a result computed *elsewhere*, verbatim.

        The payload text is stored exactly as given — never re-parsed or
        re-serialized — so a peer-filled or steal-completed result stays
        byte-identical to the store that computed it.  Idempotent: a row
        already ``done`` is left untouched (the first copy wins; copies
        are byte-identical by the determinism contract anyway).  Returns
        True when the row was created or promoted to ``done``.
        """

    # -- queries --------------------------------------------------------
    @abc.abstractmethod
    def get_job(self, job_id: str) -> "JobRow":
        """The row for ``job_id``; raises ``ConfigError`` when unknown."""

    @abc.abstractmethod
    def counts(self) -> Dict[str, int]:
        """Job counts by status (all four statuses always present)."""

    @abc.abstractmethod
    def all_jobs(self) -> List["JobRow"]:
        """Every row, in a deterministic order (audit and report paths)."""

    @abc.abstractmethod
    def mean_wall_s(self) -> Optional[float]:
        """Mean per-job wall time over completed jobs (ETA estimates)."""
