"""``python -m repro campaign`` — run, resume, and report campaigns.

Examples::

    python -m repro campaign run E5 E7 --quick --workers 4 --db sweep.db
    python -m repro campaign run all --db full.db --retries 2 --timeout 1800
    python -m repro campaign run --resume --db sweep.db      # after a crash
    python -m repro campaign report --db sweep.db --save results/
    python -m repro campaign status --db sweep.db

``run`` executes the grid and prints the assembled tables on completion;
``--resume`` continues an interrupted campaign, skipping every completed
job.  ``report``/``status`` never simulate — they only read the store.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ConfigError, StoreCorruptError, StoreIOError
from ..harness.experiments import ALL_EXPERIMENTS
from .engine import CampaignEngine
from .report import campaign_report, campaign_status
from .spec import CampaignSpec
from .store import ResultStore

__all__ = ["build_parser", "main"]


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Parallel, resumable experiment campaigns with a SQLite job store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute (or resume) a campaign")
    run.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (E1..E11, demo) or 'all'; may be omitted with "
        "--resume (the stored spec is reused)",
    )
    run.add_argument("--db", default="campaign.db", help="job-store path (default: %(default)s)")
    run.add_argument("--quick", action="store_true", help="shrunken (test-sized) variants")
    run.add_argument("--seed", type=int, default=None, help="campaign root seed")
    run.add_argument(
        "--replicates", type=int, default=1,
        help="seed replicates per experiment (derived from the root seed)",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: all CPUs)",
    )
    run.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per failed/stuck job, each on a fresh process",
    )
    run.add_argument(
        "--timeout", type=float, default=None,
        help="per-job wall-clock budget in seconds (stuck jobs are killed)",
    )
    run.add_argument(
        "--retry-backoff", type=float, default=0.0,
        help="base seconds between retry attempts (doubles per attempt, "
        "capped at 60s; 0 retries immediately)",
    )
    run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint each job here; killed/timed-out attempts resume "
        "from their last quantum-boundary snapshot",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=256,
        help="snapshot period in synchronization windows (default: %(default)s)",
    )
    run.add_argument(
        "--engine", default="auto", choices=["auto", "oo", "batched"],
        help="NoC execution engine for engine-aware experiments "
        "(default: %(default)s; recorded in job provenance)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="continue an existing campaign, skipping completed jobs",
    )
    run.add_argument(
        "--start-method", default=None, choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method (default: fork where available)",
    )
    run.add_argument("--no-report", action="store_true", help="skip the final report")
    run.add_argument("--no-progress", action="store_true", help="no progress line")

    report = sub.add_parser("report", help="render tables/figures from the store")
    report.add_argument("--db", default="campaign.db")
    report.add_argument("--save", default=None, metavar="DIR", help="also save JSON results")
    report.add_argument("experiments", nargs="*", help="restrict to these experiment ids")

    status = sub.add_parser("status", help="job counts and provenance")
    status.add_argument("--db", default="campaign.db")
    return parser


def _expand_eids(names: List[str]) -> List[str]:
    eids: List[str] = []
    for name in names:
        if name == "all":
            eids.extend(sorted(ALL_EXPERIMENTS, key=lambda e: (len(e), e)))
        else:
            eids.append(name)
    return eids


def _cmd_run(args: argparse.Namespace) -> int:
    db_exists = args.db != ":memory:" and Path(args.db).exists()
    spec: Optional[CampaignSpec] = None
    if args.experiments:
        spec = CampaignSpec(
            experiments=tuple(_expand_eids(args.experiments)),
            quick=args.quick,
            seed=args.seed,
            replicates=args.replicates,
        )
    if args.resume:
        if not db_exists and args.db != ":memory:":
            raise ConfigError(f"--resume: no campaign store at {args.db}")
    elif db_exists:
        raise ConfigError(
            f"{args.db} already exists; pass --resume to continue it or use a new --db"
        )
    if spec is None:
        if not args.resume:
            raise ConfigError("name experiments to run, or pass --resume")
        with ResultStore(args.db) as store:
            spec = store.campaign_spec()

    with ResultStore(args.db) as store:
        store.initialize(spec)  # raises on spec mismatch with the stored campaign
        engine = CampaignEngine(
            store,
            workers=args.workers or _default_workers(),
            retries=args.retries,
            timeout=args.timeout,
            start_method=args.start_method,
            progress=not args.no_progress,
            retry_backoff=args.retry_backoff,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            engine=args.engine,
        )
        summary = engine.run()
        print(summary.render())
        if not args.no_report:
            print()
            print(campaign_report(store))
        return 0 if summary.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    if args.db != ":memory:" and not Path(args.db).exists():
        raise ConfigError(f"no campaign store at {args.db}")
    with ResultStore(args.db) as store:
        print(campaign_report(store, eids=args.experiments or None, save_dir=args.save))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    if args.db != ":memory:" and not Path(args.db).exists():
        raise ConfigError(f"no campaign store at {args.db}")
    with ResultStore(args.db) as store:
        print(campaign_status(store))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "report":
            return _cmd_report(args)
        return _cmd_status(args)
    except (ConfigError, StoreCorruptError, StoreIOError) as exc:
        # Structured refusals (bad flags, a corrupt/unwritable store):
        # an operator diagnostic, never a raw traceback.
        print(f"campaign: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
