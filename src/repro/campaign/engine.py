"""The campaign engine: claim pending jobs, fan out, retry, summarize.

The engine is the single writer of the job store.  Its loop is:

1. re-queue jobs a crashed run left ``running`` (their provenance shows a
   start but no finish — the resume-after-kill signature);
2. re-queue ``failed`` jobs that still have attempts left under
   ``--retries``;
3. keep the worker pool full from the pending queue, marking each job
   ``running`` (with worker provenance) before its process starts;
4. on each outcome, commit ``done`` (payload + wall time) or ``failed``
   (error text), re-queueing failures onto a fresh process while attempts
   remain;
5. emit a progress line (done/failed/running and an ETA extrapolated from
   completed-job wall times — no host-clock reads in this module).

Completed jobs are never re-executed: ``--resume`` only ever sees them as
rows to skip, which is what makes a campaign crash-proof.
"""

from __future__ import annotations

import heapq
import os
import sys
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ConfigError
from .pool import WorkerPool, now_monotonic, sleep_s
from .spec import CampaignSpec, get_experiment
from .store import JobRow, ResultStore
from .storeapi import ResultStoreAPI

__all__ = ["CampaignEngine", "CampaignSummary", "run_experiment_parallel"]


@dataclass
class CampaignSummary:
    """What one engine run did (counts are this run's, totals the store's)."""

    total: int
    executed: int
    skipped: int
    done: int
    failed: int
    retried: int
    reset_running: int

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def render(self) -> str:
        return (
            f"campaign: {self.done}/{self.total} done, {self.failed} failed "
            f"({self.executed} executed, {self.skipped} skipped, "
            f"{self.retried} retried, {self.reset_running} reclaimed)"
        )


class _Progress:
    """A single mutating status line (TTY) or sparse log lines (pipes)."""

    def __init__(self, stream, total: int) -> None:
        self.stream = stream
        self.total = total
        self._last_len = 0
        self._tty = bool(getattr(stream, "isatty", lambda: False)())
        # Non-TTY consumers (CI logs) get at most ~20 updates per campaign.
        self._every = max(1, total // 20)
        self._updates = 0

    def update(self, done: int, failed: int, running: int, eta_s: Optional[float]) -> None:
        self._updates += 1
        if not self._tty and self._updates % self._every:
            return
        eta = "?" if eta_s is None else f"~{eta_s:.0f}s"
        text = (
            f"campaign: {done}/{self.total} done, {failed} failed, "
            f"{running} running, ETA {eta}"
        )
        if self._tty:
            pad = " " * max(0, self._last_len - len(text))
            self.stream.write(f"\r{text}{pad}")
            self._last_len = len(text)
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def finish(self) -> None:
        if self._tty and self._last_len:
            self.stream.write("\n")
            self.stream.flush()


class CampaignEngine:
    """Drive one campaign store to completion.

    Args:
        store: the campaign's job store (already initialized) — any
            :class:`~repro.campaign.storeapi.ResultStoreAPI` implementation;
            production campaigns use the SQLite :class:`ResultStore`.
        workers: pool concurrency.
        retries: extra attempts per job after its first failure/timeout.
        timeout: per-job wall-clock budget in seconds (None: unlimited).
        start_method: multiprocessing start method override.
        progress: write a live progress line to ``stream``.
        stream: where progress goes (default stderr, keeping stdout clean
            for the report tables).
        retry_backoff: base delay in seconds before re-running a failed
            job; attempt ``n`` waits ``min(cap, backoff * 2**(n-1))``.
            0 (default) re-queues immediately (the historic behaviour).
            The delay gives transient host conditions (memory pressure, a
            dying disk, a noisy neighbour) time to clear instead of
            burning every retry in the same bad second.
        retry_backoff_cap: ceiling for the backed-off delay, in seconds.
        checkpoint_dir: when set, each job is executed inside a
            :func:`repro.resilience.checkpoint.job_checkpoint` scope with a
            per-job file in this directory — a killed or timed-out attempt
            resumes from its last quantum-boundary snapshot instead of
            restarting from cycle 0.
        checkpoint_every: snapshot period in synchronization windows.
        engine: NoC execution engine for engine-aware experiments
            (``"auto"``/``"oo"``/``"batched"``, see :mod:`repro.engine`).
            The choice each job actually ran with lands in the store's
            ``engine``/``kernel_version`` provenance columns.
    """

    def __init__(
        self,
        store: ResultStoreAPI,
        workers: int = 1,
        retries: int = 0,
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        progress: bool = True,
        stream=None,
        retry_backoff: float = 0.0,
        retry_backoff_cap: float = 60.0,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 256,
        engine: str = "auto",
    ) -> None:
        if engine not in ("auto", "oo", "batched"):
            raise ConfigError(
                f"engine must be 'auto', 'oo', or 'batched', got {engine!r}"
            )
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ConfigError(f"retry_backoff must be >= 0, got {retry_backoff}")
        if retry_backoff_cap < 0:
            raise ConfigError(
                f"retry_backoff_cap must be >= 0, got {retry_backoff_cap}"
            )
        if checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.store = store
        self.workers = workers
        self.retries = retries
        self.timeout = timeout
        self.start_method = start_method
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.engine = engine

    # -- helpers --------------------------------------------------------
    def _retry_delay(self, attempts: int) -> float:
        """Bounded exponential backoff before attempt ``attempts + 1``."""
        if self.retry_backoff <= 0:
            return 0.0
        return min(
            self.retry_backoff_cap,
            self.retry_backoff * (2.0 ** max(0, attempts - 1)),
        )

    def _job_dict(self, job: JobRow) -> dict:
        """The wire form of a job, with its checkpoint request attached."""
        data = job.job_spec().to_dict()
        if self.checkpoint_dir is not None:
            data["_checkpoint"] = {
                "path": os.path.join(self.checkpoint_dir, f"{job.job_id}.ckpt"),
                "every": self.checkpoint_every,
            }
        if self.engine != "auto":
            data["_engine"] = self.engine
        return data

    def run(self) -> CampaignSummary:
        store = self.store
        reset = store.reset_running()
        retried = store.requeue_failed(max_attempts=self.retries + 1)
        pending: Deque[JobRow] = deque(store.pending_jobs())
        counts = store.counts()
        total = sum(counts.values())
        skipped = counts["done"]
        executed = 0
        run_failures = 0
        spawn_failures = 0  # consecutive; any successful spawn resets it
        # wall-time provenance of completed jobs drives the ETA
        wall_done: List[float] = []

        progress = _Progress(self.stream, total) if self.progress else None
        jobs_by_id: Dict[str, JobRow] = {}
        #: (ready_at, seq, job) — retries waiting out their backoff delay
        delayed: List[Tuple[float, int, JobRow]] = []
        delayed_seq = 0
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)

        with WorkerPool(
            workers=self.workers,
            timeout=self.timeout,
            start_method=self.start_method,
        ) as pool:
            while pending or delayed or pool.active:
                while delayed and delayed[0][0] <= now_monotonic():
                    pending.append(heapq.heappop(delayed)[2])
                while pending and pool.has_capacity():
                    job = pending.popleft()
                    try:
                        worker = pool.submit(job.job_id, self._job_dict(job))
                    except OSError as exc:
                        # A failed spawn (fd/process exhaustion) is a host
                        # fault, not the job's: put it back at the head of
                        # the queue without burning a retry attempt, give
                        # the host a beat to recover, and only give up
                        # after a long run of consecutive failures.
                        pending.appendleft(job)
                        spawn_failures += 1
                        if spawn_failures >= 25:
                            raise ConfigError(
                                f"worker spawn failed {spawn_failures} times "
                                f"in a row; giving up: {exc}"
                            ) from exc
                        sleep_s(0.05)
                        break
                    spawn_failures = 0
                    jobs_by_id[job.job_id] = job
                    store.mark_running(job.job_id, worker)
                if not pending and not pool.active and delayed:
                    # Nothing runnable until the next backoff delay elapses.
                    sleep_s(min(0.2, max(0.0, delayed[0][0] - now_monotonic())))
                    continue
                for outcome in pool.wait():
                    executed += 1
                    job = jobs_by_id.pop(outcome.job_id)
                    if outcome.ok:
                        store.mark_done(outcome.job_id, outcome.payload, outcome.wall_s)
                        wall_done.append(outcome.wall_s)
                    else:
                        attempts = store.get_job(outcome.job_id).attempts
                        requeue = attempts < self.retries + 1
                        store.mark_failed(
                            outcome.job_id, outcome.error or "unknown error",
                            outcome.wall_s, requeue=requeue,
                        )
                        if requeue:
                            delay = self._retry_delay(attempts)
                            row = store.get_job(outcome.job_id)
                            if delay > 0:
                                heapq.heappush(
                                    delayed,
                                    (now_monotonic() + delay, delayed_seq, row),
                                )
                                delayed_seq += 1
                            else:
                                pending.append(row)
                        else:
                            run_failures += 1
                    if progress is not None:
                        counts = store.counts()
                        progress.update(
                            counts["done"],
                            counts["failed"],
                            pool.active,
                            self._eta(wall_done, counts),
                        )
        if progress is not None:
            progress.finish()
        counts = store.counts()
        return CampaignSummary(
            total=total,
            executed=executed,
            skipped=skipped,
            done=counts["done"],
            failed=counts["failed"],
            retried=retried,
            reset_running=reset,
        )

    def _eta(self, wall_done: List[float], counts: Dict[str, int]) -> Optional[float]:
        """Remaining wall time, extrapolated from this run's finished jobs."""
        if not wall_done:
            return None
        remaining = counts["pending"] + counts["running"]
        mean = sum(wall_done) / len(wall_done)
        return mean * remaining / max(1, self.workers)


def run_experiment_parallel(
    eid: str,
    quick: bool = False,
    seed: Optional[int] = None,
    workers: int = 2,
    retries: int = 0,
    timeout: Optional[float] = None,
    db_path: str = ":memory:",
    progress: bool = False,
):
    """Run one experiment's sweep through the campaign engine and assemble
    its :class:`~repro.harness.experiments.ExperimentResult`.

    This is the benchmarks' full-mode entry point: same rows as the
    sequential ``run_eN`` (host wall-clock columns aside), but the sweep
    points fan out across ``workers`` processes.  The default in-memory
    store makes it a drop-in replacement where resume is not needed.
    """
    from .report import assemble_results  # deferred: avoids import cycle

    spec = CampaignSpec(experiments=(eid,), quick=quick, seed=seed)
    with ResultStore(db_path) as store:
        store.initialize(spec)
        summary = CampaignEngine(
            store,
            workers=workers,
            retries=retries,
            timeout=timeout,
            progress=progress,
        ).run()
        if not summary.ok:
            failures = [
                f"{job.job_id} ({job.error})"
                for job in store.jobs_for(eid)
                if job.status == "failed"
            ]
            raise ConfigError(
                f"campaign for {eid} left {summary.failed} job(s) failed: "
                + "; ".join(failures)
            )
        results = assemble_results(store, eids=[eid])
    experiment = get_experiment(eid)  # validates eid even for empty stores
    if not results:
        raise ConfigError(f"campaign for {experiment.eid} produced no results")
    return results[0][2]
