"""The SQLite-backed campaign job store.

One database file per campaign.  The ``jobs`` table holds one row per
content-hashed job: its spec, lifecycle status (``pending`` -> ``running``
-> ``done`` | ``failed``), attempt count, result payload (the same JSON
schema :mod:`repro.harness.persist` writes), and provenance — which worker
ran it, when, and for how long.  The ``meta`` table pins the store schema
version and the campaign spec, so ``--resume`` can verify it is continuing
the *same* campaign and refuse to mix grids.

Concurrency model: a campaign has exactly one *writer* — the engine
process (the pool's parent) — and workers report results over pipes, so
writes never race each other.  Readers are another matter: the serve
daemon (:mod:`repro.serve`) opens additional connections to answer status
and result queries while the writer commits, so file-backed stores run in
WAL mode with a busy timeout — readers see consistent snapshots instead
of ``database is locked`` errors, and the writer never blocks on them.
Every status change is still its own committed transaction, which is what
makes the store survive ``kill -9`` at any instant.

Timestamps (``started_at`` / ``finished_at``) are written by SQLite's own
``datetime('now')``: provenance wants host wall-clock, but keeping the
reads inside SQL means no Python-level wall-clock calls in this module —
per-job durations come from ``time.monotonic`` in the worker instead
(see :mod:`repro.campaign.pool`).
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError, StoreCorruptError, StoreIOError
from .spec import CampaignSpec, JobSpec
from .storeapi import ResultStoreAPI

__all__ = ["ResultStore", "JobRow", "STORE_SCHEMA_VERSION"]

#: chaos-injection shim (see :mod:`repro.chaos.inject`): when armed, called
#: with the store before every transaction commit.  ``None`` (the default)
#: costs one identity check — the store never imports chaos.
CHAOS_COMMIT_HOOK = None

#: bump on incompatible store-layout change
STORE_SCHEMA_VERSION = 2

#: how long a connection waits on a competing writer before erroring (ms)
BUSY_TIMEOUT_MS = 5_000

_STATUSES = ("pending", "running", "done", "failed")

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id      TEXT PRIMARY KEY,
    eid         TEXT NOT NULL,
    point_index INTEGER NOT NULL,
    replicate   INTEGER NOT NULL DEFAULT 0,
    spec        TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    attempts    INTEGER NOT NULL DEFAULT 0,
    worker      TEXT,
    started_at  TEXT,
    finished_at TEXT,
    wall_s      REAL,
    error       TEXT,
    payload     TEXT,
    engine      TEXT,
    kernel_version TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);
CREATE INDEX IF NOT EXISTS idx_jobs_eid ON jobs(eid, replicate, point_index);
"""

#: schema version -> SQL that upgrades it one step.  v1 -> v2 adds the
#: engine-provenance columns; old rows keep NULL (engine unrecorded) and
#: stay fully readable.
_MIGRATIONS: Dict[int, str] = {
    1: "ALTER TABLE jobs ADD COLUMN engine TEXT;\n"
    "ALTER TABLE jobs ADD COLUMN kernel_version TEXT;",
}


class JobRow:
    """One row of the ``jobs`` table, attribute-accessed."""

    __slots__ = (
        "job_id",
        "eid",
        "point_index",
        "replicate",
        "spec",
        "status",
        "attempts",
        "worker",
        "started_at",
        "finished_at",
        "wall_s",
        "error",
        "payload",
        "engine",
        "kernel_version",
    )

    def __init__(self, row: sqlite3.Row) -> None:
        for name in self.__slots__:
            setattr(self, name, row[name])

    def job_spec(self) -> JobSpec:
        return JobSpec.from_json(self.spec)

    def record(self):
        """The job's result record (from the payload JSON), or None."""
        if self.payload is None:
            return None
        return json.loads(self.payload).get("record")


class ResultStore(ResultStoreAPI):
    """Open (creating if needed) the campaign database at ``path``.

    ``":memory:"`` is accepted for ephemeral campaigns (benchmarks, tests).

    Args:
        path: database file (created with its parent directories).
        cross_thread: allow this store to be used from threads other than
            the creating one.  The store does **not** become lock-free —
            the caller must serialize access (the serve daemon wraps its
            shared store in an ``RLock``); this only lifts sqlite3's
            same-thread ownership check.
    """

    def __init__(self, path: str | Path, cross_thread: bool = False) -> None:
        self.path = str(path)
        self._conn: Optional[sqlite3.Connection] = None
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        preexisting = self.path != ":memory:" and Path(self.path).exists()
        try:
            self._conn = sqlite3.connect(
                self.path, check_same_thread=not cross_thread
            )
            self._conn.row_factory = sqlite3.Row
            if self.path != ":memory:":
                # WAL lets the serve daemon's reader connections see consistent
                # snapshots while the single writer commits; the busy timeout
                # absorbs the brief writer-vs-writer window on requeue paths.
                # NORMAL sync is the standard WAL pairing (durable except power
                # loss mid-checkpoint; a campaign re-runs the lost job anyway).
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            if preexisting:
                # Campaign databases are resumed and trusted as provenance;
                # a torn page must never masquerade as completed work.  The
                # stores are small (one row per job), so the full check is
                # cheap relative to one simulation job.
                verdict = self._conn.execute(
                    "PRAGMA integrity_check"
                ).fetchone()[0]
                if verdict != "ok":
                    self._quarantine(f"integrity_check: {verdict}")
            self._conn.executescript(_TABLES)
        except sqlite3.DatabaseError as exc:
            # "file is not a database" and friends: quarantine, never a raw
            # sqlite3 traceback out of the constructor.
            self._quarantine(str(exc))
        self._commit()
        found = self.get_meta("store_schema")
        if found is None:
            self.set_meta("store_schema", str(STORE_SCHEMA_VERSION))
        else:
            self._migrate(found)

    def _quarantine(self, reason: str) -> None:
        """Move a corrupt database aside and refuse to open it.

        The rename frees ``self.path`` for a fresh store while preserving
        the damaged bytes (and their WAL/SHM sidecars — a stale WAL must
        never be replayed into a replacement database) for forensics.
        """
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:  # simlint: allow[swallowed-exception] — already corrupt
                pass
            self._conn = None
        quarantined = ""
        if self.path != ":memory:":
            target = f"{self.path}.corrupt"
            suffix = 0
            while Path(target).exists():
                suffix += 1
                target = f"{self.path}.corrupt-{suffix}"
            os.replace(self.path, target)
            for sidecar in (f"{self.path}-wal", f"{self.path}-shm"):
                if Path(sidecar).exists():
                    os.replace(sidecar, f"{target}{sidecar[len(self.path):]}")
            quarantined = target
        raise StoreCorruptError(
            f"{self.path}: store failed its opening integrity check "
            f"({reason}); quarantined to {quarantined or 'nowhere (in-memory)'}"
            " — resume from a fresh database",
            path=self.path,
            quarantined_to=quarantined,
        )

    def rollback(self) -> None:
        """Discard the open transaction (error paths and crash simulation)."""
        self._conn.rollback()

    def _commit(self) -> None:
        """Commit the open transaction, crash-safely.

        Every mutation in this module funnels through here: the chaos shim
        fires first (when armed), and a real ``sqlite3``/OS failure rolls
        the transaction back and surfaces as a structured
        :class:`~repro.errors.StoreIOError` — the connection stays usable,
        so the caller may retry the whole state transition.
        """
        hook = CHAOS_COMMIT_HOOK
        if hook is not None:
            hook(self)
        try:
            self._conn.commit()
        except (sqlite3.Error, OSError) as exc:
            try:
                self._conn.rollback()
            except sqlite3.Error:  # simlint: allow[swallowed-exception] — txn already dead
                pass
            raise StoreIOError(f"{self.path}: commit failed: {exc}") from exc

    def _migrate(self, found: str) -> None:
        """Upgrade an older on-disk schema in place, one step at a time.

        Each step is committed with its version bump in one transaction,
        so a crash mid-upgrade leaves a database some *complete* older
        version still recognizes.  Newer-than-supported schemas refuse.
        """
        try:
            version = int(found)
        except ValueError:
            version = -1
        while version < STORE_SCHEMA_VERSION:
            if version not in _MIGRATIONS:
                break
            self._conn.executescript(_MIGRATIONS[version])
            version += 1
            self._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'store_schema'",
                (str(version),),
            )
            self._commit()
        if version != STORE_SCHEMA_VERSION:
            raise ConfigError(
                f"{self.path}: campaign store schema {found} is not the "
                f"supported version {STORE_SCHEMA_VERSION} (a different "
                "version of repro wrote this database)"
            )

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- meta -----------------------------------------------------------
    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else row["value"]

    def set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta(key, value) VALUES(?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )
        self._commit()

    # -- campaign initialization ---------------------------------------
    def initialize(self, spec: CampaignSpec) -> bool:
        """Pin ``spec`` to this store and insert its job grid.

        Returns True when the store was empty (fresh campaign), False when
        it already held the same campaign (resume).  A store holding a
        *different* campaign raises: resuming must never silently mix
        grids, because job ids from the old grid would be skipped as
        "done" while meaning something else.
        """
        existing = self.get_meta("spec_hash")
        if existing is not None and existing != spec.spec_hash:
            raise ConfigError(
                f"{self.path} already holds campaign {existing} "
                f"(spec {self.get_meta('spec')}); refusing to reuse it for "
                f"campaign {spec.spec_hash} — pass a fresh --db or matching "
                "arguments"
            )
        fresh = existing is None
        if fresh:
            self.set_meta("spec_hash", spec.spec_hash)
            self.set_meta("spec", spec.to_json())
            self._conn.execute(
                "INSERT INTO meta(key, value) VALUES('created_at', datetime('now')) "
                "ON CONFLICT(key) DO NOTHING"
            )
        # INSERT OR IGNORE: on resume the grid is already there, and the
        # content-hashed primary key guarantees identity.
        self._conn.executemany(
            "INSERT OR IGNORE INTO jobs(job_id, eid, point_index, replicate, spec) "
            "VALUES(?, ?, ?, ?, ?)",
            [
                (job.job_id, job.eid, job.point_index, job.replicate, job.to_json())
                for job in spec.expand()
            ],
        )
        self._commit()
        return fresh

    def add_jobs(self, jobs: Sequence[JobSpec]) -> int:
        """Insert ad-hoc job rows (serve-daemon admission path).

        Unlike :meth:`initialize` this pins no campaign spec: the serve
        daemon grows its job set one submission at a time.  Rows that
        already exist (same content hash) are left untouched — a completed
        job stays ``done`` and becomes a cache hit.  Returns the number of
        rows actually inserted.
        """
        before = self._conn.total_changes
        self._conn.executemany(
            "INSERT OR IGNORE INTO jobs(job_id, eid, point_index, replicate, spec) "
            "VALUES(?, ?, ?, ?, ?)",
            [
                (job.job_id, job.eid, job.point_index, job.replicate, job.to_json())
                for job in jobs
            ],
        )
        self._commit()
        return self._conn.total_changes - before

    def requeue_one(self, job_id: str) -> bool:
        """Put one ``failed`` job back in the queue (fresh submission).

        Attempt counts are preserved — provenance, not punishment.  Returns
        True when the row was failed and is now pending again.
        """
        cur = self._conn.execute(
            "UPDATE jobs SET status = 'pending', error = NULL "
            "WHERE job_id = ? AND status = 'failed'",
            (job_id,),
        )
        self._commit()
        return cur.rowcount == 1

    def discard_pending(self, job_id: str) -> bool:
        """Delete a never-attempted ``pending`` row (admission rollback).

        Only rows with zero attempts qualify: a requeued failure carries
        provenance worth keeping, and anything past ``pending`` has been
        (or is being) executed.  Returns True when a row was deleted.
        """
        cur = self._conn.execute(
            "DELETE FROM jobs WHERE job_id = ? AND status = 'pending' "
            "AND attempts = 0",
            (job_id,),
        )
        self._commit()
        return cur.rowcount == 1

    def campaign_spec(self) -> CampaignSpec:
        text = self.get_meta("spec")
        if text is None:
            raise ConfigError(f"{self.path} holds no campaign spec (empty store?)")
        return CampaignSpec.from_json(text)

    # -- job transitions ------------------------------------------------
    def reset_running(self) -> int:
        """Re-queue jobs a crashed engine left ``running``; returns count."""
        cur = self._conn.execute(
            "UPDATE jobs SET status = 'pending', worker = NULL WHERE status = 'running'"
        )
        self._commit()
        return cur.rowcount

    def requeue_failed(self, max_attempts: int) -> int:
        """Re-queue ``failed`` jobs that still have attempts left."""
        cur = self._conn.execute(
            "UPDATE jobs SET status = 'pending', error = NULL "
            "WHERE status = 'failed' AND attempts < ?",
            (max_attempts,),
        )
        self._commit()
        return cur.rowcount

    def pending_jobs(self) -> List[JobRow]:
        """Every pending job, in deterministic (eid, replicate, point) order."""
        rows = self._conn.execute(
            "SELECT * FROM jobs WHERE status = 'pending' "
            "ORDER BY eid, replicate, point_index"
        ).fetchall()
        return [JobRow(r) for r in rows]

    def mark_running(self, job_id: str, worker: str) -> None:
        self._mark(
            job_id,
            "UPDATE jobs SET status = 'running', worker = ?, attempts = attempts + 1, "
            "started_at = datetime('now'), finished_at = NULL, error = NULL "
            "WHERE job_id = ?",
            (worker, job_id),
        )

    def mark_done(self, job_id: str, payload: dict, wall_s: float) -> None:
        """Commit a result.

        A ``_provenance`` key in ``payload`` (``{"engine": ...,
        "kernel_version": ...}``, attached by the worker-side executor) is
        *lifted out* into the provenance columns rather than stored: the
        canonical payload text stays byte-identical whichever engine
        computed it — the engines' bit-identity contract is what keeps a
        cached row valid — while the columns record which engine did.
        """
        provenance = payload.get("_provenance") or {}
        payload = {k: v for k, v in payload.items() if k != "_provenance"}
        self._mark(
            job_id,
            "UPDATE jobs SET status = 'done', payload = ?, wall_s = ?, "
            "engine = ?, kernel_version = ?, "
            "finished_at = datetime('now') WHERE job_id = ?",
            (
                json.dumps(payload, sort_keys=True),
                wall_s,
                provenance.get("engine"),
                provenance.get("kernel_version"),
                job_id,
            ),
        )

    def adopt_done(
        self,
        spec: JobSpec,
        payload_text: str,
        wall_s: Optional[float],
        engine: Optional[str] = None,
        kernel_version: Optional[str] = None,
    ) -> bool:
        """Commit a result computed elsewhere, verbatim (cluster tier).

        Unlike :meth:`mark_done` the payload is stored as the exact text
        given — never parsed and re-serialized — so a peer-filled or
        steal-completed row is byte-identical to the store that computed
        it.  Attempts are *not* incremented: this store did no work, and
        the audit's "computed at least once" check relies on attempt
        counts recording real executions.  Idempotent: an existing
        ``done`` row is left untouched (first copy wins).  Returns True
        when a row was created or promoted to ``done``.
        """
        row = self._conn.execute(
            "SELECT status FROM jobs WHERE job_id = ?", (spec.job_id,)
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO jobs(job_id, eid, point_index, replicate, spec, "
                "status, payload, wall_s, engine, kernel_version, finished_at) "
                "VALUES(?, ?, ?, ?, ?, 'done', ?, ?, ?, ?, datetime('now'))",
                (
                    spec.job_id,
                    spec.eid,
                    spec.point_index,
                    spec.replicate,
                    spec.to_json(),
                    payload_text,
                    wall_s,
                    engine,
                    kernel_version,
                ),
            )
            self._commit()
            return True
        if row["status"] == "done":
            return False
        self._conn.execute(
            "UPDATE jobs SET status = 'done', payload = ?, wall_s = ?, "
            "engine = ?, kernel_version = ?, error = NULL, "
            "finished_at = datetime('now') WHERE job_id = ?",
            (payload_text, wall_s, engine, kernel_version, spec.job_id),
        )
        self._commit()
        return True

    def mark_failed(
        self, job_id: str, error: str, wall_s: Optional[float], requeue: bool
    ) -> None:
        """Record a failure; ``requeue`` puts the job back in the queue."""
        status = "pending" if requeue else "failed"
        self._mark(
            job_id,
            "UPDATE jobs SET status = ?, error = ?, wall_s = ?, "
            "finished_at = datetime('now') WHERE job_id = ?",
            (status, error, wall_s, job_id),
        )

    def _mark(self, job_id: str, sql: str, params: Sequence) -> None:
        cur = self._conn.execute(sql, params)
        if cur.rowcount != 1:
            self._conn.rollback()
            raise ConfigError(f"unknown job id {job_id!r} in {self.path}")
        self._commit()

    # -- queries --------------------------------------------------------
    def get_job(self, job_id: str) -> JobRow:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ConfigError(f"unknown job id {job_id!r} in {self.path}")
        return JobRow(row)

    def counts(self) -> Dict[str, int]:
        """Job counts by status (all four statuses always present)."""
        tally = dict.fromkeys(_STATUSES, 0)
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
        ):
            tally[row["status"]] = row["n"]
        return tally

    def counts_by_eid(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for row in self._conn.execute(
            "SELECT eid, status, COUNT(*) AS n FROM jobs GROUP BY eid, status"
        ):
            out.setdefault(row["eid"], dict.fromkeys(_STATUSES, 0))[row["status"]] = row["n"]
        return out

    def eids(self) -> List[str]:
        rows = self._conn.execute("SELECT DISTINCT eid FROM jobs ORDER BY eid").fetchall()
        return [r["eid"] for r in rows]

    def jobs_for(self, eid: str, replicate: Optional[int] = None) -> List[JobRow]:
        """Jobs of one experiment, ordered by (replicate, point_index)."""
        if replicate is None:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE eid = ? ORDER BY replicate, point_index",
                (eid,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE eid = ? AND replicate = ? ORDER BY point_index",
                (eid, replicate),
            ).fetchall()
        return [JobRow(r) for r in rows]

    def all_jobs(self) -> List[JobRow]:
        rows = self._conn.execute(
            "SELECT * FROM jobs ORDER BY eid, replicate, point_index"
        ).fetchall()
        return [JobRow(r) for r in rows]

    def mean_wall_s(self) -> Optional[float]:
        """Mean per-job wall time over completed jobs (for ETA estimates)."""
        row = self._conn.execute(
            "SELECT AVG(wall_s) AS mean FROM jobs WHERE status = 'done' AND wall_s IS NOT NULL"
        ).fetchone()
        return None if row is None or row["mean"] is None else float(row["mean"])
