"""Performance-trajectory benchmarks (``python -m repro bench``).

The repo's simulators get faster (or slower) one PR at a time; this
package makes that trajectory a tracked artifact instead of folklore.
``bench run`` times the NoC cycle kernels and a small end-to-end
co-simulation under pinned seeds and writes a schema-versioned
``BENCH_noc.json``; ``bench compare`` diffs two such files and fails on
regression past a threshold — the CI contract.

Wall-clock readings are the *product* here, not a hazard, which is why
``bench/*`` sits on simlint's wall-clock allowlist.
"""

from .harness import (
    BENCH_FILENAME,
    BENCH_SCHEMA_VERSION,
    compare_bench,
    load_bench,
    run_bench,
    write_bench,
)

__all__ = [
    "BENCH_FILENAME",
    "BENCH_SCHEMA_VERSION",
    "compare_bench",
    "load_bench",
    "run_bench",
    "write_bench",
]
