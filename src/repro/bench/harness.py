"""Benchmark definitions, the ``BENCH_noc.json`` schema, and comparison.

Two benchmark families, all under pinned seeds:

* **cycle kernel** — the same deterministic traffic schedule driven
  through three NoC implementations on the 16x16 (256-router) mesh: the
  object-per-router reference loop (``oo_loop``), the single-simulation
  vectorized network (``simd_single``), and one lane of the batched
  engine (``batched``).  The headline derived metric,
  ``cycle_kernel_speedup``, is ``oo_loop`` wall time over ``batched``
  wall time.
* **end-to-end** — a full co-simulation through :func:`build_cosim`
  (``e2e_single``) and four same-shape co-simulations through the
  lockstep batch driver (``e2e_batch``), with the derived
  ``batch_efficiency`` = (lanes x single wall) / batch wall.

The document carries named *profiles* (``quick``, ``full``) because the
two workload sizes have different compute/overhead mixes and their ratios
are not mutually comparable; a full ``bench run`` measures both so the
committed baseline can gate quick CI runs like-for-like.

Comparison policy: absolute wall times are host-dependent, so ``bench
compare`` only *fails* on ratios measured within one file — a candidate
whose ``cycle_kernel_speedup`` drops more than ``threshold`` below the
baseline's (same profile) means the batched kernel regressed relative to
the reference loop on the same host.  Absolute throughput changes are
reported but advisory.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

from ..errors import ConfigError

__all__ = [
    "BENCH_FILENAME",
    "BENCH_SCHEMA_VERSION",
    "compare_bench",
    "load_bench",
    "run_bench",
    "write_bench",
]

BENCH_SCHEMA_VERSION = 1
BENCH_FILENAME = "BENCH_noc.json"

#: every benchmark derives its workload from this seed
PINNED_SEED = 42

#: cycle-kernel workload shape: (mesh side, cycles, packets per cycle)
_KERNEL_FULL = (16, 400, 16)
_KERNEL_QUICK = (16, 300, 16)

#: cycle-kernel timing repeats; the minimum wall time is reported
#: (standard microbenchmark practice — the min is the least noisy
#: estimate of the achievable time, which matters doubly here because
#: the regression gate is a ratio of two such times)
_KERNEL_REPEATS = 5

#: end-to-end lanes in the batch benchmark
_E2E_LANES = 4


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _traffic_schedule(
    num_nodes: int, cycles: int, per_cycle: int, seed: int
) -> List[Tuple[int, int, int, int]]:
    """A deterministic ``(cycle, src, dst, size)`` injection schedule."""
    rng = random.Random(seed)
    schedule: List[Tuple[int, int, int, int]] = []
    for cycle in range(cycles):
        for _ in range(per_cycle):
            src = rng.randrange(num_nodes)
            dst = rng.randrange(num_nodes)
            if dst == src:
                continue
            schedule.append((cycle, src, dst, rng.choice((1, 5))))
    return schedule


def _drive(network, schedule, cycles: int) -> Tuple[float, int]:
    """Inject the schedule cycle by cycle; returns (wall_s, delivered)."""
    from ..noc.packet import Packet

    index = 0
    delivered = 0
    start = time.perf_counter()
    for cycle in range(cycles):
        while index < len(schedule) and schedule[index][0] == cycle:
            _, src, dst, size = schedule[index]
            network.inject(
                Packet(
                    src=src, dst=dst, size_flits=size,
                    msg_class=0, inject_cycle=cycle,
                ),
                cycle,
            )
            index += 1
        network.step()
        delivered += len(network.pop_delivered())
    return time.perf_counter() - start, delivered


def _bench_cycle_kernels(quick: bool) -> Dict[str, Dict[str, Any]]:
    from ..engine.network import SimdBatch
    from ..noc.config import NocConfig
    from ..noc.network import CycleNetwork
    from ..noc.topology import Mesh
    from ..noc_gpu import SimdNetwork

    side, cycles, per_cycle = _KERNEL_QUICK if quick else _KERNEL_FULL
    topo = Mesh(side, side)
    noc = NocConfig()
    schedule = _traffic_schedule(topo.num_nodes, cycles, per_cycle, PINNED_SEED)

    out: Dict[str, Dict[str, Any]] = {}
    variants = (
        ("oo_loop", lambda: CycleNetwork(topo, noc)),
        ("simd_single", lambda: SimdNetwork(topo, noc)),
        ("batched", lambda: SimdBatch(topo, noc, lanes=1).lane(0)),
    )
    for name, make in variants:
        wall = None
        delivered = 0
        for _ in range(_KERNEL_REPEATS):
            repeat_wall, delivered = _drive(make(), schedule, cycles)
            wall = repeat_wall if wall is None else min(wall, repeat_wall)
        out[f"cycle_kernel_{name}"] = {
            "wall_s": wall,
            "cycles": cycles,
            "routers": topo.num_routers,
            "injections": len(schedule),
            "delivered": delivered,
            "cycles_per_s": cycles / wall if wall > 0 else 0.0,
        }
    return out


def _e2e_config(index: int, quick: bool):
    from ..core.config import TargetConfig
    from ..util import derive_seed

    return TargetConfig(
        width=4,
        height=4,
        app="water",
        seed=derive_seed(PINNED_SEED, "bench-e2e", index),
        scale=0.05 if quick else 0.2,
        network_model="simd",
        quantum=4,
    )


def _bench_e2e(quick: bool) -> Dict[str, Dict[str, Any]]:
    from ..core.config import build_cosim
    from ..engine.batch import run_cosim_batch

    out: Dict[str, Dict[str, Any]] = {}
    cosim = build_cosim(_e2e_config(0, quick), verify="off")
    start = time.perf_counter()
    result = cosim.run()
    single_wall = time.perf_counter() - start
    out["e2e_single"] = {
        "wall_s": single_wall,
        "finish_cycle": float(result.finish_cycle or 0),
        "deliveries": float(result.deliveries),
        "engine": cosim.engine_decision.name,
    }

    configs = [_e2e_config(i, quick) for i in range(_E2E_LANES)]
    start = time.perf_counter()
    batch = run_cosim_batch(configs, verify="off")
    batch_wall = time.perf_counter() - start
    out["e2e_batch"] = {
        "wall_s": batch_wall,
        "lanes": batch.lanes,
        "kernel_launches": batch.kernel_launches,
        "deliveries": float(sum(r.deliveries for r in batch.results)),
    }
    return out


# ----------------------------------------------------------------------
# The artifact
# ----------------------------------------------------------------------
def _run_profile(quick: bool) -> Dict[str, Any]:
    """One profile's benchmarks and derived ratios."""
    benchmarks: Dict[str, Dict[str, Any]] = {}
    benchmarks.update(_bench_cycle_kernels(quick))
    benchmarks.update(_bench_e2e(quick))

    oo = benchmarks["cycle_kernel_oo_loop"]["wall_s"]
    batched = benchmarks["cycle_kernel_batched"]["wall_s"]
    single = benchmarks["e2e_single"]["wall_s"]
    batch = benchmarks["e2e_batch"]["wall_s"]
    derived = {
        "cycle_kernel_speedup": oo / batched if batched > 0 else 0.0,
        "batch_efficiency": (
            _E2E_LANES * single / batch if batch > 0 else 0.0
        ),
    }
    return {"benchmarks": benchmarks, "derived": derived}


def run_bench(quick: bool = False) -> Dict[str, Any]:
    """Run the benchmarks; returns the ``BENCH_noc.json`` document.

    The quick and full workloads have different compute/overhead mixes,
    so their speedup ratios are *not* comparable across profiles — each
    profile is its own named section and ``compare`` only ever diffs a
    profile against the same profile.  A full ``bench run`` measures
    both (so the committed baseline can gate quick CI runs); ``--quick``
    measures only the quick profile.
    """
    from ..engine.api import KERNEL_VERSION

    profiles = {"quick": _run_profile(quick=True)}
    if not quick:
        profiles["full"] = _run_profile(quick=False)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kernel_version": KERNEL_VERSION,
        "pinned_seed": PINNED_SEED,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "profiles": profiles,
    }


def write_bench(document: Dict[str, Any], path: str) -> None:
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_bench(path: str) -> Dict[str, Any]:
    target = Path(path)
    if not target.exists():
        raise ConfigError(f"no benchmark file at {path}")
    try:
        document = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path} is not valid JSON: {exc}") from None
    schema = document.get("schema")
    if schema != BENCH_SCHEMA_VERSION:
        raise ConfigError(
            f"{path} has benchmark schema {schema!r}; "
            f"this library reads version {BENCH_SCHEMA_VERSION}"
        )
    return document


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _compare_profile(
    profile: str,
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    threshold: float,
) -> Tuple[bool, List[str]]:
    lines: List[str] = []
    ok = True

    base_speedup = baseline.get("derived", {}).get("cycle_kernel_speedup")
    cand_speedup = candidate.get("derived", {}).get("cycle_kernel_speedup")
    if base_speedup is None or cand_speedup is None:
        raise ConfigError(
            f"profile {profile!r} needs derived.cycle_kernel_speedup "
            "in both documents"
        )
    floor = base_speedup * (1.0 - threshold)
    verdict = "ok" if cand_speedup >= floor else "REGRESSION"
    if cand_speedup < floor:
        ok = False
    lines.append(
        f"[{profile}] cycle_kernel_speedup: baseline {base_speedup:.2f}x -> "
        f"candidate {cand_speedup:.2f}x (floor {floor:.2f}x) [{verdict}]"
    )

    base_eff = baseline.get("derived", {}).get("batch_efficiency")
    cand_eff = candidate.get("derived", {}).get("batch_efficiency")
    if base_eff is not None and cand_eff is not None:
        lines.append(
            f"[{profile}] batch_efficiency: baseline {base_eff:.2f} -> "
            f"candidate {cand_eff:.2f} [advisory]"
        )

    base_marks = baseline.get("benchmarks", {})
    cand_marks = candidate.get("benchmarks", {})
    for name in sorted(set(base_marks) & set(cand_marks)):
        old = base_marks[name].get("wall_s")
        new = cand_marks[name].get("wall_s")
        if not old or new is None:
            continue
        delta = (new - old) / old * 100.0
        lines.append(
            f"[{profile}] {name}: {old:.3f}s -> {new:.3f}s "
            f"({delta:+.0f}%) [advisory]"
        )
    return ok, lines


def compare_bench(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    threshold: float = 0.2,
) -> Tuple[bool, List[str]]:
    """Compare two benchmark documents; returns ``(ok, report lines)``.

    Every profile present in both documents is compared like-for-like.
    Failure is limited to within-host ratios (see the module docstring):
    a profile's ``cycle_kernel_speedup`` dropping more than ``threshold``
    below the baseline's.  Absolute wall-time changes are advisory.
    """
    if threshold <= 0:
        raise ConfigError(f"threshold must be > 0, got {threshold}")
    base_profiles = baseline.get("profiles", {})
    cand_profiles = candidate.get("profiles", {})
    shared = sorted(set(base_profiles) & set(cand_profiles))
    if not shared:
        raise ConfigError(
            "the documents share no benchmark profile "
            f"(baseline: {sorted(base_profiles)}, "
            f"candidate: {sorted(cand_profiles)})"
        )
    ok = True
    lines: List[str] = []
    for profile in shared:
        profile_ok, profile_lines = _compare_profile(
            profile, base_profiles[profile], cand_profiles[profile], threshold
        )
        ok = ok and profile_ok
        lines.extend(profile_lines)
    for profile in sorted(set(base_profiles) - set(cand_profiles)):
        lines.append(f"[{profile}] present in baseline only [advisory]")
    for profile in sorted(set(cand_profiles) - set(base_profiles)):
        lines.append(f"[{profile}] new in candidate [advisory]")
    return ok, lines
