"""``python -m repro bench`` — run and compare performance benchmarks.

Examples::

    python -m repro bench run                         # full, writes BENCH_noc.json
    python -m repro bench run --quick --out /tmp/b.json
    python -m repro bench compare BENCH_noc.json /tmp/b.json
    python -m repro bench compare BENCH_noc.json /tmp/b.json --threshold 0.1

``run`` executes every benchmark under pinned seeds and writes the
schema-versioned document; ``compare`` exits 1 when the candidate's
cycle-kernel speedup regresses more than the threshold below the
baseline's (absolute wall times are advisory — see
:mod:`repro.bench.harness`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ConfigError
from .harness import (
    BENCH_FILENAME,
    compare_bench,
    load_bench,
    run_bench,
    write_bench,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="NoC performance-trajectory benchmarks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run every benchmark, write the document")
    run.add_argument(
        "--quick", action="store_true",
        help="shrunken workloads (CI-sized; ratios stay comparable)",
    )
    run.add_argument(
        "--out", default=BENCH_FILENAME, metavar="PATH",
        help="where to write the document (default: %(default)s)",
    )

    compare = sub.add_parser(
        "compare", help="diff two documents; non-zero exit on regression"
    )
    compare.add_argument("baseline", help="committed baseline document")
    compare.add_argument("candidate", help="freshly measured document")
    compare.add_argument(
        "--threshold", type=float, default=0.2,
        help="allowed fractional drop in cycle-kernel speedup "
        "(default: %(default)s)",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    document = run_bench(quick=args.quick)
    write_bench(document, args.out)
    print(f"bench: wrote {args.out} (quick={args.quick})")
    for profile in sorted(document["profiles"]):
        section = document["profiles"][profile]
        for name in sorted(section["benchmarks"]):
            wall = section["benchmarks"][name]["wall_s"]
            print(f"  [{profile}] {name}: {wall:.3f}s")
        derived = section["derived"]
        print(
            f"  [{profile}] cycle_kernel_speedup: "
            f"{derived['cycle_kernel_speedup']:.2f}x"
        )
        print(f"  [{profile}] batch_efficiency: {derived['batch_efficiency']:.2f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ok, lines = compare_bench(
        load_bench(args.baseline),
        load_bench(args.candidate),
        threshold=args.threshold,
    )
    for line in lines:
        print(line)
    print("bench compare:", "ok" if ok else "regression detected")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        return _cmd_compare(args)
    except ConfigError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
