"""Small shared utilities: seeded RNG streams, validation, math helpers."""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Sequence

import numpy as np

from .errors import ConfigError

__all__ = [
    "Rng",
    "SerialCounter",
    "derive_seed",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "geometric_mean",
    "ewma",
    "clamp",
]


class Rng:
    """A named, seeded random stream.

    Every stochastic component in the library draws from its own ``Rng`` so
    that (a) runs are reproducible given a seed and (b) adding randomness to
    one component does not perturb another component's stream.  Streams are
    derived from a root seed and a string name using a stable hash, so the
    same ``(seed, name)`` pair always yields the same sequence.
    """

    def __init__(self, seed: int, name: str = "") -> None:
        self.seed = int(seed)
        self.name = name
        ss = np.random.SeedSequence(
            [self.seed, *(ord(c) for c in name)] if name else [self.seed]
        )
        self._gen = np.random.Generator(np.random.PCG64(ss))

    def child(self, name: str) -> "Rng":
        """Derive an independent stream for a sub-component."""
        return Rng(self.seed, f"{self.name}/{name}" if self.name else name)

    # Thin wrappers so call sites read naturally and stay swappable.
    def random(self) -> float:
        return float(self._gen.random())

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq: Sequence):
        return seq[self.randint(0, len(seq))]

    def geometric(self, p: float) -> int:
        """Number of trials until first success, support ``{1, 2, ...}``."""
        return int(self._gen.geometric(p))

    def shuffle(self, items: list) -> None:
        self._gen.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        return self.random() < p

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def zipf_index(self, n: int, s: float = 1.0) -> int:
        """Zipf-distributed index in ``[0, n)`` with exponent ``s``.

        Uses inverse-CDF sampling over the truncated Zipf distribution so
        the support is exactly ``[0, n)`` (NumPy's ``zipf`` is unbounded).
        """
        if n <= 0:
            raise ConfigError(f"zipf_index needs n >= 1, got {n}")
        if n == 1:
            return 0
        weights = np.arange(1, n + 1, dtype=float) ** -s
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        return int(np.searchsorted(cdf, self._gen.random()))


class SerialCounter:
    """A restorable serial-number source.

    Replaces module-level ``itertools.count()`` id generators wherever ids
    must survive checkpoint/restore: an ``itertools.count`` cannot report its
    position, so a restored process would re-issue ids already present in
    the snapshot.  ``state()``/``restore()`` let a checkpoint capture and
    reinstate the exact position.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = int(start)

    def next(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    __call__ = next

    def state(self) -> int:
        """The id the next call will return (snapshot this)."""
        return self._next

    def restore(self, state: int) -> None:
        self._next = int(state)


def derive_seed(root_seed: int, *parts) -> int:
    """Derive a child seed from a root seed and identifying parts.

    The derivation is a stable content hash (SHA-256 over the root seed and
    the ``str()`` of each part), so the same ``(root_seed, parts)`` always
    yields the same seed — across processes, platforms, and Python versions
    (unlike ``hash()``, which is salted per process).  Campaign workers use
    this to give every job an independent, reproducible seed: results depend
    only on the job's identity, never on which worker ran it or how many
    workers the pool had.

    Returns a non-negative 63-bit integer (safe for any seed consumer).
    """
    digest = hashlib.sha256(
        repr((int(root_seed),) + tuple(str(p) for p in parts)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def check_positive(value: float, name: str) -> None:
    """Raise :class:`ConfigError` unless ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def check_non_negative(value: float, name: str) -> None:
    """Raise :class:`ConfigError` unless ``value >= 0``."""
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value!r}")


def check_probability(value: float, name: str) -> None:
    """Raise :class:`ConfigError` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value!r}")


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 0 if any value is 0."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v < 0 for v in vals):
        raise ValueError("geometric_mean requires non-negative values")
    if any(v == 0 for v in vals):
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def ewma(current: float, sample: float, alpha: float) -> float:
    """One exponentially-weighted moving-average update step."""
    return (1.0 - alpha) * current + alpha * sample


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    return max(low, min(high, value))
