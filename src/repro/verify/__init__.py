"""repro.verify — configuration-level verification before any cycle runs.

A static-analysis pass over a *concrete configuration* (Topology x
RoutingFunction x VC allocation, plus the coherence-protocol tables) that
proves or refutes, before simulation starts:

* **network deadlock-freedom** — the extended channel-dependency graph
  (Dally & Seitz) is acyclic (:mod:`repro.verify.cdg`);
* **coherence-protocol safety** — SWMR, no unhandled transition, drain,
  and message-dependency acyclicity over the exhaustively enumerated
  small-N state space (:mod:`repro.verify.protocol`).

Entry points: ``python -m repro verify`` (:mod:`repro.verify.cli`) and the
warn-by-default gate :func:`verify_target_config` that
:func:`repro.core.config.build_cosim` calls on every construction.
Verification is memoized per process — one CDG per distinct (topology,
routing, VC) triple and one protocol enumeration per table set — so the
gate adds nothing to sweeps that rebuild the same configuration.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..noc.config import NocConfig
from ..noc.routing import make_routing
from ..noc.topology import Topology
from .cdg import CdgResult, build_cdg, check_network, find_cycle
from .fixtures import FullyAdaptiveMinimalRouting, broken_cache_table
from .protocol import check_message_dependencies, check_protocol
from .report import Finding, VerifyReport

__all__ = [
    "CdgResult",
    "Finding",
    "FullyAdaptiveMinimalRouting",
    "VerifyReport",
    "broken_cache_table",
    "build_cdg",
    "check_message_dependencies",
    "check_network",
    "check_protocol",
    "find_cycle",
    "verify_noc",
    "verify_protocol",
    "verify_target_config",
]

#: network models whose transport is a detailed (wormhole, credit-based)
#: network and can therefore deadlock; abstract latency models always sink.
DETAILED_NETWORK_MODELS = ("cycle", "simd", "table-shadow")

_network_cache: Dict[Tuple[str, str, int, str], VerifyReport] = {}
_protocol_cache: Dict[int, VerifyReport] = {}


def verify_noc(topo: Topology, routing_name: str, noc: NocConfig) -> VerifyReport:
    """Memoized :func:`check_network` keyed on what determines the CDG."""
    key = (repr(topo), routing_name, noc.num_vcs, noc.vc_select)
    report = _network_cache.get(key)
    if report is None:
        report = check_network(topo, make_routing(routing_name), noc)
        _network_cache[key] = report
    return report


def verify_protocol(num_cores: int = 2) -> VerifyReport:
    """Memoized :func:`check_protocol` for the shipped tables."""
    report = _protocol_cache.get(num_cores)
    if report is None:
        report = check_protocol(num_cores=num_cores)
        _protocol_cache[num_cores] = report
    return report


def verify_target_config(config, num_cores: int = 2) -> List[VerifyReport]:
    """Verify everything a :class:`~repro.core.config.TargetConfig` implies.

    Returns one report per checked subject: the network triple (only when
    the configured network model is a detailed one) and the coherence
    protocol.  Used as the pre-simulation gate by ``build_cosim``.
    """
    reports: List[VerifyReport] = []
    if config.network_model in DETAILED_NETWORK_MODELS:
        reports.append(
            verify_noc(config.make_topology(), config.routing, config.noc)
        )
    reports.append(verify_protocol(num_cores=num_cores))
    return reports
