"""Coherence-protocol safety: explicit-state model checking.

The checker exhaustively enumerates the reachable state space of the
directory protocol for one line, one home, and a small number of cachers
(the *small-N abstraction*: every documented race is between the home, at
most two requesters, and the messages between them, so N = 2..3 covers the
interesting interleavings while staying a few hundred thousand states).

The model mirrors the implementations in :mod:`repro.fullsys.directory`
and :mod:`repro.fullsys.core_model` operationally — same handler logic,
same MSHR/eviction-shadow bookkeeping — while the declarative tables in
:mod:`repro.fullsys.coherence` act as the specification.  Every message
consumption is validated against its table row: a reachable ``(state,
kind)`` pair with no row is an **unhandled transition** (with the message
interleaving that reaches it as the counterexample), and a handler that
emits outside its row's ``emits`` or lands outside ``next_states`` is a
**table mismatch**.

Deliveries are unordered (any in-flight message may arrive next), which
over-approximates every network the co-simulator can be configured with.

Checked properties:

* **SWMR** — no reachable state has a Modified copy coexisting with any
  other valid copy;
* **no unhandled transition** — as above, for home, cache, and memory
  tables;
* **drain** — from every reachable state, message-driven transitions alone
  can reach quiescence (no in-flight messages, home idle with an empty
  queue, no MSHRs or eviction shadows): every transient state empties;
* **message-dependency acyclicity** — the same-transaction message
  generation graph over kinds, and its projection onto the blocking waits
  of the directory (message classes), are acyclic, so no protocol-level
  deadlock can form from messages waiting on messages.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..fullsys.coherence import (
    BLOCKING_WAITS,
    BUSY_MEM,
    BUSY_RECALL,
    BUSY_UNBLOCK,
    CACHE_TABLE,
    DIRECTORY_TABLE,
    IDLE,
    MEMORY_READY,
    MEMORY_TABLE,
    CacheLabel,
    MessageKind,
    TransitionSpec,
    message_profile,
)
from ..noc.packet import MessageClass
from .report import Finding, VerifyReport

__all__ = [
    "check_protocol",
    "check_message_dependencies",
    "core_label",
]

# Agent addresses in the abstract model.
HOME = "H"
MEM = "MEM"

# Core eviction-shadow status.
EV_NONE = "none"
EV_SHADOW = "shadow"
EV_RECALLED = "recalled"

# L2 abstract states.
L2_ABSENT = "absent"
L2_VALID = "valid"
L2_DIRTY = "dirty"

#: request kinds that open a *new* transaction; excluded from the
#: same-transaction message-generation graph (they are rate-limited by MSHR
#: and eviction slots, and the blocking home consumes them unconditionally).
_NEW_TRANSACTION_KINDS = frozenset(
    (MessageKind.GETS, MessageKind.GETX, MessageKind.PUTM)
)

# A message: (kind, src, dst, requester, acks).
Msg = Tuple[str, object, object, int, int]
# A core: (base, mshr, evict); mshr is None or
# (requested_write, wants_write, deferred, data_received, acks_expected,
#  acks_received).
CoreState = Tuple[str, Optional[tuple], str]
# The home: (dir_state, owner, sharers, active, pending, l2).
HomeState = Tuple[str, Optional[int], FrozenSet[int], Optional[tuple], tuple, str]
# Global: (home, cores, msgs) with msgs a sorted ((msg, count), ...) tuple.
State = Tuple[HomeState, Tuple[CoreState, ...], tuple]

Table = Dict[Tuple[str, str], TransitionSpec]


class _CheckError(Exception):
    """A property violation hit while executing one transition."""

    def __init__(self, check: str, summary: str) -> None:
        super().__init__(summary)
        self.check = check
        self.summary = summary


# ---------------------------------------------------------------------------
# Labelling
# ---------------------------------------------------------------------------
def core_label(core: CoreState) -> str:
    """Map a concrete core state onto its :class:`CacheLabel`."""
    base, mshr, evict = core
    if mshr is None:
        if evict == EV_SHADOW:
            return CacheLabel.MI_A
        if evict == EV_RECALLED:
            return CacheLabel.II_A
        return base
    rw, _ww, deferred, datar, _acks_e, _acks_r = mshr
    if deferred:
        if evict == EV_RECALLED:
            return CacheLabel.IM_AD_DEF_R if rw else CacheLabel.IS_D_DEF_R
        return CacheLabel.IM_AD_DEF if rw else CacheLabel.IS_D_DEF
    if not rw:
        return CacheLabel.IS_D
    if base == CacheLabel.S:
        return CacheLabel.SM_A if datar else CacheLabel.SM_AD
    return CacheLabel.IM_A if datar else CacheLabel.IM_AD


def _validate(
    table: Table,
    agent: str,
    label: str,
    kind: str,
    emitted: Iterable[str],
    after: str,
) -> None:
    spec = table.get((label, kind))
    if spec is None:
        raise _CheckError(
            "unhandled-transition",
            f"{agent} has no transition for {kind} in state {label}",
        )
    extra = set(emitted) - set(spec.emits)
    if extra:
        raise _CheckError(
            "table-mismatch",
            f"{agent} handling {kind} in {label} emitted {sorted(extra)}, "
            f"which the table does not allow",
        )
    if after not in spec.next_states:
        raise _CheckError(
            "table-mismatch",
            f"{agent} handling {kind} in {label} reached {after}; the table "
            f"allows {sorted(spec.next_states)}",
        )


# ---------------------------------------------------------------------------
# Message multiset helpers
# ---------------------------------------------------------------------------
def _msgs_add(msgs: tuple, new: Iterable[Msg]) -> tuple:
    counts = dict(msgs)
    for m in new:
        counts[m] = counts.get(m, 0) + 1
    return tuple(sorted(counts.items()))


def _msgs_remove(msgs: tuple, victim: Msg) -> tuple:
    counts = dict(msgs)
    if counts[victim] == 1:
        del counts[victim]
    else:
        counts[victim] -= 1
    return tuple(sorted(counts.items()))


def _mk(kind: str, src, dst, requester: int, acks: int = 0) -> Msg:
    return (kind, src, dst, requester, acks)


def _msg_str(m: Msg) -> str:
    kind, src, dst, requester, acks = m
    extra = f", acks={acks}" if kind == MessageKind.DATA else ""
    return f"{kind} {src}->{dst} (req={requester}{extra})"


# ---------------------------------------------------------------------------
# Home executor (mirrors repro.fullsys.directory.HomeController)
# ---------------------------------------------------------------------------
def _complete_get(
    home: list, active: tuple, out: List[Msg], emitted: Set[str]
) -> None:
    kind, requester = active
    _state, owner, sharers, _active, _pending, l2 = home
    acks = 0
    if kind == MessageKind.GETS:
        sharers = sharers | {requester}
    else:
        targets = sorted(sharers - {requester})
        for t in targets:
            out.append(_mk(MessageKind.INV, HOME, t, requester))
            emitted.add(MessageKind.INV)
        acks = len(targets)
        sharers = frozenset()
        owner = requester
        if l2 != L2_ABSENT:
            l2 = L2_DIRTY
    out.append(_mk(MessageKind.DATA, HOME, requester, requester, acks))
    emitted.add(MessageKind.DATA)
    home[0] = BUSY_UNBLOCK
    home[1] = owner
    home[2] = sharers
    home[5] = l2


def _home_start(
    home: list,
    kind: str,
    src: int,
    requester: int,
    out: List[Msg],
    table: Table,
) -> None:
    """Mirror of ``HomeController._start`` + the dequeue loop."""
    emitted: Set[str] = set()
    if kind == MessageKind.PUTM:
        if home[1] == src:
            home[1] = None
            home[5] = L2_DIRTY
        out.append(_mk(MessageKind.PUT_ACK, HOME, src, requester))
        emitted.add(MessageKind.PUT_ACK)
        _validate(table, "home", IDLE, kind, emitted, IDLE)
        _next_transaction(home, out, table)
        return
    home[3] = (kind, requester)
    if home[1] is not None:
        home[0] = BUSY_RECALL
        recall = (
            MessageKind.RECALL_S if kind == MessageKind.GETS else MessageKind.RECALL_X
        )
        out.append(_mk(recall, HOME, home[1], requester))
        emitted.add(recall)
    elif home[5] == L2_ABSENT:
        home[0] = BUSY_MEM
        out.append(_mk(MessageKind.MEM_READ, HOME, MEM, requester))
        emitted.add(MessageKind.MEM_READ)
    else:
        _complete_get(home, (kind, requester), out, emitted)
    _validate(table, "home", IDLE, kind, emitted, home[0])


def _next_transaction(home: list, out: List[Msg], table: Table) -> None:
    home[0] = IDLE
    home[3] = None
    if home[4]:
        nxt, rest = home[4][0], home[4][1:]
        home[4] = rest
        _home_start(home, nxt[0], nxt[1], nxt[2], out, table)


def _home_deliver(
    home_t: HomeState, msg: Msg, table: Table
) -> Tuple[HomeState, List[Msg]]:
    home = list(home_t)
    kind, src, _dst, requester, _acks = msg
    out: List[Msg] = []
    label = home[0]
    if kind in (MessageKind.GETS, MessageKind.GETX, MessageKind.PUTM):
        if label != IDLE:
            home[4] = home[4] + ((kind, src, requester),)
            _validate(table, "home", label, kind, (), home[0])
        else:
            _home_start(home, kind, src, requester, out, table)
    elif kind == MessageKind.RECALL_DATA:
        if label != BUSY_RECALL or home[3] is None:
            _validate(table, "home", label, kind, (), label)
            raise _CheckError("protocol-error", f"home: stray {kind} in {label}")
        prev_owner = home[1]
        if prev_owner is None:
            raise _CheckError(
                "protocol-error", "home: recall data arrived with no recorded owner"
            )
        home[1] = None
        if home[3][0] == MessageKind.GETS:
            home[2] = home[2] | {prev_owner}
        home[5] = L2_DIRTY
        emitted: Set[str] = set()
        _complete_get(home, home[3], out, emitted)
        _validate(table, "home", label, kind, emitted, home[0])
    elif kind == MessageKind.MEM_DATA:
        if label != BUSY_MEM or home[3] is None:
            _validate(table, "home", label, kind, (), label)
            raise _CheckError("protocol-error", f"home: stray {kind} in {label}")
        home[5] = L2_VALID
        emitted = set()
        _complete_get(home, home[3], out, emitted)
        _validate(table, "home", label, kind, emitted, home[0])
    elif kind == MessageKind.UNBLOCK:
        if label != BUSY_UNBLOCK:
            _validate(table, "home", label, kind, (), label)
            raise _CheckError("protocol-error", f"home: stray {kind} in {label}")
        _validate(table, "home", label, kind, (), IDLE)
        _next_transaction(home, out, table)
    else:
        _validate(table, "home", label, kind, (), label)
        raise _CheckError("protocol-error", f"home: unexpected {kind}")
    return (home[0], home[1], home[2], home[3], home[4], home[5]), out


# ---------------------------------------------------------------------------
# Core executor (mirrors repro.fullsys.core_model.Core)
# ---------------------------------------------------------------------------
def _maybe_complete(
    core: list, core_id: int, out: List[Msg], emitted: Set[str]
) -> None:
    mshr = core[1]
    rw, ww, _deferred, datar, acks_e, acks_r = mshr
    if acks_e is None or not datar or acks_r < acks_e:
        core[1] = mshr
        return
    core[1] = None
    core[0] = CacheLabel.M if rw else CacheLabel.S
    out.append(_mk(MessageKind.UNBLOCK, core_id, HOME, core_id))
    emitted.add(MessageKind.UNBLOCK)
    if ww and not rw:
        # A store coalesced into the read miss: upgrade immediately.
        if core[2] != EV_NONE:
            raise _CheckError(
                "protocol-error",
                f"core {core_id}: upgrade issued while an eviction is in flight",
            )
        core[1] = (True, True, False, False, None, 0)
        out.append(_mk(MessageKind.GETX, core_id, HOME, core_id))
        emitted.add(MessageKind.GETX)


def _core_deliver(
    core_t: CoreState, core_id: int, msg: Msg, table: Table
) -> Tuple[CoreState, List[Msg]]:
    core = list(core_t)
    kind, src, _dst, requester, acks = msg
    label = core_label(core_t)
    out: List[Msg] = []
    emitted: Set[str] = set()
    if kind == MessageKind.DATA:
        if core[1] is None:
            _validate(table, f"core {core_id}", label, kind, (), label)
            raise _CheckError("protocol-error", f"core {core_id}: DATA without MSHR")
        rw, ww, deferred, _datar, _acks_e, acks_r = core[1]
        core[1] = (rw, ww, deferred, True, acks, acks_r)
        _maybe_complete(core, core_id, out, emitted)
    elif kind == MessageKind.INV_ACK:
        if core[1] is None:
            _validate(table, f"core {core_id}", label, kind, (), label)
            raise _CheckError(
                "protocol-error", f"core {core_id}: INV_ACK without MSHR"
            )
        rw, ww, deferred, datar, acks_e, acks_r = core[1]
        core[1] = (rw, ww, deferred, datar, acks_e, acks_r + 1)
        _maybe_complete(core, core_id, out, emitted)
    elif kind == MessageKind.INV:
        core[0] = CacheLabel.I
        out.append(_mk(MessageKind.INV_ACK, core_id, requester, requester))
        emitted.add(MessageKind.INV_ACK)
    elif kind in (MessageKind.RECALL_S, MessageKind.RECALL_X):
        if core[0] == CacheLabel.M:
            core[0] = (
                CacheLabel.S if kind == MessageKind.RECALL_S else CacheLabel.I
            )
        elif core[2] == EV_SHADOW:
            core[2] = EV_RECALLED
        else:
            _validate(table, f"core {core_id}", label, kind, (), label)
            raise _CheckError(
                "protocol-error",
                f"core {core_id}: recall for a line it does not own",
            )
        out.append(_mk(MessageKind.RECALL_DATA, core_id, src, requester))
        emitted.add(MessageKind.RECALL_DATA)
    elif kind == MessageKind.PUT_ACK:
        if core[2] == EV_NONE:
            _validate(table, f"core {core_id}", label, kind, (), label)
            raise _CheckError(
                "protocol-error", f"core {core_id}: PutAck while not evicting"
            )
        core[2] = EV_NONE
        if core[1] is not None and core[1][2]:
            rw, ww, _deferred, datar, acks_e, acks_r = core[1]
            core[1] = (rw, ww, False, datar, acks_e, acks_r)
            miss = MessageKind.GETX if rw else MessageKind.GETS
            out.append(_mk(miss, core_id, HOME, core_id))
            emitted.add(miss)
    else:
        _validate(table, f"core {core_id}", label, kind, (), label)
        raise _CheckError("protocol-error", f"core {core_id}: unexpected {kind}")
    after = core_label((core[0], core[1], core[2]))
    _validate(table, f"core {core_id}", label, kind, emitted, after)
    return (core[0], core[1], core[2]), out


def _mem_deliver(msg: Msg, table: Table) -> List[Msg]:
    kind, _src, _dst, requester, _acks = msg
    out: List[Msg] = []
    emitted: Set[str] = set()
    if kind == MessageKind.MEM_READ:
        out.append(_mk(MessageKind.MEM_DATA, MEM, HOME, requester))
        emitted.add(MessageKind.MEM_DATA)
    elif kind != MessageKind.MEM_WB:
        _validate(table, "memory", MEMORY_READY, kind, (), MEMORY_READY)
        raise _CheckError("protocol-error", f"memory: unexpected {kind}")
    _validate(table, "memory", MEMORY_READY, kind, emitted, MEMORY_READY)
    return out


# ---------------------------------------------------------------------------
# Spontaneous (non-message) transitions
# ---------------------------------------------------------------------------
def _spontaneous(state: State) -> List[Tuple[str, State]]:
    home, cores, msgs = state
    succs: List[Tuple[str, State]] = []

    def with_core(i: int, core: CoreState, extra: Iterable[Msg]) -> State:
        return (
            home,
            cores[:i] + (core,) + cores[i + 1 :],
            _msgs_add(msgs, extra),
        )

    for i, core in enumerate(cores):
        base, mshr, evict = core
        if mshr is None:
            if base == CacheLabel.I:
                for is_write, name in ((False, "load"), (True, "store")):
                    new_mshr = (is_write, is_write, evict != EV_NONE, False, None, 0)
                    sends: List[Msg] = []
                    if evict == EV_NONE:
                        kind = MessageKind.GETX if is_write else MessageKind.GETS
                        sends.append(_mk(kind, i, HOME, i))
                        action = f"core {i}: {name} miss ({kind} -> home)"
                    else:
                        action = f"core {i}: {name} miss deferred behind PutM"
                    succs.append(
                        (action, with_core(i, (base, new_mshr, evict), sends))
                    )
            elif base == CacheLabel.S:
                succs.append(
                    (
                        f"core {i}: upgrade store ({MessageKind.GETX} -> home)",
                        with_core(
                            i,
                            (base, (True, True, False, False, None, 0), evict),
                            [_mk(MessageKind.GETX, i, HOME, i)],
                        ),
                    )
                )
                succs.append(
                    (
                        f"core {i}: silent Shared drop",
                        with_core(i, (CacheLabel.I, None, evict), []),
                    )
                )
            elif base == CacheLabel.M:
                succs.append(
                    (
                        f"core {i}: evict Modified ({MessageKind.PUTM} -> home)",
                        with_core(
                            i,
                            (CacheLabel.I, None, EV_SHADOW),
                            [_mk(MessageKind.PUTM, i, HOME, i)],
                        ),
                    )
                )
        else:
            rw, ww, deferred, datar, acks_e, acks_r = mshr
            if not ww:
                # A store coalesces into the outstanding read miss; if the
                # request is still deferred it upgrades in place.
                new_rw = True if deferred else rw
                succs.append(
                    (
                        f"core {i}: store coalesces into outstanding miss",
                        with_core(
                            i,
                            (base, (new_rw, True, deferred, datar, acks_e, acks_r), evict),
                            [],
                        ),
                    )
                )
    # L2 capacity eviction at the home (a fill of some other line victimizes
    # this one): silent for clean lines, a memory writeback for dirty ones.
    # The writeback is absorbed at emission: memory consumes MemWB with no
    # response or state change, so keeping it in flight would only let its
    # multiplicity grow without bound (the state space must stay finite).
    # Its table row is validated once in check_protocol instead.
    dir_state, owner, sharers, active, pending, l2 = home
    if l2 == L2_VALID:
        succs.append(
            (
                "home: L2 drops clean copy",
                ((dir_state, owner, sharers, active, pending, L2_ABSENT), cores, msgs),
            )
        )
    elif l2 == L2_DIRTY:
        succs.append(
            (
                f"home: L2 drops dirty copy ({MessageKind.MEM_WB} -> memory, absorbed)",
                (
                    (dir_state, owner, sharers, active, pending, L2_ABSENT),
                    cores,
                    msgs,
                ),
            )
        )
    return succs


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------
def _initial_state(num_cores: int) -> State:
    home: HomeState = (IDLE, None, frozenset(), None, (), L2_ABSENT)
    cores = tuple((CacheLabel.I, None, EV_NONE) for _ in range(num_cores))
    return (home, cores, ())


def _is_quiescent(state: State) -> bool:
    home, cores, msgs = state
    if msgs:
        return False
    if home[0] != IDLE or home[4]:
        return False
    return all(mshr is None and evict == EV_NONE for _b, mshr, evict in cores)


def _swmr_violation(state: State) -> Optional[str]:
    bases = [core[0] for core in state[1]]
    owners = [i for i, b in enumerate(bases) if b == CacheLabel.M]
    if not owners:
        return None
    others = [
        i
        for i, b in enumerate(bases)
        if b in (CacheLabel.S, CacheLabel.M) and i != owners[0]
    ]
    if len(owners) > 1 or others:
        return (
            f"core {owners[0]} holds Modified while core(s) "
            f"{sorted(set(owners[1:]) | set(others))} hold a valid copy"
        )
    return None


def _describe_state(state: State) -> str:
    home, cores, msgs = state
    dir_state, owner, sharers, active, pending, l2 = home
    parts = [
        f"home: state={dir_state} owner={owner} sharers={sorted(sharers)} "
        f"queued={len(pending)} l2={l2}"
    ]
    for i, core in enumerate(cores):
        parts.append(f"core {i}: {core_label(core)}")
    if msgs:
        flight = ", ".join(
            _msg_str(m) + (f" x{n}" if n > 1 else "") for m, n in msgs
        )
        parts.append(f"in flight: {flight}")
    else:
        parts.append("in flight: (none)")
    return "\n".join(parts)


def _trace(
    parents: Dict[State, Optional[Tuple[State, str]]], state: State
) -> str:
    steps: List[str] = []
    cur: Optional[State] = state
    while cur is not None:
        link = parents[cur]
        if link is None:
            break
        cur, action = link
        steps.append(action)
    steps.reverse()
    lines = [f"{i + 1}. {s}" for i, s in enumerate(steps)]
    lines.append("reached:")
    lines.append(_describe_state(state))
    return "\n".join(lines)


def check_protocol(
    num_cores: int = 2,
    directory_table: Optional[Table] = None,
    cache_table: Optional[Table] = None,
    memory_table: Optional[Table] = None,
    max_states: int = 2_000_000,
    max_findings: int = 5,
) -> VerifyReport:
    """Enumerate the reachable protocol state space and check its safety.

    Alternative tables substitute the specification under test (used by the
    deliberately-broken fixtures); the executor semantics are always those
    of the shipped implementation.
    """
    dir_table = DIRECTORY_TABLE if directory_table is None else directory_table
    cch_table = CACHE_TABLE if cache_table is None else cache_table
    mem_table = MEMORY_TABLE if memory_table is None else memory_table
    subject = f"directory protocol (1 line, {num_cores} cachers, 1 home)"
    report = VerifyReport(subject=subject)

    # MemWB deliveries are absorbed at emission (see _spontaneous); its
    # specification row is checked here instead of during exploration.
    if (MEMORY_READY, MessageKind.MEM_WB) not in mem_table:
        report.findings.append(
            Finding(
                check="unhandled-transition",
                summary=(
                    f"memory has no transition for {MessageKind.MEM_WB} in "
                    f"state {MEMORY_READY}"
                ),
                details="emitted whenever the home's L2 drops a dirty copy",
            )
        )

    init = _initial_state(num_cores)
    parents: Dict[State, Optional[Tuple[State, str]]] = {init: None}
    queue: deque = deque([init])
    #: reverse delivery-only adjacency, for the drain check
    rev_delivery: Dict[State, List[State]] = {}
    quiescent: List[State] = [init]
    seen_findings: Set[Tuple[str, str]] = set()
    truncated = False

    def add_finding(check: str, summary: str, state: State, action: str) -> None:
        key = (check, summary)
        if key in seen_findings or len(report.findings) >= max_findings:
            return
        seen_findings.add(key)
        details = _trace(parents, state)
        if action:
            details = f"after: {action}\n{details}"
        report.findings.append(Finding(check=check, summary=summary, details=details))

    while queue:
        state = queue.popleft()
        home, cores, msgs = state

        successors: List[Tuple[str, State, bool]] = []
        for msg, _count in msgs:
            action = f"deliver {_msg_str(msg)}"
            kind, _src, dst, _requester, _acks = msg
            remaining = _msgs_remove(msgs, msg)
            try:
                if dst == HOME:
                    new_home, out = _home_deliver(home, msg, dir_table)
                    succ: State = (new_home, cores, _msgs_add(remaining, out))
                elif dst == MEM:
                    out = _mem_deliver(msg, mem_table)
                    succ = (home, cores, _msgs_add(remaining, out))
                else:
                    new_core, out = _core_deliver(
                        cores[dst], dst, msg, cch_table
                    )
                    succ = (
                        home,
                        cores[:dst] + (new_core,) + cores[dst + 1 :],
                        _msgs_add(remaining, out),
                    )
            except _CheckError as err:
                add_finding(err.check, err.summary, state, action)
                continue
            successors.append((action, succ, True))
        for action, succ in _spontaneous(state):
            successors.append((action, succ, False))

        for action, succ, is_delivery in successors:
            if is_delivery:
                rev_delivery.setdefault(succ, []).append(state)
            if succ in parents:
                continue
            if len(parents) >= max_states:
                truncated = True
                continue
            parents[succ] = (state, action)
            violation = _swmr_violation(succ)
            if violation is not None:
                add_finding("swmr", f"SWMR violated: {violation}", succ, "")
            if _is_quiescent(succ):
                quiescent.append(succ)
            queue.append(succ)

    explored = len(parents)
    if truncated:
        report.findings.append(
            Finding(
                check="state-space-limit",
                summary=(
                    f"exploration truncated at {max_states} states; results "
                    "are inconclusive (raise max_states)"
                ),
            )
        )

    # Drain: every reachable state must be able to reach quiescence through
    # message deliveries alone (reverse reachability from quiescent states).
    can_drain: Set[State] = set(quiescent)
    drain_queue = deque(quiescent)
    while drain_queue:
        s = drain_queue.popleft()
        for pred in rev_delivery.get(s, ()):
            if pred not in can_drain:
                can_drain.add(pred)
                drain_queue.append(pred)
    if not truncated and len(report.findings) == 0:
        stuck = [s for s in parents if s not in can_drain]
        if stuck:
            # Deterministic pick: the shallowest stuck state found first.
            state = stuck[0]
            report.findings.append(
                Finding(
                    check="drain",
                    summary=(
                        "a reachable state cannot drain to quiescence via "
                        "message deliveries alone (protocol deadlock)"
                    ),
                    details=_trace(parents, state),
                )
            )

    dep_report = check_message_dependencies(dir_table)
    report.merge(dep_report)

    if report.ok:
        labels = sorted({core_label(c) for s in parents for c in s[1]})
        report.certified.insert(
            0,
            f"SWMR holds over all {explored} reachable states "
            f"(cache states seen: {', '.join(labels)})",
        )
        report.certified.insert(
            1, "every reachable (state, message) pair has a transition table row"
        )
        report.certified.insert(
            2,
            "implementation mirror agrees with the tables (emissions and "
            "next-states)",
        )
        report.certified.insert(
            3, "every transient state drains: quiescence reachable from all states"
        )
    return report


def check_message_dependencies(
    directory_table: Optional[Table] = None,
) -> VerifyReport:
    """Acyclicity of the message-generation and blocking-wait graphs."""
    dir_table = DIRECTORY_TABLE if directory_table is None else directory_table
    report = VerifyReport(subject="message dependencies")

    # Same-transaction generation graph over kinds: processing K may emit
    # K' (new-transaction requests excluded — they start a fresh chain and
    # the blocking home consumes them unconditionally).
    gen: Dict[str, Set[str]] = {}
    for table in (dir_table, CACHE_TABLE, MEMORY_TABLE):
        for (_state, kind), spec in table.items():
            targets = set(spec.emits) - _NEW_TRANSACTION_KINDS
            if targets:
                gen.setdefault(kind, set()).update(targets)
    cycle = _find_str_cycle(gen)
    if cycle is not None:
        report.findings.append(
            Finding(
                check="message-cycle",
                summary="message-generation graph over kinds is cyclic",
                details=" -> ".join(cycle + [cycle[0]]),
            )
        )
    else:
        report.certified.append(
            "same-transaction message-generation graph (kinds) is acyclic"
        )

    # Blocking-wait graph over message classes: consuming class X moved the
    # home into a busy state that refuses progress until class Y arrives.
    waits: Dict[str, Set[str]] = {}
    names = MessageClass.NAMES
    for (state, kind), spec in dir_table.items():
        for nxt in spec.next_states:
            if nxt in BLOCKING_WAITS and nxt != state:
                src_cls = names[message_profile(kind)[0]]
                for waited in BLOCKING_WAITS[nxt]:
                    waits.setdefault(src_cls, set()).add(
                        names[message_profile(waited)[0]]
                    )
    cycle = _find_str_cycle(waits)
    if cycle is not None:
        report.findings.append(
            Finding(
                check="class-cycle",
                summary=(
                    "blocking-wait graph over message classes is cyclic "
                    "(protocol-level deadlock)"
                ),
                details=" -> ".join(cycle + [cycle[0]]),
            )
        )
    else:
        edges = ", ".join(
            f"{a}->{b}" for a in sorted(waits) for b in sorted(waits[a])
        )
        report.certified.append(
            f"blocking-wait graph over message classes is acyclic ({edges})"
        )
    return report


def _find_str_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    parent: Dict[str, str] = {}
    for root in sorted(graph):
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[str] = [root]
        while stack:
            node = stack[-1]
            if color.get(node, WHITE) == WHITE:
                color[node] = GRAY
                for succ in sorted(graph.get(node, ()), reverse=True):
                    c = color.get(succ, WHITE)
                    if c == GRAY:
                        cycle = [node]
                        cur = node
                        while cur != succ:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                    if c == WHITE:
                        parent[succ] = node
                        stack.append(succ)
            else:
                if color[node] == GRAY:
                    color[node] = BLACK
                stack.pop()
    return None
