"""Network deadlock-freedom: the extended channel-dependency graph.

Dally & Seitz: a routing function is deadlock-free on a network iff its
channel-dependency graph is acyclic.  With virtual channels the graph's
nodes are ``(channel, vc)`` pairs and there is an edge ``(c1, v1) ->
(c2, v2)`` whenever a packet that holds VC ``v1`` of channel ``c1`` may
wait for VC ``v2`` of channel ``c2``.  This module constructs that graph
*extended* with everything the runtime VC allocator actually does:

* the legal-VC sets of :func:`repro.noc.vcalloc.legal_output_vcs`
  (``any_free`` vs ``class_partition`` and the torus dateline halves), and
* the per-dimension dateline class a packet accumulates as it crosses wrap
  channels (mirroring :mod:`repro.noc.network`).

Rather than enumerating per-(src, dst) paths, the builder runs one forward
search per destination over ``(channel, dateline-bits)`` states seeded from
every source router — exact for the shipped routing functions (candidate
sets depend only on the current router and destination) and O(routers²)
overall, which keeps 512-router configurations tractable.

Acyclicity certifies deadlock freedom.  A cycle refutes the certificate and
is printed as a routed dependency chain: every edge carries a witness
destination so the counterexample reads as real traffic, not as abstract
graph nodes.

Two further refutations fall out of the same search:

* **turn violation** — a routing function whose :meth:`forbidden_turns`
  declaration is contradicted by its own candidate sets (the deadlock
  argument the code claims does not describe the code), and
* **no legal VC** — a reachable ``(channel, class)`` whose legal-VC set is
  empty, i.e. packets that reach it starve before any cycle forms (the
  1-VC torus dateline corner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..noc.config import NocConfig
from ..noc.packet import MessageClass
from ..noc.routing import RoutingFunction
from ..noc.topology import (
    LOCAL,
    PORT_NAMES,
    Topology,
    Torus,
    port_dimension,
)
from ..noc.vcalloc import legal_output_vcs
from .report import Finding, VerifyReport

__all__ = ["CdgResult", "build_cdg", "find_cycle", "check_network"]

#: a directed inter-router channel: (src_router, out_port)
Channel = Tuple[int, int]
#: one CDG node: (src_router, out_port, vc)
CdgNode = Tuple[int, int, int]


@dataclass
class CdgResult:
    """The extended channel-dependency graph plus search-time findings."""

    #: adjacency over (router, port, vc) nodes
    edges: Dict[CdgNode, Set[CdgNode]] = field(default_factory=dict)
    #: witness per (channel, channel) hop: (msg_class, dst_router)
    witnesses: Dict[Tuple[Channel, Channel], Tuple[int, int]] = field(
        default_factory=dict
    )
    #: turn-violation / no-legal-vc findings discovered during the search
    findings: List[Finding] = field(default_factory=list)

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self.edges.values())


def _channel_name(topo: Topology, channel: Channel) -> str:
    router, port = channel
    nbr = topo.neighbor(router, port)
    return f"{router}-{PORT_NAMES[port]}->{nbr}"


def build_cdg(
    topo: Topology,
    routing: RoutingFunction,
    num_vcs: int,
    vc_select: str = "any_free",
    msg_classes: Optional[Tuple[int, ...]] = None,
) -> CdgResult:
    """Construct the extended channel-dependency graph.

    ``msg_classes`` defaults to what can matter: a single class under
    ``any_free`` (the legal-VC set is class-independent) and every class
    under ``class_partition``.
    """
    if msg_classes is None:
        if vc_select == "class_partition":
            msg_classes = MessageClass.ALL
        else:
            msg_classes = (MessageClass.DATA,)
    dateline = isinstance(topo, Torus)
    result = CdgResult()
    # Dedup across destinations: a (channel, vcs) -> (channel, vcs) hop seen
    # for one destination produces the same VC-level edges for every other,
    # so the cross product is expanded only once per group.
    edge_groups: Dict[
        Tuple[Channel, FrozenSet[int], Channel, FrozenSet[int]],
        Tuple[int, int],
    ] = {}
    starved: Set[Tuple[Channel, int]] = set()
    turn_findings: Dict[Tuple[int, int, int], Tuple[int, int]] = {}

    def legal(channel: Channel, bits: Tuple[int, int], msg_class: int) -> Tuple[int, ...]:
        dclass = bits[port_dimension(channel[1])]
        return legal_output_vcs(
            vc_select, msg_class, num_vcs, dateline_active=dateline, dateline_class=dclass
        )

    for msg_class in msg_classes:
        for dst in topo.routers():
            # State: (channel about to be / just traversed, dateline bits the
            # packet held when it *requested* that channel).
            seen: Set[Tuple[Channel, Tuple[int, int]]] = set()
            stack: List[Tuple[Channel, Tuple[int, int]]] = []
            for src in topo.routers():
                if src == dst:
                    continue
                for port in routing.candidates(topo, src, dst):
                    if port == LOCAL:
                        continue
                    state = ((src, port), (0, 0))
                    if state not in seen:
                        seen.add(state)
                        stack.append(state)
            while stack:
                (channel, bits) = stack.pop()
                r1, p1 = channel
                vcs1 = legal(channel, bits, msg_class)
                if not vcs1 and (channel, msg_class) not in starved:
                    starved.add((channel, msg_class))
                    result.findings.append(
                        Finding(
                            check="no-legal-vc",
                            summary=(
                                f"channel {_channel_name(topo, channel)} has no "
                                f"legal output VC for class "
                                f"{MessageClass.NAMES[msg_class]} packets "
                                f"(dateline class {bits[port_dimension(p1)]}, "
                                f"{num_vcs} VC(s), policy {vc_select!r})"
                            ),
                            details=(
                                "Packets reaching this channel starve: the "
                                "dateline restriction leaves the VC candidate "
                                "list empty.  Increase num_vcs to >= 2 or "
                                "avoid wrap topologies at this VC count."
                            ),
                        )
                    )
                r2 = topo.neighbor(r1, p1)
                if r2 is None:  # pragma: no cover - routing off the edge
                    continue
                arrival = bits
                if dateline and topo.is_wrap_channel(r1, p1):
                    dim = port_dimension(p1)
                    arrival = (1, bits[1]) if dim == 0 else (bits[0], 1)
                if r2 == dst:
                    continue  # ejects; the LOCAL sink holds no channel
                forbidden = routing.forbidden_turns(topo, r2)
                for p2 in routing.candidates(topo, r2, dst):
                    if p2 == LOCAL:
                        continue
                    if (p1, p2) in forbidden and (r2, p1, p2) not in turn_findings:
                        turn_findings[(r2, p1, p2)] = (msg_class, dst)
                        result.findings.append(
                            Finding(
                                check="turn-violation",
                                summary=(
                                    f"{routing!r} declares turn "
                                    f"({PORT_NAMES[p1]} -> {PORT_NAMES[p2]}) "
                                    f"forbidden at router {r2} but routes it"
                                ),
                                details=(
                                    f"A packet for router {dst} arriving at "
                                    f"router {r2} travelling "
                                    f"{PORT_NAMES[p1]} is offered output "
                                    f"{PORT_NAMES[p2]}; the deadlock-freedom "
                                    "argument built on forbidden_turns() does "
                                    "not describe the implementation."
                                ),
                            )
                        )
                    nxt: Channel = (r2, p2)
                    vcs2 = legal(nxt, arrival, msg_class)
                    key = (channel, frozenset(vcs1), nxt, frozenset(vcs2))
                    if key not in edge_groups:
                        edge_groups[key] = (msg_class, dst)
                    state = (nxt, arrival)
                    if state not in seen:
                        seen.add(state)
                        stack.append(state)

    for (c1, vcs1, c2, vcs2), witness in edge_groups.items():
        result.witnesses.setdefault((c1, c2), witness)
        for v1 in vcs1:
            node1 = (c1[0], c1[1], v1)
            adj = result.edges.setdefault(node1, set())
            for v2 in vcs2:
                adj.add((c2[0], c2[1], v2))
    return result


def find_cycle(edges: Dict[CdgNode, Set[CdgNode]]) -> Optional[List[CdgNode]]:
    """One cycle of the dependency graph, or ``None`` when acyclic.

    Iterative three-color DFS (the graphs reach hundreds of thousands of
    edges on large tori; recursion would overflow).  Nodes are visited in
    sorted order so the reported counterexample is deterministic.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[CdgNode, int] = {}
    parent: Dict[CdgNode, CdgNode] = {}
    for root in sorted(edges):
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[CdgNode, Optional[CdgNode]]] = [(root, None)]
        while stack:
            node, pred = stack[-1]
            if color.get(node, WHITE) == WHITE:
                color[node] = GRAY
                if pred is not None:
                    parent[node] = pred
                for succ in sorted(edges.get(node, ()), reverse=True):
                    c = color.get(succ, WHITE)
                    if c == GRAY:
                        # Back edge: walk parents from node to succ.
                        cycle = [node]
                        cur = node
                        while cur != succ:
                            cur = parent[cur]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                    if c == WHITE:
                        stack.append((succ, node))
            else:
                if color[node] == GRAY:
                    color[node] = BLACK
                stack.pop()
    return None


def _render_cycle(
    topo: Topology, cycle: List[CdgNode], result: CdgResult
) -> str:
    lines = [
        f"dependency cycle over {len(cycle)} (channel, vc) resources; each "
        "held resource waits for the next and the last waits for the first:"
    ]
    n = len(cycle)
    for i, node in enumerate(cycle):
        r, p, v = node
        nxt = cycle[(i + 1) % n]
        witness = result.witnesses.get(((r, p), (nxt[0], nxt[1])))
        via = ""
        if witness is not None:
            msg_class, dst = witness
            via = (
                f"  [a {MessageClass.NAMES[msg_class]} packet routed to "
                f"router {dst} holds the former while requesting the latter]"
            )
        lines.append(
            f"  ({_channel_name(topo, (r, p))}, vc{v}) -> "
            f"({_channel_name(topo, (nxt[0], nxt[1]))}, vc{nxt[2]}){via}"
        )
    return "\n".join(lines)


def check_network(
    topo: Topology,
    routing: RoutingFunction,
    noc: Optional[NocConfig] = None,
    msg_classes: Optional[Tuple[int, ...]] = None,
) -> VerifyReport:
    """Certify or refute deadlock freedom for one Topology x Routing x NoC."""
    noc = noc or NocConfig()
    subject = (
        f"network {topo!r} routing={routing!r} num_vcs={noc.num_vcs} "
        f"vc_select={noc.vc_select}"
    )
    report = VerifyReport(subject=subject)
    result = build_cdg(
        topo, routing, noc.num_vcs, noc.vc_select, msg_classes=msg_classes
    )
    report.findings.extend(result.findings)
    cycle = find_cycle(result.edges)
    if cycle is not None:
        report.findings.append(
            Finding(
                check="cdg-cycle",
                summary=(
                    f"extended channel-dependency graph is cyclic "
                    f"({len(result.edges)} nodes, {result.num_edges} edges)"
                ),
                details=_render_cycle(topo, cycle, result),
            )
        )
    else:
        report.certified.append(
            f"deadlock-free: extended CDG acyclic "
            f"({len(result.edges)} nodes, {result.num_edges} edges)"
        )
        if not result.findings:
            report.certified.append(
                "every reachable (channel, class) has a non-empty legal VC set"
            )
            report.certified.append(
                "candidate routes respect the declared forbidden turns"
            )
    return report
