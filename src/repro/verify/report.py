"""Findings and reports for the configuration verifier.

Every check in :mod:`repro.verify` produces a :class:`VerifyReport`: the
list of properties it *certified* plus the list of :class:`Finding`
counterexamples for properties it refuted.  Reports render as text for the
CLI and as dictionaries for ``--format json`` / CI consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Finding", "VerifyReport"]


@dataclass(frozen=True)
class Finding:
    """One refuted property with its counterexample.

    Attributes:
        check: stable machine-readable identifier (e.g. ``cdg-cycle``,
            ``unhandled-transition``).
        summary: one-line human description.
        details: multi-line counterexample — a routed dependency cycle or a
            message-interleaving trace — already formatted for printing.
    """

    check: str
    summary: str
    details: str = ""

    def render(self) -> str:
        out = f"REFUTED [{self.check}] {self.summary}"
        if self.details:
            out += "\n" + "\n".join(
                "    " + line for line in self.details.splitlines()
            )
        return out

    def to_dict(self) -> Dict[str, str]:
        return {"check": self.check, "summary": self.summary, "details": self.details}


@dataclass
class VerifyReport:
    """Outcome of verifying one subject (a NoC triple or a protocol)."""

    subject: str
    certified: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def merge(self, other: "VerifyReport") -> None:
        self.certified.extend(other.certified)
        self.findings.extend(other.findings)

    def render(self) -> str:
        status = "OK" if self.ok else f"FAIL ({len(self.findings)} finding(s))"
        lines = [f"verify: {self.subject}: {status}"]
        for prop in self.certified:
            lines.append(f"  certified: {prop}")
        for finding in self.findings:
            lines.append("  " + finding.render().replace("\n", "\n  "))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "certified": list(self.certified),
            "findings": [f.to_dict() for f in self.findings],
        }
