"""Deliberately-broken configurations the verifier must refute.

These are the negative controls for :mod:`repro.verify`: a checker that
certifies everything certifies nothing, so the CLI's ``--self-test`` (and
the CI ``verify`` job) assert that each fixture here is *refuted* with a
printed counterexample.

* :class:`FullyAdaptiveMinimalRouting` — the textbook deadlock: offer every
  productive direction at every hop with no turn restriction.  Minimal and
  live under light load, but four packets can hold one buffer each around a
  mesh cycle and wait on the next.  The extended channel-dependency graph
  is cyclic already on a 2x2 mesh at 1 VC.
* :func:`broken_cache_table` — the shipped cache specification with the
  ``(S, Inv)`` row removed: the claim that a Shared copy is never
  invalidated.  Reachable in a handful of steps (one core reads, another
  writes), which the model checker prints as the message interleaving.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..fullsys.coherence import CACHE_TABLE, CacheLabel, MessageKind, TransitionSpec
from ..noc.routing import RoutingFunction
from ..noc.topology import EAST, LOCAL, NORTH, SOUTH, WEST, Topology

__all__ = ["FullyAdaptiveMinimalRouting", "broken_cache_table"]


class FullyAdaptiveMinimalRouting(RoutingFunction):
    """Unrestricted minimal-adaptive routing: every productive port, always.

    No turn model, no virtual-channel discipline — the classic example of a
    routing function that is minimal, reaches every destination, and still
    deadlocks.  Shipped only as a verifier fixture.
    """

    adaptive = True

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        x, y = topo.coords(router)
        dx_, dy_ = topo.coords(dst_router)
        dx = dx_ - x
        dy = dy_ - y
        ports: List[int] = []
        if dx > 0:
            ports.append(EAST)
        elif dx < 0:
            ports.append(WEST)
        if dy > 0:
            ports.append(NORTH)
        elif dy < 0:
            ports.append(SOUTH)
        return ports or [LOCAL]


def broken_cache_table() -> Dict[Tuple[str, str], TransitionSpec]:
    """The shipped cache table minus its ``(S, Inv)`` row.

    Removing the row asserts that a core in Shared never receives an
    invalidation — refuted by any reader/writer pair on the same line.
    """
    table = dict(CACHE_TABLE)
    del table[(CacheLabel.S, MessageKind.INV)]
    return table
