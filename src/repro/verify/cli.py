"""``python -m repro verify`` — certify configurations before simulating.

With no arguments the command verifies every distinctive shipped
configuration (:func:`repro.harness.experiments.shipped_target_configs`),
a routing matrix covering all four shipped routing functions on mesh and
torus topologies, and the coherence protocol for the small-N abstraction.
Positional arguments filter subjects by substring (e.g. ``odd-even``,
``protocol``, ``E6``).

Options:

``--strict``
    Stop at the first refuted subject instead of checking the rest.
``--self-test``
    Run the deliberately-broken fixtures (:mod:`repro.verify.fixtures`)
    and succeed only if the verifier *refutes* both with a printed
    counterexample — the negative control CI runs.
``--format json``
    Machine-readable reports for CI annotation.
``--cores N``
    Cachers in the protocol abstraction (default 2; 3 is minutes, not
    seconds).

Exit status is 0 when every checked subject certifies (or, under
``--self-test``, when every fixture is refuted), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, List, Optional, Tuple

from ..noc.config import NocConfig
from ..noc.topology import Mesh, Torus
from . import verify_noc, verify_protocol
from .cdg import check_network
from .fixtures import FullyAdaptiveMinimalRouting, broken_cache_table
from .protocol import check_protocol
from .report import VerifyReport

__all__ = ["main", "build_parser"]

_ROUTINGS = ("xy", "yx", "west-first", "odd-even")


def _routing_matrix() -> List[Tuple[str, Callable[[], VerifyReport]]]:
    """All four shipped routing functions on representative topologies."""
    subjects: List[Tuple[str, Callable[[], VerifyReport]]] = []
    for routing in _ROUTINGS:
        for topo in (Mesh(4, 4), Mesh(8, 8)):
            label = f"routing matrix: {routing} on {topo!r}"
            subjects.append(
                (
                    label,
                    lambda t=topo, r=routing: verify_noc(t, r, NocConfig()),
                )
            )
    # Dimension-ordered routings on tori exercise the dateline machinery
    # at the shipped VC count and with class partitioning.
    for routing in ("xy", "yx"):
        for noc in (NocConfig(), NocConfig(vc_select="class_partition")):
            label = (
                f"routing matrix: {routing} on Torus(4, 4) "
                f"vc_select={noc.vc_select}"
            )
            subjects.append(
                (
                    label,
                    lambda r=routing, n=noc: verify_noc(Torus(4, 4), r, n),
                )
            )
    return subjects


def _default_subjects(
    num_cores: int,
) -> List[Tuple[str, Callable[[], VerifyReport]]]:
    from ..harness.experiments import shipped_target_configs  # deferred: heavy

    subjects: List[Tuple[str, Callable[[], VerifyReport]]] = []
    for label, config in shipped_target_configs():
        if config.network_model in ("cycle", "simd", "table-shadow"):
            subjects.append(
                (
                    f"shipped config {label}",
                    lambda c=config: verify_noc(
                        c.make_topology(), c.routing, c.noc
                    ),
                )
            )
    subjects.extend(_routing_matrix())
    subjects.append(
        (
            "coherence protocol",
            lambda: verify_protocol(num_cores=num_cores),
        )
    )
    return subjects


def _run_self_test(fmt: str) -> int:
    """Negative controls: both broken fixtures must be refuted."""
    net_report = check_network(
        Mesh(2, 2), FullyAdaptiveMinimalRouting(), NocConfig(num_vcs=1)
    )
    proto_report = check_protocol(num_cores=2, cache_table=broken_cache_table())
    refuted_net = any(f.check == "cdg-cycle" for f in net_report.findings)
    refuted_proto = any(
        f.check == "unhandled-transition" for f in proto_report.findings
    )
    ok = refuted_net and refuted_proto
    if fmt == "json":
        print(
            json.dumps(
                {
                    "self_test": True,
                    "ok": ok,
                    "reports": [net_report.to_dict(), proto_report.to_dict()],
                },
                indent=2,
            )
        )
        return 0 if ok else 1
    print(net_report.render())
    print()
    print(proto_report.render())
    print()
    if ok:
        print(
            "verify --self-test: OK (both broken fixtures refuted with "
            "counterexamples)"
        )
        return 0
    missing = []
    if not refuted_net:
        missing.append("fully-adaptive routing fixture was NOT refuted")
    if not refuted_proto:
        missing.append("broken protocol-table fixture was NOT refuted")
    print("verify --self-test: FAIL: " + "; ".join(missing))
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="Prove or refute deadlock-freedom and protocol safety "
        "for concrete configurations, before any cycle is simulated.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="substring filters over subject labels (default: verify "
        "everything shipped)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="stop at the first refuted subject",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check that the deliberately-broken fixtures are refuted",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=2,
        help="cachers in the protocol small-N abstraction (default 2)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.self_test:
        return _run_self_test(args.format)

    subjects = _default_subjects(args.cores)
    if args.targets:
        wanted = [t.lower() for t in args.targets]
        subjects = [
            (label, thunk)
            for label, thunk in subjects
            if any(w in label.lower() for w in wanted)
        ]
        if not subjects:
            print(f"verify: no subject matches {args.targets}", file=sys.stderr)
            return 2

    reports: List[Tuple[str, VerifyReport]] = []
    failed = 0
    for label, thunk in subjects:
        report = thunk()
        reports.append((label, report))
        if not report.ok:
            failed += 1
            if args.strict:
                break

    if args.format == "json":
        print(
            json.dumps(
                {
                    "ok": failed == 0,
                    "reports": [
                        dict(r.to_dict(), label=label) for label, r in reports
                    ],
                },
                indent=2,
            )
        )
    else:
        for label, report in reports:
            print(report.render())
        print()
        if failed:
            print(
                f"verify: {failed}/{len(reports)} subject(s) REFUTED, "
                f"{len(reports) - failed} certified"
            )
        else:
            print(f"verify: all {len(reports)} subject(s) certified")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
