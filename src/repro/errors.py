"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""


class TopologyError(ReproError):
    """A topology query referenced a router, node, or port that does not exist."""


class RoutingError(ReproError):
    """A routing function could not produce a legal output port."""


class ProtocolError(ReproError):
    """The coherence protocol reached a state it should never reach.

    Raised instead of silently corrupting simulation state; it always
    indicates a bug in the protocol tables, not a user mistake.
    """


class SimulationError(ReproError):
    """A simulator was driven in an unsupported way (e.g. stepping backwards)."""


class InvariantError(SimulationError):
    """A runtime invariant check failed (see :mod:`repro.analysis.invariants`).

    Raised when a co-simulation run violates message conservation,
    time monotonicity, or NoC credit/VC conservation — always a bug in
    the simulator or a model, never a user mistake.
    """


class WorkloadError(ReproError):
    """A workload description is malformed or exhausted unexpectedly."""


class StallError(SimulationError):
    """A simulation stopped making forward progress (stall or livelock).

    Raised by the resilience watchdog (:mod:`repro.resilience.watchdog`) and
    by ``drain`` paths when a cycle cap is hit.  Carries a structured
    diagnostic dump (``diagnostics``) describing per-router VC occupancy,
    the oldest in-flight packet, and the invariant-checker summary, so a
    stalled job fails loudly with evidence instead of burning its whole
    wall-clock timeout budget.
    """

    def __init__(self, message: str, diagnostics: object = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class FaultError(ReproError):
    """A fault schedule is unsatisfiable or degradation cannot preserve safety.

    Raised when a requested fault schedule would partition the network (and
    partitions were not explicitly allowed) or when the degraded routing
    function fails the channel-dependency-graph re-check.
    """


class ServeError(ReproError):
    """A simulation-service request failed (daemon side or client side).

    Carries the HTTP status code the daemon answered with (0 when the
    failure happened before a response arrived, e.g. connection refused).
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class BackpressureError(ServeError):
    """The daemon refused a submission because its queue is full.

    ``retry_after_s`` is the daemon's own estimate of when capacity will
    free up (the ``Retry-After`` header); clients should back off at least
    that long before resubmitting.
    """

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message, status=429)
        self.retry_after_s = retry_after_s


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or safely restored.

    Raised on content-hash mismatch (corrupt snapshot), version skew, or an
    attempt to restore a checkpoint into a different configuration than the
    one that produced it.
    """
