"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""


class TopologyError(ReproError):
    """A topology query referenced a router, node, or port that does not exist."""


class RoutingError(ReproError):
    """A routing function could not produce a legal output port."""


class ProtocolError(ReproError):
    """The coherence protocol reached a state it should never reach.

    Raised instead of silently corrupting simulation state; it always
    indicates a bug in the protocol tables, not a user mistake.
    """


class SimulationError(ReproError):
    """A simulator was driven in an unsupported way (e.g. stepping backwards)."""


class InvariantError(SimulationError):
    """A runtime invariant check failed (see :mod:`repro.analysis.invariants`).

    Raised when a co-simulation run violates message conservation,
    time monotonicity, or NoC credit/VC conservation — always a bug in
    the simulator or a model, never a user mistake.
    """


class WorkloadError(ReproError):
    """A workload description is malformed or exhausted unexpectedly."""


class StallError(SimulationError):
    """A simulation stopped making forward progress (stall or livelock).

    Raised by the resilience watchdog (:mod:`repro.resilience.watchdog`) and
    by ``drain`` paths when a cycle cap is hit.  Carries a structured
    diagnostic dump (``diagnostics``) describing per-router VC occupancy,
    the oldest in-flight packet, and the invariant-checker summary, so a
    stalled job fails loudly with evidence instead of burning its whole
    wall-clock timeout budget.
    """

    def __init__(self, message: str, diagnostics: object = None) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class FaultError(ReproError):
    """A fault schedule is unsatisfiable or degradation cannot preserve safety.

    Raised when a requested fault schedule would partition the network (and
    partitions were not explicitly allowed) or when the degraded routing
    function fails the channel-dependency-graph re-check.
    """


class ServeError(ReproError):
    """A simulation-service request failed (daemon side or client side).

    Carries the HTTP status code the daemon answered with (0 when the
    failure happened before a response arrived, e.g. connection refused).
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class BackpressureError(ServeError):
    """The daemon refused a submission because its queue is full.

    ``retry_after_s`` is the daemon's own estimate of when capacity will
    free up (the ``Retry-After`` header); clients should back off at least
    that long before resubmitting.
    """

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message, status=429)
        self.retry_after_s = retry_after_s


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or safely restored.

    Raised on content-hash mismatch (corrupt snapshot), version skew, or an
    attempt to restore a checkpoint into a different configuration than the
    one that produced it.
    """


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed content verification *before* deserializing.

    Raised when the recorded SHA-256 does not match the body bytes, or the
    file is truncated/garbled — i.e. a torn write.  Distinct from plain
    :class:`CheckpointError` (version skew, wrong configuration) because the
    safe reaction differs: a torn snapshot is discarded and the run restarts
    from cycle 0, whereas skew/config mismatches are caller bugs.
    """


class StoreIOError(ReproError):
    """The campaign result store could not durably commit a transaction.

    Wraps the underlying ``sqlite3``/``OSError`` (disk full, I/O error,
    database locked beyond the busy timeout).  The transaction has been
    rolled back; the connection remains usable, so callers may retry the
    whole state transition.
    """


class StoreCorruptError(ReproError):
    """The campaign result store failed its opening integrity check.

    The damaged file has been quarantined (renamed aside, path in
    ``quarantined_to``) so no writer can extend a corrupt database and no
    resume can trust rows from one; the original path is free for a fresh
    store.
    """

    def __init__(self, message: str, path: str = "", quarantined_to: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.quarantined_to = quarantined_to


class ClusterError(ServeError):
    """A cluster-level operation failed (ring, membership, or peer RPC).

    A :class:`ServeError` subtype: the cluster is the multi-node face of
    the serve layer, and callers that already handle serve failures get
    cluster failures for free.
    """


class ChaosError(ReproError):
    """A chaos schedule is invalid or an audit could not be carried out.

    Configuration mistakes (negative counts, unknown crash points) and
    audit-harness failures (component would not restart within budget)
    raise this; *audit verdicts* do not — a failed audit is a report, not
    an exception.
    """


class ChaosCrash(BaseException):
    """A simulated process death injected by :mod:`repro.chaos`.

    Deliberately **not** a :class:`ReproError` — not even an
    :class:`Exception` — because a crash is not a condition to handle:
    generic ``except Exception`` recovery paths must not swallow it, exactly
    as they could not swallow a real SIGKILL.  Only chaos-aware restart
    harnesses (the audit loop, the scheduler's crash latch) may catch it,
    and their reaction must be "the component died; restart it", never
    "carry on".
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"chaos: simulated crash at {point}")
        self.point = point
