"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""


class TopologyError(ReproError):
    """A topology query referenced a router, node, or port that does not exist."""


class RoutingError(ReproError):
    """A routing function could not produce a legal output port."""


class ProtocolError(ReproError):
    """The coherence protocol reached a state it should never reach.

    Raised instead of silently corrupting simulation state; it always
    indicates a bug in the protocol tables, not a user mistake.
    """


class SimulationError(ReproError):
    """A simulator was driven in an unsupported way (e.g. stepping backwards)."""


class InvariantError(SimulationError):
    """A runtime invariant check failed (see :mod:`repro.analysis.invariants`).

    Raised when a co-simulation run violates message conservation,
    time monotonicity, or NoC credit/VC conservation — always a bug in
    the simulator or a model, never a user mistake.
    """


class WorkloadError(ReproError):
    """A workload description is malformed or exhausted unexpectedly."""
