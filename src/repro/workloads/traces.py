"""Message traces: record, save, load, replay.

Traces connect the two simulation styles the paper contrasts:

* :class:`TraceRecorder` wraps a full-system transport and logs every
  network message — capturing traffic *in context*.
* :class:`TraceInjector` replays a trace into a network simulator in open
  loop (timestamps fixed, no feedback), and
  :func:`matched_load_synthetic` reduces a trace to per-node average rates —
  the two classic *vacuum* methodologies experiment E2 evaluates.

The on-disk format is one whitespace-separated record per line:
``cycle src dst size_flits msg_class``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List

from ..errors import WorkloadError
from ..noc.packet import Packet
from ..noc.topology import Topology
from ..util import Rng

__all__ = [
    "TraceRecord",
    "TraceRecorder",
    "TraceInjector",
    "save_trace",
    "load_trace",
    "matched_load_synthetic",
]


@dataclass(frozen=True)
class TraceRecord:
    """One network message, as observed at its source."""

    cycle: int
    src: int
    dst: int
    size_flits: int
    msg_class: int

    def to_packet(self, cycle_offset: int = 0) -> Packet:
        return Packet(
            src=self.src,
            dst=self.dst,
            size_flits=self.size_flits,
            msg_class=self.msg_class,
            inject_cycle=self.cycle + cycle_offset,
        )


class TraceRecorder:
    """Transport decorator that logs messages before forwarding them."""

    def __init__(self, inner: Callable) -> None:
        self.inner = inner
        self.records: List[TraceRecord] = []

    def __call__(self, msg) -> None:
        self.records.append(
            TraceRecord(
                cycle=msg.created_cycle,
                src=msg.src,
                dst=msg.dst,
                size_flits=msg.size_flits,
                msg_class=msg.msg_class,
            )
        )
        self.inner(msg)

    @property
    def duration(self) -> int:
        return self.records[-1].cycle - self.records[0].cycle if self.records else 0


class TraceInjector:
    """Open-loop replay of a trace into a network simulator."""

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        self.records = sorted(records, key=lambda r: r.cycle)
        if not self.records:
            raise WorkloadError("cannot replay an empty trace")

    def drive(self, network, drain: bool = True) -> List[Packet]:
        """Inject every record at its timestamp; returns the packets."""
        packets = []
        base = self.records[0].cycle
        for record in self.records:
            packet = record.to_packet(cycle_offset=network.cycle - base)
            network.inject(packet, cycle=packet.inject_cycle)
            packets.append(packet)
        end = self.records[-1].cycle - base + network.cycle
        while network.cycle <= end:
            network.step()
        if drain:
            network.drain()
        return packets


def save_trace(records: Iterable[TraceRecord], path: str | Path) -> None:
    """Write records in the line format described in the module docstring."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# cycle src dst size_flits msg_class\n")
        for r in records:
            fh.write(f"{r.cycle} {r.src} {r.dst} {r.size_flits} {r.msg_class}\n")


def load_trace(path: str | Path) -> List[TraceRecord]:
    """Read a trace written by :func:`save_trace`."""
    records: List[TraceRecord] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 5:
                raise WorkloadError(f"{path}:{lineno}: expected 5 fields, got {line!r}")
            cycle, src, dst, size, cls = (int(p) for p in parts)
            records.append(TraceRecord(cycle, src, dst, size, cls))
    return records


def matched_load_synthetic(
    records: List[TraceRecord],
    topo: Topology,
    seed: int = 1,
):
    """The vacuum baseline: Bernoulli traffic matching a trace's averages.

    Produces a generator object with the same ``packets_for_cycle`` surface
    as :class:`~repro.workloads.synthetic.SyntheticTraffic`, whose per-node
    injection rate, mean packet size, and destination mix equal the trace's
    long-run averages — but with all temporal structure (bursts, phases,
    request-response causality) destroyed.
    """
    if not records:
        raise WorkloadError("cannot match an empty trace")
    duration = max(1, records[-1].cycle - records[0].cycle + 1)
    per_node: Dict[int, List[TraceRecord]] = {}
    for r in records:
        per_node.setdefault(r.src, []).append(r)
    return _MatchedLoad(per_node, duration, topo, seed)


class _MatchedLoad:
    """Implementation of :func:`matched_load_synthetic`."""

    def __init__(
        self,
        per_node: Dict[int, List[TraceRecord]],
        duration: int,
        topo: Topology,
        seed: int,
    ) -> None:
        self.topo = topo
        self.duration = duration
        self.rng = Rng(seed, "matched-load")
        self.rates = {node: len(recs) / duration for node, recs in per_node.items()}
        self._samples = per_node  # destination/size distribution = resample
        self.generated = 0

    def packets_for_cycle(self, cycle: int) -> List[Packet]:
        packets: List[Packet] = []
        for node, rate in self.rates.items():
            if not self.rng.bernoulli(min(1.0, rate)):
                continue
            sample = self._samples[node][self.rng.randint(0, len(self._samples[node]))]
            if sample.dst == node:
                continue
            packets.append(
                Packet(
                    src=node,
                    dst=sample.dst,
                    size_flits=sample.size_flits,
                    msg_class=sample.msg_class,
                    inject_cycle=cycle,
                )
            )
            self.generated += 1
        return packets

    def drive(self, network, cycles: int, drain: bool = True) -> None:
        for _ in range(cycles):
            for packet in self.packets_for_cycle(network.cycle):
                network.inject(packet)
            network.step()
        if drain:
            network.drain()
