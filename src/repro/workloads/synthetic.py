"""Synthetic traffic patterns for driving a network in isolation.

These are the standard NoC evaluation patterns (uniform random, transpose,
bit-complement, shuffle, tornado, neighbor, hotspot).  Isolated synthetic
injection is exactly the *vacuum* methodology the paper criticizes — we
implement it both as the E1 validation driver and as the E2 baseline whose
inaccuracy reciprocal abstraction removes.

Destination patterns are pure functions; :class:`SyntheticTraffic` wraps one
with an open-loop Bernoulli injection process.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ConfigError, WorkloadError
from ..noc.packet import MessageClass, Packet
from ..noc.topology import Topology
from ..util import Rng, check_probability

__all__ = [
    "uniform_random",
    "transpose",
    "bit_complement",
    "bit_reverse",
    "shuffle",
    "tornado",
    "neighbor",
    "make_pattern",
    "SyntheticTraffic",
]


def _require_power_of_two(n: int, pattern: str) -> int:
    bits = n.bit_length() - 1
    if 1 << bits != n:
        raise WorkloadError(f"{pattern} needs a power-of-two node count, got {n}")
    return bits


def uniform_random(src: int, topo: Topology, rng: Rng) -> int:
    """Uniformly random destination, excluding the source."""
    dst = rng.randint(0, topo.num_nodes - 1)
    return dst if dst < src else dst + 1


def transpose(src: int, topo: Topology, rng: Rng) -> Optional[int]:
    """(x, y) -> (y, x); meaningful on square grids."""
    if topo.width != topo.height or topo.concentration != 1:
        raise WorkloadError("transpose needs a square, non-concentrated grid")
    x, y = topo.coords(src)
    dst = topo.router_at(y, x)
    return None if dst == src else dst


def bit_complement(src: int, topo: Topology, rng: Rng) -> Optional[int]:
    """Destination is the bitwise complement of the source index."""
    bits = _require_power_of_two(topo.num_nodes, "bit_complement")
    dst = ~src & ((1 << bits) - 1)
    return None if dst == src else dst


def bit_reverse(src: int, topo: Topology, rng: Rng) -> Optional[int]:
    """Destination is the bit-reversed source index."""
    bits = _require_power_of_two(topo.num_nodes, "bit_reverse")
    dst = int(format(src, f"0{bits}b")[::-1], 2) if bits else 0
    return None if dst == src else dst


def shuffle(src: int, topo: Topology, rng: Rng) -> Optional[int]:
    """Perfect shuffle: rotate the source index left by one bit."""
    bits = _require_power_of_two(topo.num_nodes, "shuffle")
    if bits == 0:
        return None
    mask = (1 << bits) - 1
    dst = ((src << 1) | (src >> (bits - 1))) & mask
    return None if dst == src else dst


def tornado(src: int, topo: Topology, rng: Rng) -> Optional[int]:
    """Half the ring width to the east — the classic torus adversary."""
    x, y = topo.coords(topo.node_router(src))
    dst_router = topo.router_at((x + max(1, topo.width // 2)) % topo.width, y)
    dst = dst_router * topo.concentration + src % topo.concentration
    return None if dst == src else dst


def neighbor(src: int, topo: Topology, rng: Rng) -> Optional[int]:
    """One hop east (wrapping) — the best case for any network."""
    x, y = topo.coords(topo.node_router(src))
    dst_router = topo.router_at((x + 1) % topo.width, y)
    dst = dst_router * topo.concentration + src % topo.concentration
    return None if dst == src else dst


class _Hotspot:
    """A fraction of traffic targets a small set of hot nodes."""

    def __init__(self, hotspots: List[int], fraction: float) -> None:
        if not hotspots:
            raise ConfigError("hotspot pattern needs at least one hot node")
        check_probability(fraction, "hotspot fraction")
        self.hotspots = hotspots
        self.fraction = fraction

    def __call__(self, src: int, topo: Topology, rng: Rng) -> Optional[int]:
        if rng.bernoulli(self.fraction):
            dst = self.hotspots[rng.randint(0, len(self.hotspots))]
            return None if dst == src else dst
        return uniform_random(src, topo, rng)


_PATTERNS: dict = {
    "uniform": uniform_random,
    "transpose": transpose,
    "bit_complement": bit_complement,
    "bit_reverse": bit_reverse,
    "shuffle": shuffle,
    "tornado": tornado,
    "neighbor": neighbor,
}


def make_pattern(
    name: str,
    hotspots: Optional[List[int]] = None,
    hotspot_fraction: float = 0.3,
) -> Callable[[int, Topology, Rng], Optional[int]]:
    """Look up a destination pattern by name (``hotspot`` takes parameters)."""
    if name == "hotspot":
        return _Hotspot(hotspots or [0], hotspot_fraction)
    try:
        return _PATTERNS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown pattern {name!r}; known: {sorted(_PATTERNS) + ['hotspot']}"
        ) from None


class SyntheticTraffic:
    """Open-loop Bernoulli packet source over a destination pattern.

    Args:
        topo: target topology.
        pattern: name or callable ``(src, topo, rng) -> dst | None``.
        rate: packets per node per cycle (Bernoulli probability).
        size_flits: packet length.
        seed: RNG seed (per-run stream).
        msg_class: message class stamped on generated packets.
    """

    def __init__(
        self,
        topo: Topology,
        pattern: str | Callable = "uniform",
        rate: float = 0.05,
        size_flits: int = 4,
        seed: int = 1,
        msg_class: int = MessageClass.DATA,
    ) -> None:
        check_probability(rate, "injection rate")
        if size_flits < 1:
            raise ConfigError(f"size_flits must be >= 1, got {size_flits}")
        self.topo = topo
        self.pattern = make_pattern(pattern) if isinstance(pattern, str) else pattern
        self.rate = rate
        self.size_flits = size_flits
        self.msg_class = msg_class
        self.rng = Rng(seed, "synthetic")
        self.generated = 0

    def packets_for_cycle(self, cycle: int) -> List[Packet]:
        """Packets injected network-wide during ``cycle``."""
        packets: List[Packet] = []
        for node in range(self.topo.num_nodes):
            if not self.rng.bernoulli(self.rate):
                continue
            dst = self.pattern(node, self.topo, self.rng)
            if dst is None:
                continue
            packets.append(
                Packet(
                    src=node,
                    dst=dst,
                    size_flits=self.size_flits,
                    msg_class=self.msg_class,
                    inject_cycle=cycle,
                )
            )
            self.generated += 1
        return packets

    def drive(self, network, cycles: int, drain: bool = True) -> None:
        """Inject into ``network`` for ``cycles`` cycles, then optionally
        drain.  ``network`` may be any simulator with inject/step/drain —
        the OO and SIMD networks share this surface."""
        for _ in range(cycles):
            for packet in self.packets_for_cycle(network.cycle):
                network.inject(packet)
            network.step()
        if drain:
            network.drain()

    def expected_offered_load(self) -> float:
        """Offered load in flits/node/cycle implied by the configuration."""
        return self.rate * self.size_flits
