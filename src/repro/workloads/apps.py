"""Statistical application models.

The paper drives its full-system simulator with SPLASH-2/PARSEC-class
multithreaded benchmarks; those binaries (and the authors' simulator) are
unavailable, so each benchmark is replaced by a *statistical program*: a
multi-phase stochastic access stream with the knobs that matter for network
traffic —

* memory intensity (``mem_ratio``) and burstiness,
* working-set sizes (drives L1/L2 miss rates),
* private/shared split and write fraction (drives coherence traffic:
  invalidations, recalls, 3-hop transactions),
* access skew (``zipf_s``; hot shared lines concentrate directory traffic),
* barrier phases (synchronized traffic bursts).

Twelve models are provided — eight SPLASH-class (the paper-shaped accuracy
suite, :func:`splash_apps`) and four PARSEC-class additions — loosely shaped
after the usual suspects.  :func:`make_mixed_programs` builds
multiprogrammed mixes with disjoint shared regions.  The parameterizations
are *qualitative*: they span light-to-heavy and
private-to-shared behaviour, which is what the accuracy experiments need
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from ..errors import WorkloadError
from ..fullsys.address import AddressMap
from ..fullsys.core_model import Phase
from ..util import Rng, check_probability

__all__ = [
    "PhaseSpec",
    "AppSpec",
    "StatisticalProgram",
    "APPS",
    "make_programs",
    "make_mixed_programs",
    "app_names",
    "splash_apps",
]


@dataclass(frozen=True)
class PhaseSpec:
    """Stochastic parameters of one program phase."""

    instructions: int
    mem_ratio: float = 0.25  # memory accesses per instruction
    shared_frac: float = 0.2  # fraction of accesses to the shared region
    write_frac: float = 0.25  # fraction of *private* accesses that are stores
    shared_write_frac: float = 0.08  # fraction of *shared* accesses that are stores
    private_lines: int = 2048  # private working set (lines)
    shared_lines: int = 8192  # shared working set (lines)
    zipf_s: float = 0.6  # access skew (0 = uniform)
    burstiness: float = 0.3  # probability an access belongs to a burst
    name: str = ""

    def __post_init__(self) -> None:
        if self.instructions < 1:
            raise WorkloadError(f"phase needs >= 1 instruction, got {self.instructions}")
        check_probability(self.mem_ratio, "mem_ratio")
        if self.mem_ratio <= 0:
            raise WorkloadError("mem_ratio must be > 0 (a phase with no memory "
                                "accesses generates no events)")
        check_probability(self.shared_frac, "shared_frac")
        check_probability(self.write_frac, "write_frac")
        check_probability(self.shared_write_frac, "shared_write_frac")
        check_probability(self.burstiness, "burstiness")
        if self.private_lines < 1 or self.shared_lines < 1:
            raise WorkloadError("working sets must be >= 1 line")


@dataclass(frozen=True)
class AppSpec:
    """A named multi-phase application model."""

    name: str
    phases: Tuple[PhaseSpec, ...]
    barriers: bool = True

    def scaled(self, factor: float) -> "AppSpec":
        """Same behaviour, ``factor``× the instruction count per phase."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be > 0, got {factor}")
        return AppSpec(
            name=self.name,
            phases=tuple(
                replace(p, instructions=max(1, int(p.instructions * factor)))
                for p in self.phases
            ),
            barriers=self.barriers,
        )


class _ZipfSampler:
    """Precomputed inverse-CDF Zipf sampler over ``[0, n)``."""

    def __init__(self, n: int, s: float) -> None:
        weights = np.arange(1, n + 1, dtype=float) ** -s
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, u: float) -> int:
        return int(np.searchsorted(self._cdf, u))


class StatisticalProgram:
    """One core's view of an :class:`AppSpec` (implements ``CoreProgram``).

    Private accesses land in the core's own region; shared accesses land in
    a per-phase window of the global shared region so different phases touch
    different data (cold misses at phase starts, as real phases have).  A
    two-state burst process (inside/outside a burst) modulates the gaps so
    traffic is clumped rather than Poisson — one of the properties vacuum
    simulation destroys.
    """

    #: gap while inside a burst (back-to-back accesses)
    BURST_GAP_MEAN = 1.0

    def __init__(
        self,
        core_id: int,
        spec: AppSpec,
        address_map: AddressMap,
        seed: int = 1,
        shared_offset: int = 0,
    ) -> None:
        self.core_id = core_id
        self.spec = spec
        self.address_map = address_map
        self.barriers = spec.barriers
        #: base of this program's window in the shared region; programs of
        #: the same app share a window, different apps in a multiprogrammed
        #: mix get disjoint windows (independent processes share nothing).
        self.shared_offset = shared_offset
        self.phases: List[Phase] = [
            Phase(instructions=p.instructions, name=p.name or f"phase{i}")
            for i, p in enumerate(spec.phases)
        ]
        self.rng = Rng(seed, f"app/{spec.name}/core{core_id}")
        self._in_burst = False
        self._private = [
            _ZipfSampler(p.private_lines, p.zipf_s) for p in spec.phases
        ]
        self._shared = [_ZipfSampler(p.shared_lines, p.zipf_s) for p in spec.phases]

    # ------------------------------------------------------------------
    def next_access(self, phase: int) -> Tuple[int, int, bool]:
        spec = self.spec.phases[phase]
        gap = self._draw_gap(spec)
        if self.rng.bernoulli(spec.shared_frac):
            # All phases of an app revisit the same shared data structure
            # (window offset 0): phase transitions re-warm rather than
            # recold the shared footprint, as iterative SPLASH-class
            # kernels do.
            idx = self._shared[phase].sample(self.rng.random())
            line = self.address_map.shared_line(self.shared_offset + idx)
            is_write = self.rng.bernoulli(spec.shared_write_frac)
        else:
            idx = self._private[phase].sample(self.rng.random())
            line = self.address_map.private_line(self.core_id, idx)
            is_write = self.rng.bernoulli(spec.write_frac)
        return gap, line, is_write

    def _draw_gap(self, spec: PhaseSpec) -> int:
        """Instructions before the next access, with burst modulation."""
        # Two-state Markov process: bursts keep gaps near zero; between
        # bursts gaps are geometric with the mean that preserves the overall
        # mem_ratio in expectation.
        if self._in_burst:
            if self.rng.bernoulli(0.5):  # burst continues
                return self.rng.geometric(1.0 / (1.0 + self.BURST_GAP_MEAN)) - 1
            self._in_burst = False
        elif self.rng.bernoulli(spec.burstiness):
            self._in_burst = True
            return 0
        mean_gap = max(0.0, 1.0 / spec.mem_ratio - 1.0)
        if mean_gap <= 0.0:
            return 0
        return self.rng.geometric(1.0 / (1.0 + mean_gap)) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StatisticalProgram({self.spec.name}, core={self.core_id})"


def _mk(name: str, *phases: PhaseSpec, barriers: bool = True) -> AppSpec:
    return AppSpec(name=name, phases=phases, barriers=barriers)


#: The benchmark suite.  Instruction counts are per core per phase and sized
#: for tractable pure-Python simulation; use :meth:`AppSpec.scaled` to grow.
APPS: Dict[str, AppSpec] = {
    spec.name: spec
    for spec in [
        _mk(
            "fft",
            PhaseSpec(6000, mem_ratio=0.18, shared_frac=0.10, write_frac=0.30,
                      shared_write_frac=0.05, private_lines=96, shared_lines=256,
                      zipf_s=0.9, burstiness=0.2, name="compute"),
            PhaseSpec(3000, mem_ratio=0.45, shared_frac=0.85, write_frac=0.50,
                      shared_write_frac=0.40, private_lines=48, shared_lines=1024,
                      zipf_s=0.5, burstiness=0.5, name="transpose"),
            PhaseSpec(6000, mem_ratio=0.18, shared_frac=0.10, write_frac=0.30,
                      shared_write_frac=0.05, private_lines=96, shared_lines=256,
                      zipf_s=0.9, burstiness=0.2, name="compute2"),
        ),
        _mk(
            "lu",
            PhaseSpec(5000, mem_ratio=0.30, shared_frac=0.35, write_frac=0.35,
                      shared_write_frac=0.10, private_lines=128, shared_lines=512,
                      zipf_s=1.0, burstiness=0.3, name="factor-outer"),
            PhaseSpec(4000, mem_ratio=0.30, shared_frac=0.45, write_frac=0.35,
                      shared_write_frac=0.10, private_lines=96, shared_lines=256,
                      zipf_s=1.0, burstiness=0.3, name="factor-mid"),
            PhaseSpec(3000, mem_ratio=0.30, shared_frac=0.55, write_frac=0.35,
                      shared_write_frac=0.12, private_lines=64, shared_lines=128,
                      zipf_s=1.0, burstiness=0.3, name="factor-inner"),
        ),
        _mk(
            "radix",
            PhaseSpec(4000, mem_ratio=0.50, shared_frac=0.20, write_frac=0.15,
                      shared_write_frac=0.05, private_lines=256, shared_lines=128,
                      zipf_s=0.7, burstiness=0.4, name="count"),
            PhaseSpec(4000, mem_ratio=0.50, shared_frac=0.75, write_frac=0.70,
                      shared_write_frac=0.50, private_lines=64, shared_lines=2048,
                      zipf_s=0.4, burstiness=0.6, name="permute"),
        ),
        _mk(
            "ocean",
            PhaseSpec(5000, mem_ratio=0.40, shared_frac=0.30, write_frac=0.40,
                      shared_write_frac=0.15, private_lines=512, shared_lines=1024,
                      zipf_s=0.8, burstiness=0.35, name="red-sweep"),
            PhaseSpec(5000, mem_ratio=0.40, shared_frac=0.30, write_frac=0.40,
                      shared_write_frac=0.15, private_lines=512, shared_lines=1024,
                      zipf_s=0.8, burstiness=0.35, name="black-sweep"),
            PhaseSpec(2500, mem_ratio=0.35, shared_frac=0.50, write_frac=0.30,
                      shared_write_frac=0.10, private_lines=128, shared_lines=512,
                      zipf_s=0.9, burstiness=0.3, name="residual"),
        ),
        _mk(
            "barnes",
            PhaseSpec(7000, mem_ratio=0.28, shared_frac=0.55, write_frac=0.15,
                      shared_write_frac=0.03, private_lines=128, shared_lines=1536,
                      zipf_s=1.2, burstiness=0.45, name="force-calc"),
            PhaseSpec(2500, mem_ratio=0.35, shared_frac=0.70, write_frac=0.55,
                      shared_write_frac=0.25, private_lines=48, shared_lines=512,
                      zipf_s=1.1, burstiness=0.4, name="tree-build"),
        ),
        _mk(
            "water",
            PhaseSpec(8000, mem_ratio=0.12, shared_frac=0.15, write_frac=0.20,
                      shared_write_frac=0.05, private_lines=64, shared_lines=192,
                      zipf_s=1.0, burstiness=0.15, name="intra-mol"),
            PhaseSpec(4000, mem_ratio=0.20, shared_frac=0.40, write_frac=0.30,
                      shared_write_frac=0.08, private_lines=64, shared_lines=384,
                      zipf_s=1.0, burstiness=0.25, name="inter-mol"),
        ),
        _mk(
            "cholesky",
            PhaseSpec(6000, mem_ratio=0.32, shared_frac=0.40, write_frac=0.35,
                      shared_write_frac=0.12, private_lines=192, shared_lines=768,
                      zipf_s=1.1, burstiness=0.5, name="supernode"),
            PhaseSpec(4000, mem_ratio=0.32, shared_frac=0.50, write_frac=0.35,
                      shared_write_frac=0.12, private_lines=96, shared_lines=384,
                      zipf_s=1.1, burstiness=0.5, name="update"),
            barriers=False,
        ),
        _mk(
            "raytrace",
            PhaseSpec(9000, mem_ratio=0.26, shared_frac=0.65, write_frac=0.05,
                      shared_write_frac=0.01, private_lines=64, shared_lines=3072,
                      zipf_s=1.2, burstiness=0.3, name="trace"),
            barriers=False,
        ),
        # PARSEC-class additions: pipeline/task-parallel codes with
        # different sharing textures than the SPLASH-class set above.
        _mk(
            "streamcluster",
            PhaseSpec(6000, mem_ratio=0.38, shared_frac=0.60, write_frac=0.10,
                      shared_write_frac=0.04, private_lines=96, shared_lines=2048,
                      zipf_s=0.3, burstiness=0.2, name="distance-sweep"),
            PhaseSpec(2000, mem_ratio=0.25, shared_frac=0.50, write_frac=0.40,
                      shared_write_frac=0.30, private_lines=48, shared_lines=256,
                      zipf_s=0.8, burstiness=0.4, name="recenter"),
        ),
        _mk(
            "canneal",
            PhaseSpec(8000, mem_ratio=0.35, shared_frac=0.80, write_frac=0.30,
                      shared_write_frac=0.20, private_lines=48, shared_lines=4096,
                      zipf_s=0.2, burstiness=0.25, name="swap-elements"),
            barriers=False,
        ),
        _mk(
            "blackscholes",
            PhaseSpec(9000, mem_ratio=0.10, shared_frac=0.08, write_frac=0.25,
                      shared_write_frac=0.02, private_lines=96, shared_lines=512,
                      zipf_s=0.9, burstiness=0.1, name="price-options"),
        ),
        _mk(
            "bodytrack",
            PhaseSpec(5000, mem_ratio=0.22, shared_frac=0.45, write_frac=0.20,
                      shared_write_frac=0.06, private_lines=128, shared_lines=1024,
                      zipf_s=0.9, burstiness=0.35, name="particle-weights"),
            PhaseSpec(3000, mem_ratio=0.30, shared_frac=0.60, write_frac=0.45,
                      shared_write_frac=0.22, private_lines=64, shared_lines=512,
                      zipf_s=0.8, burstiness=0.45, name="resample"),
        ),
    ]
}


def app_names() -> List[str]:
    """The full benchmark suite, in canonical order."""
    return list(APPS)


def splash_apps() -> List[str]:
    """The SPLASH-class subset used by the paper-shaped accuracy sweeps."""
    return list(APPS)[:8]


def make_programs(
    app: str | AppSpec,
    num_cores: int,
    seed: int = 1,
    scale: float = 1.0,
) -> List[StatisticalProgram]:
    """One program per core for ``app`` (name or spec)."""
    spec = APPS.get(app) if isinstance(app, str) else app
    if spec is None:
        raise WorkloadError(f"unknown app {app!r}; known: {app_names()}")
    if scale != 1.0:
        spec = spec.scaled(scale)
    address_map = AddressMap(num_cores)
    return [
        StatisticalProgram(core, spec, address_map, seed=seed)
        for core in range(num_cores)
    ]


def make_mixed_programs(
    apps: List[str | AppSpec],
    num_cores: int,
    seed: int = 1,
    scale: float = 1.0,
) -> List[StatisticalProgram]:
    """A multiprogrammed mix: core ``i`` runs ``apps[i % len(apps)]``.

    Mixed workloads have no global phase structure, so barriers are disabled
    for every core (each program advances through its own phases alone) —
    matching how multiprogrammed studies run independent processes.
    """
    if not apps:
        raise WorkloadError("need at least one app in the mix")
    specs = []
    for app in apps:
        spec = APPS.get(app) if isinstance(app, str) else app
        if spec is None:
            raise WorkloadError(f"unknown app {app!r}; known: {app_names()}")
        if scale != 1.0:
            spec = spec.scaled(scale)
        specs.append(AppSpec(name=spec.name, phases=spec.phases, barriers=False))
    address_map = AddressMap(num_cores)
    # Disjoint shared windows: independent processes share no data.
    window = 1 << 16
    return [
        StatisticalProgram(
            core,
            specs[core % len(specs)],
            address_map,
            seed=seed,
            shared_offset=(core % len(specs)) * window,
        )
        for core in range(num_cores)
    ]
