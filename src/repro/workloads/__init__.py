"""Workloads: synthetic traffic patterns, statistical application models,
and message traces.
"""

from .apps import (
    APPS,
    AppSpec,
    PhaseSpec,
    StatisticalProgram,
    app_names,
    make_mixed_programs,
    make_programs,
    splash_apps,
)
from .synthetic import SyntheticTraffic, make_pattern
from .traces import (
    TraceInjector,
    TraceRecord,
    TraceRecorder,
    load_trace,
    matched_load_synthetic,
    save_trace,
)

__all__ = [
    "APPS",
    "AppSpec",
    "PhaseSpec",
    "StatisticalProgram",
    "app_names",
    "splash_apps",
    "make_programs",
    "make_mixed_programs",
    "SyntheticTraffic",
    "make_pattern",
    "TraceRecord",
    "TraceRecorder",
    "TraceInjector",
    "save_trace",
    "load_trace",
    "matched_load_synthetic",
]
