"""``python -m repro serve`` — run and talk to the simulation service.

Examples::

    python -m repro serve start --db serve.db --workers 4 --port 8421
    python -m repro serve submit E5 --point-index 1 --quick --wait
    python -m repro serve status <job_id>
    python -m repro serve result <job_id>
    python -m repro serve catalog
    python -m repro serve metrics
    python -m repro serve stop

``start`` runs the daemon in the foreground until SIGTERM/SIGINT, then
drains gracefully (in-flight jobs checkpoint, the queue persists, and a
restart on the same ``--db`` resumes every accepted job exactly once).
All other subcommands are thin :class:`~repro.serve.client.ServeClient`
wrappers that print JSON (or, for ``metrics``, Prometheus text).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from ..errors import (
    BackpressureError,
    ChaosError,
    ConfigError,
    ServeError,
    StoreCorruptError,
    StoreIOError,
)
from .client import ServeClient
from .server import ServeConfig, ServeDaemon

__all__ = ["build_parser", "main"]

#: default port — fixed so client subcommands find the daemon without flags
DEFAULT_PORT = 8421


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Simulation-as-a-service: a caching, batching daemon "
        "over the experiment registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser("start", help="run the daemon in the foreground")
    start.add_argument("--host", default="127.0.0.1")
    start.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="listen port; 0 picks a free one (default: %(default)s)",
    )
    start.add_argument(
        "--db", default="serve.db",
        help="content-addressed result store (default: %(default)s)",
    )
    start.add_argument("--workers", type=int, default=2, help="worker processes")
    start.add_argument(
        "--max-queue", type=int, default=64,
        help="admission-queue bound; beyond it submissions get 429",
    )
    start.add_argument(
        "--batch-max", type=int, default=8,
        help="max same-shape jobs coalesced into one dispatch round",
    )
    start.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per failed/stuck job, each on a fresh process",
    )
    start.add_argument(
        "--timeout", type=float, default=None,
        help="per-job wall-clock budget in seconds",
    )
    start.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint jobs here so drained attempts resume mid-simulation",
    )
    start.add_argument("--checkpoint-every", type=int, default=256)
    start.add_argument(
        "--lru-size", type=int, default=256,
        help="in-memory cache entries in front of the SQLite tier",
    )
    start.add_argument(
        "--engine", default="auto", choices=["auto", "oo", "batched"],
        help="NoC execution engine for engine-aware jobs; unless 'oo', "
        "same-shape jobs dispatch as lanes of one batched kernel",
    )
    start.add_argument(
        "--chaos-arm", default=None, metavar="JSON",
        help="arm a chaos schedule before serving: ChaosConfig keyword "
        'arguments as JSON, e.g. \'{"seed": 7, "crash_points": '
        '["serve.submit.before-ack"]}\' (testing only)',
    )
    start.add_argument(
        "--chaos-crash-mode", default="exit", choices=["raise", "exit"],
        help="how armed crash points kill the daemon: 'exit' (real "
        "process death, exit code 86) or 'raise' (in-process signal)",
    )

    def client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=DEFAULT_PORT)
        p.add_argument("--client", default="cli", help="fairness identity")

    submit = sub.add_parser("submit", help="submit one job")
    client_flags(submit)
    submit.add_argument("eid", help="experiment id (see 'serve catalog')")
    submit.add_argument("--point-index", type=int, default=None)
    submit.add_argument(
        "--point", default=None,
        help="sweep point as JSON (alternative to --point-index)",
    )
    submit.add_argument("--quick", action="store_true")
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--replicate", type=int, default=0)
    submit.add_argument(
        "--wait", action="store_true",
        help="block until done and print the result payload",
    )
    submit.add_argument("--wait-timeout", type=float, default=600.0)

    status = sub.add_parser("status", help="one job's lifecycle status")
    client_flags(status)
    status.add_argument("job_id")

    result = sub.add_parser("result", help="one job's result payload (verbatim)")
    client_flags(result)
    result.add_argument("job_id")

    for name, help_text in (
        ("catalog", "the experiment registry as a service catalog"),
        ("metrics", "Prometheus metrics text"),
        ("stop", "ask the daemon to drain gracefully"),
    ):
        p = sub.add_parser(name, help=help_text)
        client_flags(p)
    return parser


def _cmd_start(args: argparse.Namespace) -> int:
    config = ServeConfig(
        host=args.host,
        port=args.port,
        db=args.db,
        workers=args.workers,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
        retries=args.retries,
        timeout=args.timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        lru_size=args.lru_size,
        engine=args.engine,
    )
    state = None
    if args.chaos_arm is not None:
        from ..chaos import ChaosConfig, arm  # deferred: testing-only path

        try:
            kwargs = json.loads(args.chaos_arm)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"--chaos-arm must be JSON: {exc}") from exc
        if not isinstance(kwargs, dict):
            raise ConfigError("--chaos-arm must be a JSON object")
        try:
            chaos_config = ChaosConfig(**kwargs)
        except TypeError as exc:
            raise ConfigError(f"--chaos-arm: {exc}") from exc
        state = arm(chaos_config, crash_mode=args.chaos_crash_mode)
    daemon = ServeDaemon(config)
    if state is not None:
        state.bind_metrics(daemon.metrics)
    daemon.start()
    print(
        f"repro serve: listening on {config.host}:{daemon.port} "
        f"(db={config.db}, workers={config.workers}, "
        f"max_queue={config.max_queue})",
        file=sys.stderr,
        flush=True,
    )
    code = daemon.run_forever()
    print("repro serve: drained and stopped", file=sys.stderr)
    return code


def _client(args: argparse.Namespace) -> ServeClient:
    return ServeClient(
        host=args.host, port=args.port, client_id=getattr(args, "client", "cli")
    )


def _print_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    point = None
    if args.point is not None:
        try:
            point = json.loads(args.point)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"--point must be JSON: {exc}") from exc
    ack = client.submit(
        args.eid,
        point_index=args.point_index,
        point=point,
        quick=args.quick,
        seed=args.seed,
        replicate=args.replicate,
    )
    if not args.wait:
        _print_json(ack)
        return 0
    if ack["status"] != "done":
        client.wait(ack["job_id"], timeout_s=args.wait_timeout)
    print(client.result_text(ack["job_id"]), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "start":
            return _cmd_start(args)
        if args.command == "submit":
            return _cmd_submit(args)
        client = _client(args)
        if args.command == "status":
            _print_json(client.status(args.job_id))
        elif args.command == "result":
            print(client.result_text(args.job_id), end="")
        elif args.command == "catalog":
            _print_json(client.catalog())
        elif args.command == "metrics":
            print(client.metrics_text(), end="")
        elif args.command == "stop":
            _print_json(client.shutdown())
        return 0
    except BackpressureError as exc:
        print(
            f"serve: {exc} (retry after ~{exc.retry_after_s}s)", file=sys.stderr
        )
        return 3
    except (
        ChaosError, ConfigError, ServeError, StoreCorruptError, StoreIOError,
    ) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
