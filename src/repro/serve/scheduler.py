"""The dispatch thread: admission queue -> worker pool -> result cache.

One scheduler thread owns the :class:`~repro.campaign.pool.WorkerPool`
(fresh process per job, SIGTERM->SIGKILL escalation, per-job timeouts)
and is the only writer of job *lifecycle* transitions.  Its loop:

1. keep the pool full from the admission queue, taking shape-coalesced
   batches (jobs sharing ``(eid, quick)`` dispatch together);
2. collect outcomes under a small wait budget so new arrivals are
   dispatched while long jobs run;
3. commit results to the content-addressed cache (canonical payload
   text), re-queue failures while retry attempts remain, and feed the
   service-time summary.

Graceful drain (SIGTERM): the loop stops dispatching, the pool shuts
down politely — workers get the grace window to flush resilience-layer
checkpoints — and every interrupted job is reset to ``pending`` in the
store, so a restarted daemon resumes exactly where this one stopped and
no accepted job is ever executed twice.
"""

from __future__ import annotations

import os
import threading
from typing import Deque, Dict, List, Optional, Set

from collections import deque

from ..campaign.pool import WorkerPool
from ..campaign.spec import JobSpec
from ..errors import ConfigError
from .cache import ResultCache
from .metrics import PREFIX, Metrics
from .queuein import AdmissionQueue, QueuedJob

__all__ = ["Scheduler"]

#: how long one collect pass may block while dispatch slots are free (s)
_WAIT_BUDGET_S = 0.1
#: queue wait while the pool is idle (s) — the loop's only sleep
_IDLE_WAIT_S = 0.2


class Scheduler:
    """Run admitted jobs on a worker pool, committing results to the cache.

    Args:
        queue: the admission queue to drain.
        cache: the result cache / job store.
        metrics: the daemon's metric registry.
        workers: pool concurrency.
        batch_max: max jobs coalesced into one dispatch round.
        retries: extra attempts per failed/timed-out job.
        timeout: per-job wall-clock budget in seconds (None: unlimited).
        checkpoint_dir: give each job a resilience-layer checkpoint file
            here, so a drained or killed attempt resumes mid-simulation.
        checkpoint_every: snapshot period in synchronization windows.
        start_method: multiprocessing start method override.
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        cache: ResultCache,
        metrics: Metrics,
        workers: int = 1,
        batch_max: int = 8,
        retries: int = 0,
        timeout: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 256,
        start_method: Optional[str] = None,
    ) -> None:
        if batch_max < 1:
            raise ConfigError(f"batch_max must be >= 1, got {batch_max}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        self.queue = queue
        self.cache = cache
        self.metrics = metrics
        self.retries = retries
        self.batch_max = batch_max
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self._pool = WorkerPool(
            workers=workers, timeout=timeout, start_method=start_method
        )
        self._lock = threading.Lock()
        self._running: Set[str] = set()
        self._buffer: Deque[QueuedJob] = deque()
        self._entries: Dict[str, QueuedJob] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        metrics.register_gauge(
            f"{PREFIX}_jobs_in_flight",
            "Jobs currently executing on worker processes.",
            lambda: float(len(self.running_ids())),
        )

    # -- observers ------------------------------------------------------
    def running_ids(self) -> Set[str]:
        with self._lock:
            return set(self._running)

    def is_tracked(self, job_id: str) -> bool:
        """Queued-in-scheduler or running (dedupe check for submissions)."""
        with self._lock:
            return job_id in self._running or job_id in self._entries

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise ConfigError("scheduler already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop dispatching and shut the pool down politely.

        In-flight workers get the pool's SIGTERM grace window — long
        enough to flush a resilience-layer checkpoint — before SIGKILL;
        their jobs, and everything still queued, are reset to ``pending``
        in the store so the next daemon instance resumes them.
        """
        self._stop.set()
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    # -- the loop -------------------------------------------------------
    def _run(self) -> None:
        pool = self._pool
        while not self._stop.is_set():
            self._fill_pool()
            if pool.active:
                for outcome in pool.wait(poll_s=0.05, budget_s=_WAIT_BUDGET_S):
                    self._handle_outcome(outcome)
            elif not self._buffer:
                batch = self.queue.take_batch(self.batch_max, timeout_s=_IDLE_WAIT_S)
                self._admit_batch(batch)
        # Drain: polite shutdown, then hand interrupted work back to the
        # store as pending rows (the restart-resume contract).
        pool.shutdown()
        with self._lock:
            self._running.clear()
            self._buffer.clear()
            self._entries.clear()
        interrupted, _ = self.cache.recover()
        if interrupted:
            self.metrics.inc(
                f"{PREFIX}_drained_jobs_total",
                "Jobs handed back to the store as pending during drain.",
                amount=float(len(interrupted)),
            )

    def _admit_batch(self, batch: List[QueuedJob]) -> None:
        if not batch:
            return
        admitted = 0
        with self._lock:
            for entry in batch:
                # Between the queue's take_batch (which forgets the id)
                # and this registration, the job is tracked nowhere, so
                # the frontier's dedupe check can re-admit it.  Dropping
                # the duplicate here closes that window — dispatching it
                # would double the work and, worse, make pool.submit
                # raise on the id collision and kill this thread.
                if entry.job_id in self._entries or entry.job_id in self._running:
                    continue
                self._buffer.append(entry)
                self._entries[entry.job_id] = entry
                admitted += 1
        self.metrics.inc(
            f"{PREFIX}_batches_total",
            "Dispatch rounds taken off the admission queue.",
        )
        if admitted:
            self.metrics.inc(
                f"{PREFIX}_batched_jobs_total",
                "Jobs admitted to dispatch, counted per batch member.",
                amount=float(admitted),
            )
        if admitted != len(batch):
            self.metrics.inc(
                f"{PREFIX}_duplicate_admissions_total",
                "Batch members dropped because their job was already "
                "buffered or running (admission handoff race).",
                amount=float(len(batch) - admitted),
            )

    def _fill_pool(self) -> None:
        pool = self._pool
        while pool.has_capacity():
            if not self._buffer:
                batch = self.queue.take_batch(self.batch_max, timeout_s=None)
                self._admit_batch(batch)
                if not self._buffer:
                    return
            with self._lock:
                entry = self._buffer.popleft()
            if self.cache.lookup(entry.job_id) is not None:
                # A racing duplicate finished while this entry waited in
                # the buffer; its result is committed — spawning a worker
                # would recompute (and re-commit) done work.
                with self._lock:
                    self._entries.pop(entry.job_id, None)
                self.metrics.inc(
                    f"{PREFIX}_duplicate_dispatches_skipped_total",
                    "Buffered jobs skipped at dispatch because their "
                    "result was already committed.",
                )
                continue
            worker = pool.submit(entry.job_id, self._job_dict(entry.spec))
            self.cache.mark_running(entry.job_id, worker)
            with self._lock:
                self._running.add(entry.job_id)
            self.metrics.inc(
                f"{PREFIX}_jobs_dispatched_total",
                "Worker processes spawned (cache hits never increment this).",
            )

    def _job_dict(self, spec: JobSpec) -> dict:
        data = spec.to_dict()
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            data["_checkpoint"] = {
                "path": os.path.join(self.checkpoint_dir, f"{spec.job_id}.ckpt"),
                "every": self.checkpoint_every,
            }
        return data

    def _handle_outcome(self, outcome) -> None:
        with self._lock:
            self._running.discard(outcome.job_id)
            entry = self._entries.pop(outcome.job_id, None)
        if outcome.ok:
            self.cache.commit(outcome.job_id, outcome.payload, outcome.wall_s)
            self.metrics.inc(
                f"{PREFIX}_jobs_completed_total",
                "Jobs that finished successfully and entered the cache.",
            )
            self.metrics.observe_service_time(outcome.wall_s)
            return
        attempts = self.cache.attempts(outcome.job_id)
        requeue = attempts < self.retries + 1
        self.cache.mark_failed(
            outcome.job_id,
            outcome.error or "unknown error",
            outcome.wall_s,
            requeue=requeue,
        )
        self.metrics.inc(
            f"{PREFIX}_worker_restarts_total",
            "Worker processes that died, timed out, or failed their job.",
        )
        if requeue:
            if entry is None:
                row = self.cache.job_row(outcome.job_id)
                if row is None:  # pragma: no cover - outcome implies a row
                    return
                entry = QueuedJob(spec=row.job_spec(), client="retry")
            with self._lock:
                self._buffer.append(entry)
                self._entries[entry.job_id] = entry
        else:
            self.metrics.inc(
                f"{PREFIX}_jobs_failed_total",
                "Jobs that exhausted their attempts and stayed failed.",
            )
