"""The dispatch thread: admission queue -> worker pool -> result cache.

One scheduler thread owns the :class:`~repro.campaign.pool.WorkerPool`
(fresh process per job, SIGTERM->SIGKILL escalation, per-job timeouts)
and is the only writer of job *lifecycle* transitions.  Its loop:

1. keep the pool full from the admission queue, taking shape-coalesced
   batches (jobs sharing ``(eid, quick)`` dispatch together);
2. collect outcomes under a small wait budget so new arrivals are
   dispatched while long jobs run;
3. commit results to the content-addressed cache (canonical payload
   text), re-queue failures while retry attempts remain, and feed the
   service-time summary.

Graceful drain (SIGTERM): the loop stops dispatching, the pool shuts
down politely — workers get the grace window to flush resilience-layer
checkpoints — and every interrupted job is reset to ``pending`` in the
store, so a restarted daemon resumes exactly where this one stopped and
no accepted job is ever executed twice.
"""

from __future__ import annotations

import os
import threading
from typing import Deque, Dict, List, Optional, Set

from collections import deque

from ..campaign.pool import WorkerPool
from ..campaign.spec import JobSpec, get_experiment, jobs_batchable
from ..errors import ChaosCrash, ConfigError, StoreIOError
from .breaker import CircuitBreaker
from .cache import ResultCache
from .metrics import PREFIX, Metrics
from .queuein import AdmissionQueue, QueuedJob

__all__ = ["Scheduler"]

#: how long one collect pass may block while dispatch slots are free (s)
_WAIT_BUDGET_S = 0.1
#: queue wait while the pool is idle (s) — the loop's only sleep
_IDLE_WAIT_S = 0.2

#: chaos-injection shim (see :mod:`repro.chaos.inject`): when armed, called
#: with the crash-point name at each named crash point below.  ``None``
#: (the default) costs one identity check — the scheduler never imports
#: chaos.
CHAOS_CRASH_HOOK = None


class Scheduler:
    """Run admitted jobs on a worker pool, committing results to the cache.

    Args:
        queue: the admission queue to drain.
        cache: the result cache / job store.
        metrics: the daemon's metric registry.
        workers: pool concurrency.
        batch_max: max jobs coalesced into one dispatch round.
        retries: extra attempts per failed/timed-out job.
        timeout: per-job wall-clock budget in seconds (None: unlimited).
        checkpoint_dir: give each job a resilience-layer checkpoint file
            here, so a drained or killed attempt resumes mid-simulation.
            Checkpointing disables kernel batching: lanes of a shared
            batch cannot snapshot independently.
        checkpoint_every: snapshot period in synchronization windows.
        start_method: multiprocessing start method override.
        breaker_threshold: consecutive infrastructure failures (store
            commit errors, worker spawn failures) that trip the circuit
            breaker open; while open the scheduler stops dispatching and
            the frontier answers 503.
        breaker_cooldown_s: how long the breaker stays open before a
            single half-open probe dispatch is allowed.
        engine: NoC execution engine hint for engine-aware jobs
            (``"auto"``/``"oo"``/``"batched"``).  Unless pinned to
            ``"oo"``, same-shape engine-aware jobs meeting in one dispatch
            round run as lanes of a single batched kernel invocation —
            but only after :func:`repro.campaign.spec.jobs_batchable`
            confirms the engine supports the shared shape; refused groups
            fall back to individual dispatch (counted in
            ``repro_serve_engine_fallback_total``).
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        cache: ResultCache,
        metrics: Metrics,
        workers: int = 1,
        batch_max: int = 8,
        retries: int = 0,
        timeout: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 256,
        start_method: Optional[str] = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 10.0,
        engine: str = "auto",
    ) -> None:
        if batch_max < 1:
            raise ConfigError(f"batch_max must be >= 1, got {batch_max}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if engine not in ("auto", "oo", "batched"):
            raise ConfigError(
                f"engine must be 'auto', 'oo', or 'batched', got {engine!r}"
            )
        self.queue = queue
        self.cache = cache
        self.metrics = metrics
        self.retries = retries
        self.batch_max = batch_max
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.engine = engine
        self._pool = WorkerPool(
            workers=workers, timeout=timeout, start_method=start_method
        )
        self._lock = threading.Lock()
        self._running: Set[str] = set()
        self._buffer: Deque[QueuedJob] = deque()
        self._entries: Dict[str, QueuedJob] = {}
        #: synthetic pool id -> members of an in-flight kernel batch
        self._batches: Dict[str, List[QueuedJob]] = {}
        self._batch_seq = 0
        #: job ids demoted to individual dispatch after a batch failure
        self._no_batch: Set[str] = set()
        self._stop = threading.Event()
        self._abort = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s
        )
        #: latched when a chaos-injected crash killed the dispatch thread
        self._crashed = threading.Event()
        metrics.register_gauge(
            f"{PREFIX}_jobs_in_flight",
            "Jobs currently executing on worker processes.",
            lambda: float(len(self.running_ids())),
        )
        metrics.register_gauge(
            f"{PREFIX}_retry_budget",
            "Extra attempts each failed job is allowed (the --retries knob).",
            lambda: float(self.retries),
        )
        metrics.register_gauge(
            f"{PREFIX}_breaker_open",
            "1 while the dispatch circuit breaker refuses new work.",
            lambda: 1.0 if self.breaker.blocked else 0.0,
        )
        metrics.register_gauge(
            f"{PREFIX}_breaker_trips",
            "Times the dispatch circuit breaker has tripped open.",
            lambda: float(self.breaker.trips),
        )

    # -- observers ------------------------------------------------------
    def running_ids(self) -> Set[str]:
        with self._lock:
            return set(self._running)

    def is_tracked(self, job_id: str) -> bool:
        """Queued-in-scheduler or running (dedupe check for submissions)."""
        with self._lock:
            return job_id in self._running or job_id in self._entries

    @property
    def crashed(self) -> bool:
        """True once a chaos-injected crash has killed the dispatch thread.

        A crashed scheduler took nothing down gracefully (that is the
        point); restart recovery — ``reset_running`` at the next daemon's
        cache recover — is what reclaims its in-flight jobs.
        """
        return self._crashed.is_set()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise ConfigError("scheduler already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop dispatching and shut the pool down politely.

        In-flight workers get the pool's SIGTERM grace window — long
        enough to flush a resilience-layer checkpoint — before SIGKILL;
        their jobs, and everything still queued, are reset to ``pending``
        in the store so the next daemon instance resumes them.
        """
        self._stop.set()
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def crash_stop(self) -> None:
        """Die like ``kill -9``: no drain, no hand-back, workers SIGKILLed.

        The cluster chaos audit's in-process node kill.  Store rows stay
        exactly as the crash left them (``running`` rows and all) — the
        next instance's restart recovery is what reclaims them, same as
        after a real process death.
        """
        self._abort.set()
        self._stop.set()
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._pool.kill_all()

    # -- the loop -------------------------------------------------------
    def _run(self) -> None:
        pool = self._pool
        while not self._stop.is_set():
            try:
                self._run_once()
            except StoreIOError as exc:
                # The store refused a commit (disk full, I/O error).  The
                # transaction rolled back, the row kept its previous state,
                # so the loop may simply try again later; the breaker is
                # what stops an endless retry storm against a dead disk.
                self.breaker.record_failure(cause="store")
                self.metrics.inc(
                    f"{PREFIX}_store_errors_total",
                    "Store commits refused by the disk (rolled back).",
                )
                self.metrics.inc(
                    f"{PREFIX}_errors_total",
                    "Unexpected scheduler errors.",
                    kind="store-io",
                )
                del exc
            except ChaosCrash:
                # A chaos-injected process death in "raise" mode: this
                # thread is the process under test.  Die *without* the
                # graceful drain below — a real SIGKILL flushes nothing —
                # and let restart recovery reclaim the running rows.
                self._crashed.set()
                return
        if self._abort.is_set():
            # Crash-stop: skip the graceful tail entirely; kill_all and
            # restart recovery are the caller's business.
            return
        # Drain: polite shutdown, then hand interrupted work back to the
        # store as pending rows (the restart-resume contract).
        pool.shutdown()
        with self._lock:
            self._running.clear()
            self._buffer.clear()
            self._entries.clear()
            self._batches.clear()
        interrupted, _ = self.cache.recover()
        if interrupted:
            self.metrics.inc(
                f"{PREFIX}_drained_jobs_total",
                "Jobs handed back to the store as pending during drain.",
                amount=float(len(interrupted)),
            )

    def _run_once(self) -> None:
        """One pass of the dispatch loop (split out for fault handling)."""
        pool = self._pool
        self._fill_pool()
        if pool.active:
            for outcome in pool.wait(poll_s=0.05, budget_s=_WAIT_BUDGET_S):
                self._handle_outcome(outcome)
        elif not self._buffer:
            batch = self.queue.take_batch(self.batch_max, timeout_s=_IDLE_WAIT_S)
            self._admit_batch(batch)
        else:
            # Work is buffered but nothing could dispatch (breaker open,
            # spawn failures): idle instead of spinning hot.
            self._stop.wait(_IDLE_WAIT_S)

    def _admit_batch(self, batch: List[QueuedJob]) -> None:
        if not batch:
            return
        admitted = 0
        with self._lock:
            for entry in batch:
                # Between the queue's take_batch (which forgets the id)
                # and this registration, the job is tracked nowhere, so
                # the frontier's dedupe check can re-admit it.  Dropping
                # the duplicate here closes that window — dispatching it
                # would double the work and, worse, make pool.submit
                # raise on the id collision and kill this thread.
                if entry.job_id in self._entries or entry.job_id in self._running:
                    continue
                self._buffer.append(entry)
                self._entries[entry.job_id] = entry
                admitted += 1
        self.metrics.inc(
            f"{PREFIX}_batches_total",
            "Dispatch rounds taken off the admission queue.",
        )
        if admitted:
            self.metrics.inc(
                f"{PREFIX}_batched_jobs_total",
                "Jobs admitted to dispatch, counted per batch member.",
                amount=float(admitted),
            )
        if admitted != len(batch):
            self.metrics.inc(
                f"{PREFIX}_duplicate_admissions_total",
                "Batch members dropped because their job was already "
                "buffered or running (admission handoff race).",
                amount=float(len(batch) - admitted),
            )

    def _fill_pool(self) -> None:
        pool = self._pool
        while pool.has_capacity():
            if self.breaker.blocked:
                return
            if not self._buffer:
                batch = self.queue.take_batch(self.batch_max, timeout_s=None)
                self._admit_batch(batch)
                if not self._buffer:
                    return
            with self._lock:
                entry = self._buffer.popleft()
            if self.cache.lookup(entry.job_id) is not None:
                # A racing duplicate finished while this entry waited in
                # the buffer; its result is committed — spawning a worker
                # would recompute (and re-commit) done work.
                with self._lock:
                    self._entries.pop(entry.job_id, None)
                self.metrics.inc(
                    f"{PREFIX}_duplicate_dispatches_skipped_total",
                    "Buffered jobs skipped at dispatch because their "
                    "result was already committed.",
                )
                continue
            group = self._take_batch_group(entry)
            if group is not None:
                self._dispatch_group(group)
                continue
            try:
                worker = pool.submit(entry.job_id, self._job_dict(entry.spec))
            except OSError as exc:
                self._spawn_failure([entry], exc)
                return
            self.cache.mark_running(entry.job_id, worker)
            with self._lock:
                self._running.add(entry.job_id)
            hook = CHAOS_CRASH_HOOK
            if hook is not None:
                hook("scheduler.after-mark-running")
            self.metrics.inc(
                f"{PREFIX}_jobs_dispatched_total",
                "Worker processes spawned (cache hits never increment this).",
            )
            if get_experiment(entry.spec.eid).engine_aware:
                self._observe_batch_size(1)

    def _spawn_failure(self, entries: List[QueuedJob], exc: OSError) -> None:
        """Re-buffer ``entries`` after a failed worker spawn.

        A spawn failure is a host fault (fd/process exhaustion), not the
        jobs': they go back to the head of the buffer without a
        ``mark_running`` transition, so the failure burns none of their
        retry budget.  The breaker is what turns a *persistent* spawn
        failure into refused admissions instead of a hot retry loop.
        """
        with self._lock:
            for entry in reversed(entries):
                self._buffer.appendleft(entry)
                self._entries[entry.job_id] = entry
        self.breaker.record_failure(cause="pool")
        self.metrics.inc(
            f"{PREFIX}_spawn_failures_total",
            "Worker spawns refused by the host (jobs re-buffered).",
            amount=float(len(entries)),
        )
        del exc

    def _job_dict(self, spec: JobSpec) -> dict:
        data = spec.to_dict()
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            data["_checkpoint"] = {
                "path": os.path.join(self.checkpoint_dir, f"{spec.job_id}.ckpt"),
                "every": self.checkpoint_every,
            }
        if self.engine != "auto":
            data["_engine"] = self.engine
        return data

    # -- kernel batching ------------------------------------------------
    def _observe_batch_size(self, lanes: int) -> None:
        self.metrics.observe_histogram(
            f"{PREFIX}_engine_batch_size",
            "Engine-aware jobs per batched kernel dispatch "
            "(1 = individual dispatch).",
            float(lanes),
        )

    def _take_batch_group(self, entry: QueuedJob) -> Optional[List[QueuedJob]]:
        """Grow ``entry`` into a kernel batch from same-shape buffered jobs.

        Returns the member list (companions removed from the buffer), or
        None when ``entry`` must dispatch individually.  The group is only
        formed when the engine layer confirms every member's config can
        share one batch — the scheduler never guesses shape support.
        """
        if self.engine == "oo" or self.checkpoint_dir is not None:
            return None
        if entry.job_id in self._no_batch:
            return None
        # Buffer mutation is scheduler-thread-only, so the peeked
        # companions stay valid until the removal below; the lock only
        # orders the reads against is_tracked/running_ids observers.
        with self._lock:
            companions = [
                queued
                for queued in self._buffer
                if queued.shape == entry.shape
                and queued.job_id not in self._no_batch
            ][: self.batch_max - 1]
        if not companions:
            return None
        group = [entry] + companions
        ok, reason = jobs_batchable([queued.spec.to_dict() for queued in group])
        if not ok:
            if get_experiment(entry.spec.eid).engine_aware:
                self.metrics.inc(
                    f"{PREFIX}_engine_fallback_total",
                    "Engine-aware dispatches that fell back to the "
                    "individual path instead of a shared kernel batch.",
                    reason=reason,
                )
            return None
        with self._lock:
            for queued in companions:
                self._buffer.remove(queued)
        return group

    def _dispatch_group(self, group: List[QueuedJob]) -> None:
        """Submit one synthetic pool job running ``group`` as kernel lanes."""
        self._batch_seq += 1
        batch_id = f"batch-{self._batch_seq}-{group[0].job_id[:8]}"
        job = {"_batch_members": [queued.spec.to_dict() for queued in group]}
        try:
            worker = self._pool.submit(batch_id, job)
        except OSError as exc:
            # Demote every member to individual dispatch: a batch that
            # could not even spawn must not keep re-forming around the
            # same host fault, and individual retries make progress the
            # moment one process slot frees up.
            with self._lock:
                for queued in group:
                    self._no_batch.add(queued.job_id)
            for queued in group:
                if get_experiment(queued.spec.eid).engine_aware:
                    self.metrics.inc(
                        f"{PREFIX}_engine_fallback_total",
                        "Engine-aware dispatches that fell back to the "
                        "individual path instead of a shared kernel batch.",
                        reason="spawn-failure",
                    )
            self._spawn_failure(group, exc)
            return
        with self._lock:
            self._batches[batch_id] = list(group)
            for queued in group:
                self._running.add(queued.job_id)
        for queued in group:
            self.cache.mark_running(queued.job_id, worker)
        self.metrics.inc(
            f"{PREFIX}_jobs_dispatched_total",
            "Worker processes spawned (cache hits never increment this).",
        )
        self._observe_batch_size(len(group))

    def _handle_outcome(self, outcome) -> None:
        with self._lock:
            members = self._batches.pop(outcome.job_id, None)
        if members is not None:
            self._handle_batch_outcome(outcome, members)
            return
        with self._lock:
            self._running.discard(outcome.job_id)
            entry = self._entries.pop(outcome.job_id, None)
        if outcome.ok:
            hook = CHAOS_CRASH_HOOK
            if hook is not None:
                hook("scheduler.before-commit")
            try:
                self.cache.commit(outcome.job_id, outcome.payload, outcome.wall_s)
            except StoreIOError:
                # The result is computed but not durable.  Re-buffer the
                # job: determinism makes the redo byte-identical, and
                # "redo the work" is the only path that keeps the
                # store's exactly-once accounting honest.
                self._requeue_entry(outcome.job_id, entry)
                raise
            self.breaker.record_success()
            self.metrics.inc(
                f"{PREFIX}_jobs_completed_total",
                "Jobs that finished successfully and entered the cache.",
            )
            self.metrics.observe_service_time(outcome.wall_s)
            return
        attempts = self.cache.attempts(outcome.job_id)
        requeue = attempts < self.retries + 1
        self.cache.mark_failed(
            outcome.job_id,
            outcome.error or "unknown error",
            outcome.wall_s,
            requeue=requeue,
        )
        self.metrics.inc(
            f"{PREFIX}_worker_restarts_total",
            "Worker processes that died, timed out, or failed their job.",
        )
        if requeue:
            self._requeue_entry(outcome.job_id, entry)
        else:
            self.metrics.inc(
                f"{PREFIX}_jobs_failed_total",
                "Jobs that exhausted their attempts and stayed failed.",
            )

    def _requeue_entry(self, job_id: str, entry: Optional[QueuedJob]) -> None:
        """Put ``job_id`` back on the dispatch buffer for another attempt."""
        if entry is None:
            row = self.cache.job_row(job_id)
            if row is None:  # pragma: no cover - outcome implies a row
                return
            entry = QueuedJob(spec=row.job_spec(), client="retry")
        with self._lock:
            self._buffer.append(entry)
            self._entries[entry.job_id] = entry

    def _handle_batch_outcome(self, outcome, members: List[QueuedJob]) -> None:
        """Fan one batched-worker outcome back out to its member jobs.

        Success commits each member's payload individually (the member
        payloads are byte-identical to what individual runs would have
        produced — the engine layer's contract).  Failure demotes every
        member: each is marked failed and, while attempts remain,
        re-queued for *individual* dispatch so one poisonous lane cannot
        wedge its batch-mates forever.
        """
        with self._lock:
            for queued in members:
                self._running.discard(queued.job_id)
                self._entries.pop(queued.job_id, None)
        if outcome.ok:
            payloads = {
                member["job_id"]: member["payload"]
                for member in outcome.payload.get("_batch", [])
            }
            for queued in members:
                payload = payloads.get(queued.job_id)
                if payload is None:  # pragma: no cover - engine returns all
                    self.cache.mark_failed(
                        queued.job_id, "batch outcome missing this member",
                        outcome.wall_s, requeue=False,
                    )
                    continue
                self.cache.commit(queued.job_id, payload, outcome.wall_s)
            self.breaker.record_success()
            self.metrics.inc(
                f"{PREFIX}_jobs_completed_total",
                "Jobs that finished successfully and entered the cache.",
                amount=float(len(members)),
            )
            self.metrics.observe_service_time(outcome.wall_s)
            return
        self.metrics.inc(
            f"{PREFIX}_worker_restarts_total",
            "Worker processes that died, timed out, or failed their job.",
        )
        for queued in members:
            attempts = self.cache.attempts(queued.job_id)
            requeue = attempts < self.retries + 1
            self.cache.mark_failed(
                queued.job_id,
                outcome.error or "unknown error",
                outcome.wall_s,
                requeue=requeue,
            )
            if requeue:
                self._no_batch.add(queued.job_id)
                self.metrics.inc(
                    f"{PREFIX}_engine_fallback_total",
                    "Engine-aware dispatches that fell back to the "
                    "individual path instead of a shared kernel batch.",
                    reason="batch-member-retry",
                )
                with self._lock:
                    self._buffer.append(queued)
                    self._entries[queued.job_id] = queued
            else:
                self.metrics.inc(
                    f"{PREFIX}_jobs_failed_total",
                    "Jobs that exhausted their attempts and stayed failed.",
                )
