"""The serve wire protocol: submission canonicalization + HTTP framing.

Two halves live here so that :mod:`repro.serve.server` is routing and
lifecycle only:

* **canonicalization** — a client submission (a JSON object) becomes the
  exact :class:`repro.campaign.spec.JobSpec` the campaign engine would
  build for the same work, so the job's SHA-256 content hash — and
  therefore its cache identity — is shared between ``python -m repro
  campaign`` and the daemon.  Key order, omitted defaults, and equivalent
  spellings all collapse to one id; anything that changes the result
  (seed, sweep point, quick flag, replicate) changes the id.

* **HTTP framing** — a deliberately small HTTP/1.1 subset over asyncio
  streams: ``Content-Length`` bodies only, persistent connections by
  default (``Connection: keep-alive`` unless the client asked to close
  or the daemon is draining).  Enough for ``http.client``, ``curl``,
  and Prometheus scrapers; nothing more.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..campaign.spec import JobSpec, get_experiment
from ..errors import ConfigError

__all__ = [
    "PROTOCOL_VERSION",
    "API_PREFIX",
    "Request",
    "canonicalize_submission",
    "read_request",
    "render_response",
]

#: bump on incompatible wire-format change (clients send it, daemon checks)
PROTOCOL_VERSION = 1

API_PREFIX = "/api/v1"

#: request bodies past this size are refused with 413 (a submission is
#: a few hundred bytes; anything larger is a client bug)
MAX_BODY_BYTES = 1 << 20

#: submission keys that are part of the job identity
_SPEC_KEYS = {"eid", "point", "point_index", "quick", "seed", "replicate"}
#: submission keys that are transport metadata, never hashed
_META_KEYS = {"client", "v"}


def canonicalize_submission(data: Mapping[str, Any]) -> Tuple[JobSpec, str]:
    """Turn a submission JSON object into ``(job_spec, client_id)``.

    The spec is validated against the campaign experiment registry (the
    service catalog): the experiment must exist, the point index must be
    in range, and an explicit ``point`` must match the registry's grid —
    otherwise two spellings of the same work would hash apart, or a job
    would be admitted that no worker can run.
    """
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"submission must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - _SPEC_KEYS - _META_KEYS)
    if unknown:
        raise ConfigError(
            f"unknown submission field(s) {', '.join(unknown)}; "
            f"accepted: {', '.join(sorted(_SPEC_KEYS | _META_KEYS))}"
        )
    version = data.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ConfigError(
            f"unsupported serve protocol version {version!r} "
            f"(this daemon speaks version {PROTOCOL_VERSION})"
        )
    eid = data.get("eid")
    if not isinstance(eid, str):
        raise ConfigError("submission needs an 'eid' string (see /api/v1/catalog)")
    experiment = get_experiment(eid)  # raises ConfigError on unknown eid
    quick = data.get("quick", False)
    if not isinstance(quick, bool):
        raise ConfigError(f"'quick' must be a boolean, got {quick!r}")
    replicate = data.get("replicate", 0)
    if not isinstance(replicate, int) or replicate < 0:
        raise ConfigError(f"'replicate' must be a non-negative integer, got {replicate!r}")
    seed = data.get("seed")
    if seed is None:
        seed = experiment.default_seed
    if not isinstance(seed, int):
        raise ConfigError(f"'seed' must be an integer, got {seed!r}")

    points = experiment.points(quick)
    if "point" in data and "point_index" not in data:
        # Submissions may name the sweep point itself; resolve it to its
        # grid position so both spellings share one content hash.
        try:
            point_index = points.index(data["point"])
        except ValueError:
            raise ConfigError(
                f"point {data['point']!r} is not on {eid}'s grid "
                f"(quick={quick}); see /api/v1/catalog"
            ) from None
    else:
        point_index = data.get("point_index", 0)
    if not isinstance(point_index, int) or not 0 <= point_index < len(points):
        raise ConfigError(
            f"'point_index' must be in [0, {len(points)}) for {eid} "
            f"(quick={quick}), got {point_index!r}"
        )
    point = points[point_index]
    if "point" in data and data["point"] != point:
        raise ConfigError(
            f"submitted point {data['point']!r} is not {eid}'s point "
            f"#{point_index} ({point!r}); submit by point_index against "
            "the catalog grid"
        )
    client = data.get("client", "anon")
    if not isinstance(client, str) or not client:
        raise ConfigError(f"'client' must be a non-empty string, got {client!r}")
    spec = JobSpec(
        eid=eid,
        point_index=point_index,
        point=point,
        quick=quick,
        seed=seed,
        replicate=replicate,
    )
    return spec, client


# ----------------------------------------------------------------------
# HTTP framing
# ----------------------------------------------------------------------
_REASONS = {
    200: "OK",
    307: "Temporary Redirect",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; None on clean EOF before a request.

    Raises :class:`ConfigError` on malformed framing or oversized bodies —
    the server maps that to a 400/413 response.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line.strip():
        return None
    try:
        method, path, _version = request_line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError):
        raise ConfigError("malformed HTTP request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise ConfigError("malformed HTTP header") from None
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ConfigError(f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ConfigError(
            f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )
    body = await reader.readexactly(length) if length else b""
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
    keep_alive: bool = False,
) -> bytes:
    """One full HTTP/1.1 response.

    ``keep_alive`` controls the ``Connection`` header: the server's
    per-connection loop passes True while it intends to read another
    request off the same socket, False on close/drain paths.
    """
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body
