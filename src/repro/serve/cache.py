"""The content-addressed result cache behind the daemon.

Identity is the campaign layer's SHA-256 job hash: two submissions that
canonicalize to the same :class:`~repro.campaign.spec.JobSpec` share one
cache entry, whatever their field order or client.  Payloads are stored
*as the canonical JSON text the store committed* and returned verbatim,
so a cache hit is byte-identical to the first computation — across the
in-memory LRU, the SQLite tier, and daemon restarts.

Two tiers:

* an in-memory LRU (``OrderedDict``) for the hot set — hits cost a dict
  move-to-end, no SQLite round trip;
* the :class:`~repro.campaign.store.ResultStore` SQLite database as the
  durable tier — the same schema ``python -m repro campaign`` writes, so
  a finished campaign database can be mounted read-hot as a serve cache
  and a serve cache can be inspected with ``campaign status``.

The store connection is shared across the daemon's threads (asyncio
frontier + scheduler), so every access is serialized behind one lock;
WAL mode on the store keeps any *other* process's readers unblocked.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.spec import JobSpec
from ..campaign.store import JobRow, ResultStore
from ..campaign.storeapi import ResultStoreAPI
from ..errors import ConfigError

__all__ = ["ResultCache"]


class ResultCache:
    """LRU-over-SQLite result cache keyed by job content hash.

    Args:
        path: SQLite database path (``":memory:"`` for ephemeral daemons).
        lru_size: entries kept in the in-memory tier (0 disables it).
        store: an already-built :class:`ResultStoreAPI` to use as the
            durable tier instead of opening ``path`` — how the cluster
            node mounts its peer-backed store behind the same cache.
            The caller keeps responsibility for cross-thread safety of
            the injected store's construction; access is serialized
            behind this cache's lock either way.
    """

    def __init__(
        self,
        path: str,
        lru_size: int = 256,
        store: Optional[ResultStoreAPI] = None,
    ) -> None:
        if lru_size < 0:
            raise ConfigError(f"lru_size must be >= 0, got {lru_size}")
        self._lock = threading.RLock()
        self._store: ResultStoreAPI = (
            store if store is not None else ResultStore(path, cross_thread=True)
        )
        self._lru: "OrderedDict[str, str]" = OrderedDict()
        self._lru_size = lru_size
        # Tag fresh databases so `campaign run` refuses to mix a campaign
        # grid into a serve cache (spec_hash is its refusal key).
        if self._store.get_meta("spec_hash") is None:
            self._store.set_meta("spec_hash", "serve")
            self._store.set_meta("spec", json.dumps({"service": "repro.serve"}))

    @property
    def path(self) -> str:
        return self._store.path

    # -- lookups --------------------------------------------------------
    def lookup(self, job_id: str) -> Optional[str]:
        """The cached payload text for ``job_id``, or None on miss.

        The text is exactly what :meth:`commit` stored — byte-identical
        replay is the whole contract.
        """
        with self._lock:
            text = self._lru.get(job_id)
            if text is not None:
                self._lru.move_to_end(job_id)
                return text
            try:
                row = self._store.get_job(job_id)
            except ConfigError:
                return None
            if row.status != "done" or row.payload is None:
                return None
            self._remember(job_id, row.payload)
            return row.payload

    def job_row(self, job_id: str) -> Optional[JobRow]:
        """The store row for ``job_id`` (status/attempts/provenance), or None."""
        with self._lock:
            try:
                return self._store.get_job(job_id)
            except ConfigError:
                return None

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return self._store.counts()

    # -- admission ------------------------------------------------------
    def admit(self, spec: JobSpec) -> bool:
        """Ensure a pending row exists for ``spec``.

        A brand-new job inserts ``pending``; a previously ``failed`` job is
        re-queued (fresh submission, preserved attempt count).  Returns
        False when the job is already ``done`` (caller should answer from
        cache instead of queueing).
        """
        with self._lock:
            inserted = self._store.add_jobs([spec])
            if inserted:
                return True
            row = self._store.get_job(spec.job_id)
            if row.status == "done":
                return False
            if row.status == "failed":
                self._store.requeue_one(spec.job_id)
            return True

    def retract(self, job_id: str) -> bool:
        """Roll back an admission that never made it into the queue.

        Deletes the job's ``pending`` row iff it has never been attempted
        — the compensation for :meth:`admit` when the admission queue
        refuses the job (429).  Without it the rejected submission would
        survive as a pending row and a restart's recovery pass would
        silently execute work the client was told to retry elsewhere.
        """
        with self._lock:
            return self._store.discard_pending(job_id)

    # -- scheduler side -------------------------------------------------
    def mark_running(self, job_id: str, worker: str) -> None:
        with self._lock:
            self._store.mark_running(job_id, worker)

    def commit(self, job_id: str, payload: dict, wall_s: float) -> str:
        """Record a computed result; returns the canonical payload text."""
        with self._lock:
            self._store.mark_done(job_id, payload, wall_s)
            text = self._store.get_job(job_id).payload
            if text is None:  # pragma: no cover - mark_done always writes
                raise ConfigError(f"store lost the payload for {job_id}")
            self._remember(job_id, text)
            return text

    def adopt(
        self,
        spec: JobSpec,
        payload_text: str,
        wall_s: Optional[float],
        engine: Optional[str] = None,
        kernel_version: Optional[str] = None,
    ) -> bool:
        """Commit a result computed elsewhere, verbatim (cluster fill/steal).

        Delegates to the store's :meth:`~ResultStoreAPI.adopt_done` and
        warms the LRU with the adopted text.  Returns True when the row
        was created or promoted to ``done``; False when it was already
        done (the first, byte-identical copy is kept).
        """
        with self._lock:
            adopted = self._store.adopt_done(
                spec, payload_text, wall_s,
                engine=engine, kernel_version=kernel_version,
            )
            self._remember(spec.job_id, self._store.get_job(spec.job_id).payload)
            return adopted

    def mark_failed(self, job_id: str, error: str, wall_s: Optional[float],
                    requeue: bool) -> None:
        with self._lock:
            self._store.mark_failed(job_id, error, wall_s, requeue=requeue)

    def attempts(self, job_id: str) -> int:
        with self._lock:
            return self._store.get_job(job_id).attempts

    # -- restart recovery -----------------------------------------------
    def recover(self) -> Tuple[List[JobSpec], int]:
        """Re-queue interrupted work after a restart.

        Returns ``(specs, reclaimed)``: every job the previous daemon had
        accepted but not finished (``running`` rows are first reset to
        ``pending`` — the SIGTERM-drain signature), ready for re-admission
        to the queue.
        """
        with self._lock:
            reclaimed = self._store.reset_running()
            specs = [row.job_spec() for row in self._store.pending_jobs()]
            return specs, reclaimed

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._store.close()
            self._lru.clear()

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ------------------------------------------------------
    def _remember(self, job_id: str, text: str) -> None:
        if not self._lru_size:
            return
        self._lru[job_id] = text
        self._lru.move_to_end(job_id)
        while len(self._lru) > self._lru_size:
            self._lru.popitem(last=False)

    def lru_contents(self) -> Sequence[str]:
        """Job ids currently in the memory tier, oldest first (tests)."""
        with self._lock:
            return tuple(self._lru)
