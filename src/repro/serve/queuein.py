"""Admission control: a bounded, client-fair queue with shape batching.

The queue is the daemon's only buffer between the HTTP frontier and the
worker pool, and it is deliberately *bounded*: when it is full the daemon
answers ``429`` with a ``Retry-After`` hint instead of growing without
limit — overload sheds to the clients, never to the host's memory.

Fairness is round-robin across client ids: each client has its own FIFO
and the scheduler's pop rotates through clients, so one client submitting
a thousand jobs cannot starve another submitting one.

Batching happens at pop time: after the round-robin pick, the batch is
topped up with queued jobs of the same *shape* — ``(eid, quick)`` — from
every client (still in rotation order).  Jobs of one shape share warm
caches and comparable runtimes, so dispatching them in one scheduler
round keeps the pool full with homogeneous work.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..campaign.spec import JobSpec
from ..errors import ConfigError

__all__ = ["QueuedJob", "AdmissionQueue", "QueueFull"]


class QueueFull(ConfigError):
    """Internal signal: the bounded queue refused an offer (maps to 429)."""


@dataclass
class QueuedJob:
    """One admitted job waiting for dispatch."""

    spec: JobSpec
    client: str
    job_id: str = field(init=False)

    def __post_init__(self) -> None:
        self.job_id = self.spec.job_id

    @property
    def shape(self) -> Tuple[str, bool]:
        """The batching key: jobs of one shape coalesce into one dispatch."""
        return (self.spec.eid, self.spec.quick)


class AdmissionQueue:
    """Bounded multi-client FIFO with round-robin, shape-batched pops.

    Thread-safe: the asyncio frontier offers, the scheduler thread takes.
    """

    def __init__(self, max_depth: int) -> None:
        if max_depth < 1:
            raise ConfigError(f"queue depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._lock = threading.Condition()
        self._per_client: Dict[str, Deque[QueuedJob]] = {}
        self._rotation: Deque[str] = deque()
        self._queued_ids: Dict[str, QueuedJob] = {}
        self._depth = 0
        self._closed = False

    # -- frontier side --------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def contains(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._queued_ids

    def offer(self, entry: QueuedJob) -> bool:
        """Admit one job.

        Returns False when an identical job (same content hash) is already
        queued — the submission joins the queued one instead of doubling
        the work.  Raises :class:`QueueFull` when the bound is hit.
        """
        with self._lock:
            if self._closed:
                raise QueueFull("queue is draining; daemon is shutting down")
            if entry.job_id in self._queued_ids:
                return False
            if self._depth >= self.max_depth:
                raise QueueFull(
                    f"admission queue is full ({self._depth}/{self.max_depth})"
                )
            fifo = self._per_client.get(entry.client)
            if fifo is None:
                fifo = self._per_client[entry.client] = deque()
                self._rotation.append(entry.client)
            fifo.append(entry)
            self._queued_ids[entry.job_id] = entry
            self._depth += 1
            self._lock.notify()
            return True

    # -- scheduler side -------------------------------------------------
    def take_batch(
        self, max_batch: int, timeout_s: Optional[float] = None
    ) -> List[QueuedJob]:
        """Pop the next round-robin job plus same-shape companions.

        Blocks up to ``timeout_s`` for the first job (None: no wait).
        Returns an empty list on timeout or when the queue is closed and
        empty.
        """
        with self._lock:
            if not self._depth and timeout_s:
                self._lock.wait(timeout=timeout_s)
            if not self._depth:
                return []
            first = self._pop_next()
            batch = [first]
            if max_batch > 1:
                batch.extend(self._pop_matching(first.shape, max_batch - 1))
            self._sweep_idle_clients()
            return batch

    def _pop_next(self) -> QueuedJob:
        """The head of the next non-empty client FIFO, rotating fairly."""
        while True:
            client = self._rotation[0]
            self._rotation.rotate(-1)
            fifo = self._per_client[client]
            if fifo:
                return self._remove(fifo.popleft())

    def _pop_matching(self, shape: Tuple[str, bool], budget: int) -> List[QueuedJob]:
        """Up to ``budget`` queued jobs of ``shape``, in rotation order."""
        matched: List[QueuedJob] = []
        for client in list(self._rotation):
            if len(matched) >= budget:
                break
            fifo = self._per_client[client]
            kept: Deque[QueuedJob] = deque()
            while fifo:
                entry = fifo.popleft()
                if entry.shape == shape and len(matched) < budget:
                    matched.append(self._remove(entry))
                else:
                    kept.append(entry)
            fifo.extend(kept)
        return matched

    def _remove(self, entry: QueuedJob) -> QueuedJob:
        del self._queued_ids[entry.job_id]
        self._depth -= 1
        return entry

    def _sweep_idle_clients(self) -> None:
        """Forget clients whose FIFOs drained, keeping the rotation small."""
        for client in [c for c, fifo in self._per_client.items() if not fifo]:
            del self._per_client[client]
            self._rotation.remove(client)

    def steal(self, max_jobs: int) -> List[QueuedJob]:
        """Victim side of cluster work-stealing: hand queued jobs away.

        Pops up to ``max_jobs`` admitted-but-undispatched jobs in the
        same fair rotation order the scheduler would have used.  The
        caller (the cluster node) keeps the jobs' ``pending`` store rows
        as its safety net — a thief that dies re-admits them — so this
        only transfers *queue position*, never durability.
        """
        with self._lock:
            taken: List[QueuedJob] = []
            while self._depth and len(taken) < max_jobs:
                taken.append(self._pop_next())
            self._sweep_idle_clients()
            return taken

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Refuse further offers and wake any waiting taker."""
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    def snapshot(self) -> List[QueuedJob]:
        """Every queued job, client-grouped (for status and drain audits)."""
        with self._lock:
            return [
                entry
                for client in list(self._rotation)
                for entry in self._per_client.get(client, ())
            ]
