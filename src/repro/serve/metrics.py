"""Service metrics: counters, gauges, and a service-time quantile window.

The daemon exports these at ``GET /metrics`` in the Prometheus text
exposition format (version 0.0.4), so any scraper — or ``curl`` — can
watch queue depth, cache hit ratio, in-flight jobs, and p50/p99 service
time without touching the job store.

Everything here is host-time instrumentation by design: the serve layer
is the part of the system that lives in wall-clock reality (clients,
timeouts, Retry-After hints), which is why ``serve/*`` sits on simlint's
wall-clock allowlist.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["Metrics", "quantile"]

#: metric name prefix, shared by every exported series
PREFIX = "repro_serve"

#: how many recent service times back the quantile estimates
_WINDOW = 1024

#: default histogram buckets (upper bounds) — sized for batch-lane counts
_DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def quantile(samples: List[float], q: float) -> float:
    """Nearest-rank quantile of ``samples`` (which must be non-empty)."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class Metrics:
    """Thread-safe metric registry for one daemon instance.

    Counters only ever increase; gauges are sampled via callbacks at
    render time so they can never drift from the structures they watch
    (the admission queue and scheduler own the truth, the registry only
    reads it).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
        self._counter_help: Dict[str, str] = {}
        self._gauges: Dict[str, Tuple[str, Callable[[], float]]] = {}
        #: name -> (help, buckets, per-bucket counts, +Inf count, sum, count)
        self._histograms: Dict[str, list] = {}
        self._service_times: Deque[float] = deque(maxlen=_WINDOW)
        self._service_count = 0
        self._service_sum = 0.0
        self._started = time.monotonic()

    # -- counters -------------------------------------------------------
    def inc(
        self,
        name: str,
        help_text: str,
        amount: float = 1.0,
        **labels: str,
    ) -> None:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._counter_help.setdefault(name, help_text)
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def counter_value(self, name: str, **labels: str) -> float:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            return self._counters.get(key, 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(
                value for (n, _), value in self._counters.items() if n == name
            )

    # -- gauges ---------------------------------------------------------
    def register_gauge(
        self, name: str, help_text: str, read: Callable[[], float]
    ) -> None:
        with self._lock:
            self._gauges[name] = (help_text, read)

    # -- histograms -----------------------------------------------------
    def observe_histogram(
        self,
        name: str,
        help_text: str,
        value: float,
        buckets: Tuple[float, ...] = _DEFAULT_BUCKETS,
    ) -> None:
        """Record one observation into a (lazily created) histogram.

        Buckets are upper bounds in ascending order; the first call fixes
        them for the series lifetime (later ``buckets`` args are ignored).
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = [
                    help_text, tuple(buckets), [0] * len(buckets), 0, 0.0, 0
                ]
            _, bounds, counts, _, _, _ = hist
            for index, bound in enumerate(bounds):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                hist[3] += 1  # +Inf-only bucket
            hist[4] += value
            hist[5] += 1

    def histogram_count(self, name: str) -> int:
        """Total observations of a histogram (0 if it never fired)."""
        with self._lock:
            hist = self._histograms.get(name)
            return 0 if hist is None else hist[5]

    def histogram_sum(self, name: str) -> float:
        with self._lock:
            hist = self._histograms.get(name)
            return 0.0 if hist is None else hist[4]

    # -- service times --------------------------------------------------
    def observe_service_time(self, seconds: float) -> None:
        with self._lock:
            self._service_times.append(seconds)
            self._service_count += 1
            self._service_sum += seconds

    def service_time_quantiles(self) -> Optional[Dict[str, float]]:
        with self._lock:
            samples = list(self._service_times)
        if not samples:
            return None
        return {"0.5": quantile(samples, 0.5), "0.99": quantile(samples, 0.99)}

    def mean_service_time(self) -> Optional[float]:
        with self._lock:
            if not self._service_count:
                return None
            return self._service_sum / self._service_count

    # -- derived --------------------------------------------------------
    def cache_hit_ratio(self) -> Optional[float]:
        hits = self.counter_total(f"{PREFIX}_cache_hits_total")
        misses = self.counter_total(f"{PREFIX}_cache_misses_total")
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    # -- exposition -----------------------------------------------------
    def render_prometheus(self) -> str:
        """The full registry in Prometheus text format, one stable order."""
        lines: List[str] = []
        with self._lock:
            counters = dict(self._counters)
            counter_help = dict(self._counter_help)
            gauges = dict(self._gauges)
            histograms = {
                name: (h[0], h[1], list(h[2]), h[3], h[4], h[5])
                for name, h in self._histograms.items()
            }
            samples = list(self._service_times)
            service_count = self._service_count
            service_sum = self._service_sum
            uptime = time.monotonic() - self._started
        for name in sorted(counter_help):
            lines.append(f"# HELP {name} {counter_help[name]}")
            lines.append(f"# TYPE {name} counter")
            for (cname, labels), value in sorted(counters.items()):
                if cname != name:
                    continue
                label_text = (
                    "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"
                    if labels
                    else ""
                )
                lines.append(f"{name}{label_text} {_fmt(value)}")
        for name in sorted(gauges):
            help_text, read = gauges[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(float(read()))}")
        for name in sorted(histograms):
            help_text, bounds, counts, inf_count, total, count = histograms[name]
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, bucket_count in zip(bounds, counts):
                cumulative += bucket_count
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            cumulative += inf_count
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(total)}")
            lines.append(f"{name}_count {count}")
        ratio = None
        hits = sum(
            v for (n, _), v in counters.items() if n == f"{PREFIX}_cache_hits_total"
        )
        misses = sum(
            v for (n, _), v in counters.items() if n == f"{PREFIX}_cache_misses_total"
        )
        if hits + misses > 0:
            ratio = hits / (hits + misses)
        lines.append(
            f"# HELP {PREFIX}_cache_hit_ratio Fraction of submissions answered "
            "from the content-addressed cache."
        )
        lines.append(f"# TYPE {PREFIX}_cache_hit_ratio gauge")
        lines.append(f"{PREFIX}_cache_hit_ratio {_fmt(ratio if ratio is not None else 0.0)}")
        name = f"{PREFIX}_service_time_seconds"
        lines.append(
            f"# HELP {name} Per-job service time (queue admission to result commit)."
        )
        lines.append(f"# TYPE {name} summary")
        if samples:
            lines.append(f'{name}{{quantile="0.5"}} {_fmt(quantile(samples, 0.5))}')
            lines.append(f'{name}{{quantile="0.99"}} {_fmt(quantile(samples, 0.99))}')
        lines.append(f"{name}_sum {_fmt(service_sum)}")
        lines.append(f"{name}_count {_fmt(float(service_count))}")
        lines.append(
            f"# HELP {PREFIX}_uptime_seconds Daemon uptime (monotonic host clock)."
        )
        lines.append(f"# TYPE {PREFIX}_uptime_seconds gauge")
        lines.append(f"{PREFIX}_uptime_seconds {_fmt(uptime)}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Integers without a trailing .0, floats as repr (full precision)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
