"""The simulation-as-a-service daemon: asyncio HTTP frontier + lifecycle.

``ServeDaemon`` wires the serve components together and owns their
lifecycle:

* the asyncio HTTP frontier (this module) answers submissions, status
  and result queries, the experiment catalog, ``/metrics`` and
  ``/healthz`` — it never simulates and never blocks on a job;
* the :class:`~repro.serve.scheduler.Scheduler` thread drains the
  :class:`~repro.serve.queuein.AdmissionQueue` onto the campaign
  :class:`~repro.campaign.pool.WorkerPool`;
* the :class:`~repro.serve.cache.ResultCache` answers repeats
  byte-identically with zero recomputation.

Endpoints (all JSON unless noted)::

    POST /api/v1/jobs          submit one canonicalized job
    GET  /api/v1/jobs/<id>     lifecycle status + provenance
    GET  /api/v1/jobs/<id>/result   the cached payload, verbatim bytes
    GET  /api/v1/catalog       the experiment registry (service catalog)
    GET  /healthz              liveness + drain state
    GET  /metrics              Prometheus text format
    POST /api/v1/shutdown      graceful drain (same path as SIGTERM)

Backpressure contract: a full admission queue answers ``429`` with a
``Retry-After`` header estimated from observed service times; while
draining every submission answers ``503``.  Accepted jobs are durable
(a ``pending`` row commits before the submission is acknowledged), so a
SIGTERM between acceptance and execution never loses work — the next
daemon on the same database resumes it.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..campaign.spec import REGISTRY
from ..errors import ChaosCrash, ConfigError, ServeError
from .cache import ResultCache
from .metrics import PREFIX, Metrics
from .protocol import (
    API_PREFIX,
    PROTOCOL_VERSION,
    Request,
    canonicalize_submission,
    read_request,
    render_response,
)
from .queuein import AdmissionQueue, QueueFull, QueuedJob
from .scheduler import Scheduler

__all__ = ["ServeConfig", "ServeDaemon"]

#: chaos-injection shim (see :mod:`repro.chaos.inject`): when armed, called
#: with the crash-point name at ``serve.submit.before-ack`` — after the
#: pending row is durable and the job queued, before the 200 is written.
#: ``None`` (the default) costs one identity check — the frontier never
#: imports chaos.
CHAOS_CRASH_HOOK = None

#: live listening-socket fds, closed in forked children.  Workers forked
#: while a daemon serves inherit its server socket; a worker that outlives
#: the daemon would then hold the port at the OS level (EADDRINUSE on a
#: same-port restart — the cluster audit's kill/restart hits exactly this).
_LISTENER_FDS: Set[int] = set()


def _close_inherited_listeners() -> None:  # pragma: no cover - forked child
    for fd in list(_LISTENER_FDS):
        try:
            os.close(fd)
        except OSError:  # simlint: allow[swallowed-exception]
            pass  # already closed; nothing a worker could do anyway
    _LISTENER_FDS.clear()


os.register_at_fork(after_in_child=_close_inherited_listeners)


@dataclass(frozen=True)
class ServeConfig:
    """Everything a daemon instance needs to start."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port (the daemon reports it)
    db: str = "serve.db"
    workers: int = 2
    max_queue: int = 64
    batch_max: int = 8
    retries: int = 0
    timeout: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 256
    lru_size: int = 256
    start_method: Optional[str] = None
    #: NoC execution engine hint for engine-aware jobs (see repro.engine)
    engine: str = "auto"
    #: fallback Retry-After before any service time has been observed (s)
    retry_after_floor_s: float = 2.0
    #: consecutive infrastructure failures that trip the dispatch breaker
    breaker_threshold: int = 5
    #: seconds the tripped breaker refuses work before a half-open probe
    breaker_cooldown_s: float = 10.0


class ServeDaemon:
    """One serve instance: start, serve, drain.

    Embeddable: ``start()`` runs the asyncio loop on a background thread
    and returns once the socket is bound (``daemon.port`` is then real),
    which is how the tests and the smoke script drive it.  The CLI calls
    ``run_forever()`` instead, which installs SIGTERM/SIGINT handlers and
    blocks until a signal (or ``POST /api/v1/shutdown``) drains it.
    """

    def __init__(self, config: ServeConfig, store=None) -> None:
        self.config = config
        self.metrics = Metrics()
        # ``store`` lets a subclass mount a different ResultStoreAPI tier
        # (the cluster node's peer-backed store) behind the same cache.
        self.cache = ResultCache(config.db, lru_size=config.lru_size, store=store)
        self.queue = AdmissionQueue(max_depth=config.max_queue)
        self.scheduler = Scheduler(
            queue=self.queue,
            cache=self.cache,
            metrics=self.metrics,
            workers=config.workers,
            batch_max=config.batch_max,
            retries=config.retries,
            timeout=config.timeout,
            checkpoint_dir=config.checkpoint_dir,
            checkpoint_every=config.checkpoint_every,
            start_method=config.start_method,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown_s=config.breaker_cooldown_s,
            engine=config.engine,
        )
        self.port: Optional[int] = None
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_done: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.metrics.register_gauge(
            f"{PREFIX}_queue_depth",
            "Jobs admitted and waiting for dispatch.",
            lambda: float(self.queue.depth),
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Bind, recover interrupted work, and serve on a background thread."""
        if self._thread is not None:
            raise ConfigError("daemon already started")
        self._recover()
        self.scheduler.start()
        bound = threading.Event()
        failure: Dict[str, BaseException] = {}
        self._thread = threading.Thread(
            target=self._run_loop,
            args=(bound, failure),
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        bound_ok = bound.wait(timeout=10.0)
        if not bound_ok or "error" in failure:
            # Don't leave a started scheduler thread behind a dead bind.
            self.scheduler.stop()
            if not bound_ok:
                raise ServeError("daemon failed to bind within 10s")
            raise ServeError(f"daemon failed to start: {failure['error']}")

    def run_forever(self) -> int:
        """CLI mode: serve until SIGTERM/SIGINT, then drain gracefully."""
        signal.signal(signal.SIGTERM, lambda *_: self.begin_drain())
        signal.signal(signal.SIGINT, lambda *_: self.begin_drain())
        if self._thread is None:
            self.start()
        self._stopped.wait()
        return 0

    def begin_drain(self) -> None:
        """Refuse new work and stop the daemon (signal-handler safe)."""
        self._draining.set()
        # The actual teardown must not run on the signal frame; hand it to
        # a plain thread so HTTP responses in flight can still complete.
        threading.Thread(target=self.stop, name="repro-serve-drain", daemon=True).start()

    def stop(self) -> None:
        """Drain: stop intake, stop the scheduler (checkpoints flush,
        interrupted jobs return to ``pending``), stop the loop."""
        if self._stopped.is_set():
            return
        self._draining.set()
        self.scheduler.stop()
        loop, done = self._loop, self._loop_done
        if loop is not None and done is not None:
            try:
                loop.call_soon_threadsafe(done.set)
            except RuntimeError:  # simlint: allow[swallowed-exception]
                pass  # loop already closed (startup failure path)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.cache.close()
        self._stopped.set()

    def _recover(self) -> None:
        """Re-admit every accepted-but-unfinished job from the store."""
        specs, reclaimed = self.cache.recover()
        for spec in specs:
            try:
                self.queue.offer(QueuedJob(spec=spec, client="recovered"))
            except QueueFull:
                # Deeper backlogs than the queue bound stay pending in the
                # store; the scheduler re-admits them as capacity frees up
                # via subsequent recover passes on restart.  Record it.
                self.metrics.inc(
                    f"{PREFIX}_recovery_overflow_total",
                    "Recovered jobs that exceeded the queue bound at startup.",
                )
                break
        if specs:
            self.metrics.inc(
                f"{PREFIX}_recovered_jobs_total",
                "Accepted jobs re-admitted after a restart.",
                amount=float(len(specs)),
            )
        if reclaimed:
            self.metrics.inc(
                f"{PREFIX}_reclaimed_running_total",
                "Jobs a previous daemon left running (drained or killed).",
                amount=float(reclaimed),
            )

    # -- asyncio plumbing ----------------------------------------------
    def _run_loop(self, bound: threading.Event, failure: Dict[str, BaseException]) -> None:
        try:
            asyncio.run(self._serve(bound))
        except BaseException as exc:  # surfaced to start() via `failure`
            failure["error"] = exc
            bound.set()
        finally:
            self._stopped.set()

    async def _serve(self, bound: threading.Event) -> None:
        self._loop = asyncio.get_running_loop()
        self._loop_done = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        listener_fd = server.sockets[0].fileno()
        _LISTENER_FDS.add(listener_fd)
        bound.set()
        try:
            async with server:
                await self._loop_done.wait()
        finally:
            _LISTENER_FDS.discard(listener_fd)

    async def _handle_connection(self, reader, writer) -> None:
        # Persistent connections: keep answering requests off one socket
        # until the client closes (or asks to), framing fails, or the
        # daemon drains.  Clients that pipeline submit/status/result reuse
        # one TCP handshake instead of paying one per poll.
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Loop teardown (abrupt kill) cancelled us mid-read; the
            # socket dies with the loop — nothing to clean up or log.
            return

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except (ConfigError, asyncio.IncompleteReadError) as exc:
                    writer.write(_json_response(400, {"error": str(exc)}))
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload, raw, headers = self._route(request)
                keep_alive = (
                    request.headers.get("connection", "").lower() != "close"
                    and not self._draining.is_set()
                )
                if raw is not None:
                    body, content_type = raw
                    writer.write(
                        render_response(
                            status, body, content_type,
                            extra_headers=headers, keep_alive=keep_alive,
                        )
                    )
                else:
                    writer.write(
                        _json_response(status, payload, headers, keep_alive=keep_alive)
                    )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, BrokenPipeError):  # client went away mid-answer
            return
        except ChaosCrash:
            # Simulated death between durable admission and the ack: the
            # client sees exactly what a real crash gives it — a dropped
            # connection and no acknowledgement — while the in-process
            # harness keeps the loop alive to observe the recovery.  (In
            # crash_mode="exit" the process already died before this.)
            writer.transport.abort()
            return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                return

    # -- routing --------------------------------------------------------
    def _route(
        self, request: Request
    ) -> Tuple[int, Any, Optional[Tuple[bytes, str]], Optional[Dict[str, str]]]:
        """Dispatch one request; returns (status, json, raw-body, headers)."""
        method, path = request.method, request.path.rstrip("/")
        path = path or "/"
        self.metrics.inc(
            f"{PREFIX}_requests_total",
            "HTTP requests, by endpoint.",
            endpoint=_endpoint_label(method, path),
        )
        try:
            if method == "GET" and path == "/healthz":
                body = {
                    "ok": True,
                    "draining": self._draining.is_set(),
                    "protocol": PROTOCOL_VERSION,
                    "circuit": self.scheduler.breaker.describe(),
                    "scheduler_crashed": self.scheduler.crashed,
                }
                body.update(self._healthz_extra())
                return 200, body, None, None
            if method == "GET" and path == "/metrics":
                body = self.metrics.render_prometheus().encode("utf-8")
                return 200, None, (body, "text/plain; version=0.0.4"), None
            if method == "GET" and path == f"{API_PREFIX}/catalog":
                return 200, self._catalog(), None, None
            if method == "POST" and path == f"{API_PREFIX}/jobs":
                return self._submit(request)
            if method == "GET" and path.startswith(f"{API_PREFIX}/jobs/"):
                tail = path[len(f"{API_PREFIX}/jobs/"):]
                if tail.endswith("/result"):
                    return self._result(tail[: -len("/result")])
                if "/" not in tail:
                    return self._status(tail)
            if method == "POST" and path == f"{API_PREFIX}/shutdown":
                self.begin_drain()
                return 200, {"ok": True, "draining": True}, None, None
            extra = self._route_extra(request, method, path)
            if extra is not None:
                return extra
            return 404, {"error": f"no route for {method} {path}"}, None, None
        except ConfigError as exc:
            return 400, {"error": str(exc)}, None, None

    # -- cluster extension hooks ----------------------------------------
    def _route_extra(self, request: Request, method: str, path: str):
        """Subclass hook: extra routes consulted before the 404.

        Returns a ``_route``-shaped tuple, or None when the path is not
        handled.  The single-node daemon serves nothing extra.
        """
        return None

    def _healthz_extra(self) -> Dict[str, Any]:
        """Subclass hook: extra ``/healthz`` fields (cluster ring state)."""
        return {}

    def _redirect_for(self, spec):
        """Subclass hook: route a cache-missed submission elsewhere.

        Called after the cache lookup missed and before the job is
        admitted locally.  A cluster node answers a 307 to the ring
        owner here; the single-node daemon always executes locally.
        Returns a ``_route``-shaped tuple, or None to admit locally.
        """
        del spec
        return None

    def _lookup_redirect(self, job_id: str, suffix: str = ""):
        """Subclass hook: route a status/result miss elsewhere.

        Called when ``GET /jobs/<id>`` (or ``.../result``) finds no local
        row.  A cluster node answers a 307 to the ring owner so pollers
        can follow an in-flight job that was redirected at submit time;
        the single-node daemon keeps the plain 404.
        """
        del job_id, suffix
        return None

    # -- endpoint bodies -------------------------------------------------
    def _submit(self, request: Request):
        if self._draining.is_set():
            return 503, {"error": "daemon is draining; resubmit to the next instance"}, None, None
        breaker = self.scheduler.breaker
        if breaker.blocked:
            # Accepting work the dispatch path cannot durably finish would
            # only grow an unservable backlog; refuse until the cooldown
            # lets a probe through.
            retry_after = max(1, round(breaker.retry_after_s()))
            self.metrics.inc(
                f"{PREFIX}_breaker_rejections_total",
                "Submissions refused with 503 while the breaker was open.",
            )
            return 503, {
                "error": "dispatch circuit breaker is open "
                "(infrastructure failures); retry later",
                "circuit": breaker.describe(),
                "retry_after_s": retry_after,
            }, None, {"Retry-After": str(retry_after)}
        spec, client = canonicalize_submission(request.json())
        job_id = spec.job_id
        cached = self.cache.lookup(job_id)
        if cached is not None:
            self.metrics.inc(
                f"{PREFIX}_cache_hits_total",
                "Submissions answered from the content-addressed cache.",
            )
            return 200, {
                "job_id": job_id,
                "status": "done",
                "cached": True,
            }, None, None
        self.metrics.inc(
            f"{PREFIX}_cache_misses_total",
            "Submissions that required (or joined) a computation.",
        )
        redirect = self._redirect_for(spec)
        if redirect is not None:
            return redirect
        if self.queue.contains(job_id) or self.scheduler.is_tracked(job_id):
            # Identical work is already on its way; this submission joins it.
            return 200, {
                "job_id": job_id,
                "status": "queued",
                "cached": False,
                "joined": True,
            }, None, None
        if not self.cache.admit(spec):
            # A racing duplicate completed between lookup and admit.
            return 200, {"job_id": job_id, "status": "done", "cached": True}, None, None
        try:
            self.queue.offer(QueuedJob(spec=spec, client=client))
        except QueueFull as exc:
            # Roll the admission back: the client is being told to retry
            # elsewhere, so the pending row must not survive for a
            # restart's recovery pass to execute behind its back.
            self.cache.retract(job_id)
            retry_after = self._retry_after_s()
            self.metrics.inc(
                f"{PREFIX}_rejected_total",
                "Submissions refused with 429 backpressure.",
            )
            return 429, {
                "error": str(exc),
                "retry_after_s": retry_after,
            }, None, {"Retry-After": str(retry_after)}
        hook = CHAOS_CRASH_HOOK
        if hook is not None:
            # The accepted-but-unacked window the durability contract
            # exists for: the pending row is committed, the job queued,
            # and the 200 not yet written.
            hook("serve.submit.before-ack")
        return 200, {
            "job_id": job_id,
            "status": "queued",
            "cached": False,
            "queue_depth": self.queue.depth,
        }, None, None

    def _status(self, job_id: str):
        row = self.cache.job_row(job_id)
        if row is None:
            redirect = self._lookup_redirect(job_id)
            if redirect is not None:
                return redirect
            return 404, {"error": f"unknown job id {job_id!r}"}, None, None
        status = row.status
        if status == "pending" and (
            self.queue.contains(job_id) or self.scheduler.is_tracked(job_id)
        ):
            status = "queued"
        body = {
            "job_id": job_id,
            "status": "running" if job_id in self.scheduler.running_ids() else status,
            "eid": row.eid,
            "attempts": row.attempts,
            "error": row.error,
            "wall_s": row.wall_s,
            "worker": row.worker,
        }
        return 200, body, None, None

    def _result(self, job_id: str):
        row = self.cache.job_row(job_id)
        if row is None:
            redirect = self._lookup_redirect(job_id, suffix="/result")
            if redirect is not None:
                return redirect
            return 404, {"error": f"unknown job id {job_id!r}"}, None, None
        text = self.cache.lookup(job_id)
        if text is None:
            return 404, {
                "error": f"job {job_id} is {row.status}, not done",
                "status": row.status,
            }, None, None
        # Verbatim stored bytes: the byte-identical replay contract.
        return 200, None, (text.encode("utf-8"), "application/json"), None

    def _catalog(self) -> dict:
        experiments = {}
        for eid in sorted(REGISTRY, key=lambda e: (len(e), e)):
            experiment = REGISTRY[eid]
            experiments[eid] = {
                "default_seed": experiment.default_seed,
                "host_time_columns": list(experiment.host_time_columns),
                "points": {
                    "quick": len(experiment.points(True)),
                    "full": len(experiment.points(False)),
                },
            }
        return {"protocol": PROTOCOL_VERSION, "experiments": experiments}

    def _retry_after_s(self) -> int:
        """Seconds until capacity plausibly frees up, from observed times."""
        mean = self.metrics.mean_service_time()
        if mean is None:
            estimate = self.config.retry_after_floor_s
        else:
            estimate = mean * (self.queue.depth + 1) / max(1, self.config.workers)
        return max(1, min(300, round(estimate)))


def _endpoint_label(method: str, path: str) -> str:
    """Collapse per-job paths to one label so cardinality stays bounded."""
    if path.startswith(f"{API_PREFIX}/jobs/"):
        return "result" if path.endswith("/result") else "status"
    if path == f"{API_PREFIX}/jobs":
        return "submit"
    if path == f"{API_PREFIX}/catalog":
        return "catalog"
    if path in ("/healthz", "/metrics"):
        return path.strip("/")
    if path == f"{API_PREFIX}/shutdown":
        return "shutdown"
    if path.startswith("/cluster/"):
        return "cluster"
    return "other"


def _json_response(
    status: int,
    payload: Any,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = False,
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return render_response(
        status, body, "application/json",
        extra_headers=headers, keep_alive=keep_alive,
    )
