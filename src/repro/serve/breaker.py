"""A consecutive-failure circuit breaker for the serve substrate.

The scheduler records an infrastructure failure (store commit error,
worker spawn failure) after every dispatch-loop incident and a success
after every *committed* outcome.  Once ``threshold`` consecutive failures
accumulate the breaker **opens**: the frontier answers submissions with
503 + ``Retry-After`` instead of accepting work it cannot durably finish,
and the scheduler stops dispatching.  After ``cooldown_s`` the breaker
goes **half-open** — exactly one probe dispatch is allowed through; its
success closes the breaker, its failure reopens it for another cooldown.

Counting *consecutive* failures (reset on any success) rather than a
failure rate keeps the breaker deadline-free and deterministic for tests:
a healthy store never trips it, a persistently failing one always does,
and the trip point does not depend on traffic volume.

The clock is injectable so tests can step time instead of sleeping; the
default is ``time.monotonic`` (sanctioned in the serve layer — this is
host infrastructure, not simulated time).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..errors import ConfigError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Trip after ``threshold`` consecutive failures; cool down and probe.

    Args:
        threshold: consecutive failures that open the breaker (>= 1).
        cooldown_s: seconds the breaker stays open before allowing one
            half-open probe.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 10.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if threshold < 1:
            raise ConfigError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ConfigError(f"breaker cooldown must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = "closed"  # "closed" | "open" | "half-open"
        self._consecutive = 0
        self._opened_at = 0.0
        self._last_cause = ""
        #: how many times the breaker has tripped open, ever
        self.trips = 0

    # -- state ----------------------------------------------------------
    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (cooldown-aware)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            # Cooldown elapsed: the next dispatch is the half-open probe.
            self._state = "half-open"
        return self._state

    @property
    def blocked(self) -> bool:
        """True while new work must be refused (open, cooldown running)."""
        return self.state == "open"

    def retry_after_s(self) -> float:
        """Seconds until the cooldown admits a probe (0 when not open)."""
        with self._lock:
            if self._state_locked() != "open":
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    # -- transitions ----------------------------------------------------
    def record_failure(self, cause: str = "") -> bool:
        """Count one infrastructure failure; returns True if now open.

        In half-open state a single failure reopens immediately — the
        probe proved the fault is still there.
        """
        with self._lock:
            self._consecutive += 1
            self._last_cause = cause
            state = self._state_locked()
            if state == "half-open" or (
                state == "closed" and self._consecutive >= self.threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self.trips += 1
            return self._state == "open"

    def record_success(self) -> None:
        """One unit of work fully succeeded: reset and close."""
        with self._lock:
            self._consecutive = 0
            self._last_cause = ""
            self._state = "closed"

    def describe(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/healthz`` and 503 bodies."""
        with self._lock:
            state = self._state_locked()
            return {
                "state": state,
                "consecutive_failures": self._consecutive,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "trips": self.trips,
                "last_cause": self._last_cause,
            }
