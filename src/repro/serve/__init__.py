"""``repro.serve`` — simulation-as-a-service over the experiment registry.

A stdlib-only (asyncio + JSON-over-HTTP) daemon that turns the E1-E11
experiment kernels and the reciprocal-abstraction co-simulator into
endpoints many concurrent clients can hit cheaply and safely:

* **content-addressed caching** — jobs canonicalize to the campaign
  layer's SHA-256-hashed :class:`~repro.campaign.spec.JobSpec`; repeats
  return the byte-identical stored payload with zero recomputation,
  across restarts (SQLite tier) and with an in-memory LRU in front;
* **batching** — queued jobs sharing an ``(eid, quick)`` shape coalesce
  into one dispatch round on the fresh-process-per-job
  :class:`~repro.campaign.pool.WorkerPool`;
* **admission control** — a bounded queue with round-robin client
  fairness; overload answers ``429`` + ``Retry-After`` instead of
  growing, and SIGTERM drains gracefully (checkpoints flush, the queue
  persists, a restart resumes every accepted job exactly once);
* **observability** — ``/metrics`` in Prometheus text format: queue
  depth, cache hit ratio, jobs in flight, p50/p99 service time.

Start it with ``python -m repro serve start``; drive it with
:class:`ServeClient` or ``python -m repro serve submit/status/result``.
"""

from .cache import ResultCache
from .client import ServeClient
from .metrics import Metrics
from .protocol import PROTOCOL_VERSION, canonicalize_submission
from .queuein import AdmissionQueue, QueuedJob, QueueFull
from .scheduler import Scheduler
from .server import ServeConfig, ServeDaemon

__all__ = [
    "AdmissionQueue",
    "Metrics",
    "PROTOCOL_VERSION",
    "QueueFull",
    "QueuedJob",
    "ResultCache",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "canonicalize_submission",
]
