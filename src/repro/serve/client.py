"""``ServeClient`` — the programmatic face of the serve daemon.

A thin, dependency-free (stdlib ``http.client``) synchronous client.
Submissions are plain keyword arguments; the client never computes job
hashes itself — identity is the daemon's business — but it does surface
the daemon's backpressure contract as typed exceptions:

* :class:`repro.errors.BackpressureError` on ``429`` (carries the
  daemon's ``Retry-After`` estimate);
* :class:`repro.errors.ServeError` on any other non-2xx answer or
  transport failure (carries the HTTP status).

Transient failures — a dropped connection (the daemon restarting, a
chaos-injected crash before the ack) or a ``429`` shed — are retried
automatically with capped exponential backoff plus jitter, honoring the
daemon's ``Retry-After`` estimate.  Every request is idempotent (job
identity is the content hash, so a resubmission joins rather than
duplicates), which is what makes blanket retry safe.  ``retries=0`` is
the escape hatch restoring single-attempt semantics.

``wait()`` polls status until the job completes (exponential poll
interval, capped); ``submit_and_wait()`` is the one-call happy path the
CLI and the smoke script use.

Transport: connections are kept alive and pooled per ``(host, port)``
target, so a submit/poll/result sequence rides one TCP handshake, and
``307`` redirects from a cluster's non-owner nodes are followed
transparently (same method and body, bounded hop count) — the client
ends up holding one pooled socket per ring node it has spoken to.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from ..errors import BackpressureError, ServeError
from ..util import Rng, derive_seed
from .protocol import API_PREFIX, PROTOCOL_VERSION

__all__ = ["ServeClient"]

#: 307 hops followed per logical request before giving up (a routing loop
#: in the cluster would otherwise bounce a submission forever)
MAX_REDIRECTS = 4


class ServeClient:
    """Talk to one serve daemon.

    Args:
        host: daemon host.
        port: daemon port.
        client_id: fairness identity — the daemon round-robins across
            client ids, so share one id per logical tenant.
        timeout_s: per-request socket timeout.
        retries: extra attempts after a transient failure (connection
            error or 429 shed).  0 restores single-attempt semantics —
            each 429 then raises :class:`BackpressureError` immediately.
        backoff_s: base retry delay; attempt ``n`` waits about
            ``backoff_s * 2**n``, jittered to half–1.5× so a burst of
            rejected clients does not retry in lockstep.
        backoff_cap_s: ceiling on any single retry delay (also caps an
            honored ``Retry-After``, so a pathological estimate cannot
            park the client for minutes).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8421,
        client_id: str = "anon",
        timeout_s: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.25,
        backoff_cap_s: float = 8.0,
    ) -> None:
        if retries < 0:
            raise ServeError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0 or backoff_cap_s < 0:
            raise ServeError("backoff delays must be >= 0")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        # Seeded per client id: deterministic for tests, decorrelated
        # across the tenants that matter for the thundering-herd case.
        self._rng = Rng(derive_seed(0, "serve-client", client_id), "backoff")
        # Keep-alive pool: one cached connection per (host, port) target,
        # checked out under the lock so a multi-threaded caller never
        # shares a socket mid-request.  Redirect targets get their own
        # pooled connection, so a cluster client holds one socket per
        # node it has talked to.
        self._pool_lock = threading.Lock()
        self._pool: Dict[Tuple[str, int], http.client.HTTPConnection] = {}
        #: sockets actually opened (tests assert reuse keeps this at 1)
        self.connections_opened = 0
        #: 307/308 redirects transparently followed
        self.redirects_followed = 0

    # -- submissions ----------------------------------------------------
    def submit(
        self,
        eid: str,
        point_index: Optional[int] = None,
        point: Any = None,
        quick: bool = False,
        seed: Optional[int] = None,
        replicate: int = 0,
    ) -> Dict[str, Any]:
        """Submit one job; returns the daemon's acknowledgement.

        The acknowledgement carries ``job_id`` (the content hash),
        ``status`` (``done`` for a cache hit, else ``queued``) and
        ``cached``.  Raises :class:`BackpressureError` when the daemon
        sheds load.
        """
        body: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "eid": eid,
            "quick": quick,
            "replicate": replicate,
            "client": self.client_id,
        }
        if point_index is not None:
            body["point_index"] = point_index
        if point is not None:
            body["point"] = point
        if seed is not None:
            body["seed"] = seed
        status, payload, headers = self._request("POST", f"{API_PREFIX}/jobs", body)
        if status == 429:
            retry_after = float(
                payload.get("retry_after_s", headers.get("retry-after", 1))
            )
            raise BackpressureError(
                payload.get("error", "queue full"), retry_after_s=retry_after
            )
        self._raise_unless_ok(status, payload)
        return payload

    def status(self, job_id: str) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"{API_PREFIX}/jobs/{job_id}")
        self._raise_unless_ok(status, payload)
        return payload

    def result_text(self, job_id: str) -> str:
        """The job's payload as verbatim text (byte-identical contract)."""
        status, _, _, raw = self._request_raw("GET", f"{API_PREFIX}/jobs/{job_id}/result")
        if status != 200:
            payload = _parse_json(raw)
            raise ServeError(
                payload.get("error", f"result fetch failed ({status})"), status=status
            )
        return raw.decode("utf-8")

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_text(job_id))

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.1,
        poll_cap_s: float = 2.0,
    ) -> Dict[str, Any]:
        """Poll until the job is ``done``; returns its final status.

        The poll interval starts at ``poll_s`` and doubles up to
        ``poll_cap_s``: short jobs are noticed within ~100 ms, long jobs
        cost a couple of status requests per second of runtime instead of
        ten.  Raises :class:`ServeError` when the job fails or the wait
        times out (host wall clock: this module is on the serve allowlist).
        """
        deadline = time.monotonic() + timeout_s
        interval = poll_s
        while True:
            state = self.status(job_id)
            if state["status"] == "done":
                return state
            if state["status"] == "failed":
                raise ServeError(
                    f"job {job_id} failed after {state['attempts']} attempt(s): "
                    f"{state.get('error')}",
                    status=200,
                )
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {state['status']} after {timeout_s}s"
                )
            time.sleep(interval)
            interval = min(poll_cap_s, interval * 2.0)

    def submit_and_wait(
        self, eid: str, timeout_s: float = 300.0, **kwargs: Any
    ) -> Dict[str, Any]:
        """Submit, wait, and fetch the result payload in one call."""
        ack = self.submit(eid, **kwargs)
        if ack["status"] != "done":
            self.wait(ack["job_id"], timeout_s=timeout_s)
        return self.result(ack["job_id"])

    # -- daemon introspection -------------------------------------------
    def catalog(self) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"{API_PREFIX}/catalog")
        self._raise_unless_ok(status, payload)
        return payload

    def health(self) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", "/healthz")
        self._raise_unless_ok(status, payload)
        return payload

    def metrics_text(self) -> str:
        status, _, _, raw = self._request_raw("GET", "/metrics")
        if status != 200:
            raise ServeError(f"metrics fetch failed ({status})", status=status)
        return raw.decode("utf-8")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain (the remote spelling of SIGTERM)."""
        status, payload, _ = self._request("POST", f"{API_PREFIX}/shutdown", {})
        self._raise_unless_ok(status, payload)
        return payload

    # -- plumbing -------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        status, headers, _, raw = self._request_raw(method, path, body)
        return status, _parse_json(raw), headers

    def _request_raw(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], str, bytes]:
        """One request with transparent transient-failure retry.

        Connection errors and ``429`` sheds consume retry attempts with
        jittered, capped exponential backoff; any other answer (including
        5xx — the daemon *spoke*, it is not transiently unreachable) is
        returned to the caller as-is.  With ``retries=0`` the first
        failure surfaces immediately.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except (ConnectionError, OSError) as exc:
                if attempt >= self.retries:
                    raise ServeError(
                        f"cannot reach serve daemon at {self.host}:{self.port} "
                        f"after {attempt + 1} attempt(s): {exc}"
                    ) from exc
                time.sleep(self._backoff_delay(attempt))
                attempt += 1
                continue
            except _Shed as shed:
                if attempt >= self.retries:
                    return shed.response
                time.sleep(self._backoff_delay(attempt, shed.retry_after_s))
                attempt += 1

    def _request_once(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], str, bytes]:
        """One logical request: pooled keep-alive exchange + 307 follow.

        A ``307``/``308`` answer with a ``Location`` header (a cluster
        node redirecting to the ring owner) is followed transparently —
        same method, same body, up to :data:`MAX_REDIRECTS` hops — and
        each hop's target keeps its own pooled connection.
        """
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        target = (self.host, self.port)
        redirects = 0
        while True:
            result = self._exchange(target, method, path, payload, headers)
            status, response_headers, _, _ = result
            if status in (307, 308) and redirects < MAX_REDIRECTS:
                location = response_headers.get("location")
                if location:
                    target, path = _resolve_redirect(target, location)
                    redirects += 1
                    self.redirects_followed += 1
                    continue
            if status == 429:
                try:
                    retry_after = float(response_headers.get("retry-after", 1.0))
                except ValueError:
                    retry_after = 1.0
                raise _Shed(result, retry_after)
            return result

    def _exchange(
        self,
        target: Tuple[str, int],
        method: str,
        path: str,
        payload: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[int, Dict[str, str], str, bytes]:
        """One HTTP exchange against ``target`` over a pooled connection.

        A reused keep-alive socket may have been closed server-side
        between requests (daemon drain, idle timeout); that exact failure
        retries once on a fresh connection without consuming the caller's
        transient-retry budget — a stale socket is bookkeeping, not an
        unreachable daemon.
        """
        for fresh in (False, True):
            conn = None if fresh else self._checkout(target)
            reused = conn is not None
            if conn is None:
                conn = http.client.HTTPConnection(
                    target[0], target[1], timeout=self.timeout_s
                )
                self.connections_opened += 1
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (http.client.BadStatusLine, http.client.RemoteDisconnected,
                    ConnectionError, OSError):
                conn.close()
                if reused:
                    continue  # stale keep-alive socket: one fresh retry
                raise
            response_headers = {k.lower(): v for k, v in response.getheaders()}
            if response.will_close:
                conn.close()
            else:
                self._checkin(target, conn)
            return response.status, response_headers, response.reason, raw
        raise ServeError("unreachable")  # pragma: no cover - loop always returns

    def _checkout(self, target: Tuple[str, int]):
        with self._pool_lock:
            return self._pool.pop(target, None)

    def _checkin(self, target: Tuple[str, int], conn) -> None:
        with self._pool_lock:
            parked = self._pool.setdefault(target, conn)
        if parked is not conn:  # another thread refilled the slot first
            conn.close()

    def close(self) -> None:
        """Close every pooled keep-alive connection."""
        with self._pool_lock:
            conns = list(self._pool.values())
            self._pool.clear()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _backoff_delay(
        self, attempt: int, retry_after_s: Optional[float] = None
    ) -> float:
        """Jittered exponential delay before retry ``attempt + 1``.

        An honored ``Retry-After`` raises the delay to at least the
        daemon's estimate; the cap bounds both, so a pathological header
        can never park the client for minutes.
        """
        delay = min(self.backoff_cap_s, self.backoff_s * (2.0 ** attempt))
        delay *= 0.5 + self._rng.random()  # jitter: half to 1.5x
        if retry_after_s is not None:
            delay = max(delay, retry_after_s)
        return min(self.backoff_cap_s, delay)

    @staticmethod
    def _raise_unless_ok(status: int, payload: Dict[str, Any]) -> None:
        if not 200 <= status < 300:
            raise ServeError(
                payload.get("error", f"request failed ({status})"), status=status
            )


class _Shed(Exception):
    """Internal: a 429 answer, carried through the retry loop.

    Never escapes :meth:`ServeClient._request_raw` — once attempts are
    exhausted the original response is returned and the caller's 429
    handling (``BackpressureError``) takes over.
    """

    def __init__(self, response, retry_after_s: float) -> None:
        super().__init__("429")
        self.response = response
        self.retry_after_s = retry_after_s


def _resolve_redirect(
    target: Tuple[str, int], location: str
) -> Tuple[Tuple[str, int], str]:
    """Turn a ``Location`` header into the next ``(host, port)`` and path.

    Absolute URLs (the cluster's cross-node form) switch targets; bare
    paths stay on the current one.
    """
    parts = urllib.parse.urlsplit(location)
    if parts.netloc:
        host = parts.hostname or target[0]
        port = parts.port or 80
        target = (host, port)
    path = parts.path or "/"
    if parts.query:
        path = f"{path}?{parts.query}"
    return target, path


def _parse_json(raw: bytes) -> Dict[str, Any]:
    try:
        parsed = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    return parsed if isinstance(parsed, dict) else {}
