"""``ServeClient`` — the programmatic face of the serve daemon.

A thin, dependency-free (stdlib ``http.client``) synchronous client.
Submissions are plain keyword arguments; the client never computes job
hashes itself — identity is the daemon's business — but it does surface
the daemon's backpressure contract as typed exceptions:

* :class:`repro.errors.BackpressureError` on ``429`` (carries the
  daemon's ``Retry-After`` estimate);
* :class:`repro.errors.ServeError` on any other non-2xx answer or
  transport failure (carries the HTTP status).

Transient failures — a dropped connection (the daemon restarting, a
chaos-injected crash before the ack) or a ``429`` shed — are retried
automatically with capped exponential backoff plus jitter, honoring the
daemon's ``Retry-After`` estimate.  Every request is idempotent (job
identity is the content hash, so a resubmission joins rather than
duplicates), which is what makes blanket retry safe.  ``retries=0`` is
the escape hatch restoring single-attempt semantics.

``wait()`` polls status until the job completes (exponential poll
interval, capped); ``submit_and_wait()`` is the one-call happy path the
CLI and the smoke script use.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import BackpressureError, ServeError
from ..util import Rng, derive_seed
from .protocol import API_PREFIX, PROTOCOL_VERSION

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to one serve daemon.

    Args:
        host: daemon host.
        port: daemon port.
        client_id: fairness identity — the daemon round-robins across
            client ids, so share one id per logical tenant.
        timeout_s: per-request socket timeout.
        retries: extra attempts after a transient failure (connection
            error or 429 shed).  0 restores single-attempt semantics —
            each 429 then raises :class:`BackpressureError` immediately.
        backoff_s: base retry delay; attempt ``n`` waits about
            ``backoff_s * 2**n``, jittered to half–1.5× so a burst of
            rejected clients does not retry in lockstep.
        backoff_cap_s: ceiling on any single retry delay (also caps an
            honored ``Retry-After``, so a pathological estimate cannot
            park the client for minutes).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8421,
        client_id: str = "anon",
        timeout_s: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.25,
        backoff_cap_s: float = 8.0,
    ) -> None:
        if retries < 0:
            raise ServeError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0 or backoff_cap_s < 0:
            raise ServeError("backoff delays must be >= 0")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        # Seeded per client id: deterministic for tests, decorrelated
        # across the tenants that matter for the thundering-herd case.
        self._rng = Rng(derive_seed(0, "serve-client", client_id), "backoff")

    # -- submissions ----------------------------------------------------
    def submit(
        self,
        eid: str,
        point_index: Optional[int] = None,
        point: Any = None,
        quick: bool = False,
        seed: Optional[int] = None,
        replicate: int = 0,
    ) -> Dict[str, Any]:
        """Submit one job; returns the daemon's acknowledgement.

        The acknowledgement carries ``job_id`` (the content hash),
        ``status`` (``done`` for a cache hit, else ``queued``) and
        ``cached``.  Raises :class:`BackpressureError` when the daemon
        sheds load.
        """
        body: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "eid": eid,
            "quick": quick,
            "replicate": replicate,
            "client": self.client_id,
        }
        if point_index is not None:
            body["point_index"] = point_index
        if point is not None:
            body["point"] = point
        if seed is not None:
            body["seed"] = seed
        status, payload, headers = self._request("POST", f"{API_PREFIX}/jobs", body)
        if status == 429:
            retry_after = float(
                payload.get("retry_after_s", headers.get("retry-after", 1))
            )
            raise BackpressureError(
                payload.get("error", "queue full"), retry_after_s=retry_after
            )
        self._raise_unless_ok(status, payload)
        return payload

    def status(self, job_id: str) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"{API_PREFIX}/jobs/{job_id}")
        self._raise_unless_ok(status, payload)
        return payload

    def result_text(self, job_id: str) -> str:
        """The job's payload as verbatim text (byte-identical contract)."""
        status, _, _, raw = self._request_raw("GET", f"{API_PREFIX}/jobs/{job_id}/result")
        if status != 200:
            payload = _parse_json(raw)
            raise ServeError(
                payload.get("error", f"result fetch failed ({status})"), status=status
            )
        return raw.decode("utf-8")

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_text(job_id))

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.1,
        poll_cap_s: float = 2.0,
    ) -> Dict[str, Any]:
        """Poll until the job is ``done``; returns its final status.

        The poll interval starts at ``poll_s`` and doubles up to
        ``poll_cap_s``: short jobs are noticed within ~100 ms, long jobs
        cost a couple of status requests per second of runtime instead of
        ten.  Raises :class:`ServeError` when the job fails or the wait
        times out (host wall clock: this module is on the serve allowlist).
        """
        deadline = time.monotonic() + timeout_s
        interval = poll_s
        while True:
            state = self.status(job_id)
            if state["status"] == "done":
                return state
            if state["status"] == "failed":
                raise ServeError(
                    f"job {job_id} failed after {state['attempts']} attempt(s): "
                    f"{state.get('error')}",
                    status=200,
                )
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {state['status']} after {timeout_s}s"
                )
            time.sleep(interval)
            interval = min(poll_cap_s, interval * 2.0)

    def submit_and_wait(
        self, eid: str, timeout_s: float = 300.0, **kwargs: Any
    ) -> Dict[str, Any]:
        """Submit, wait, and fetch the result payload in one call."""
        ack = self.submit(eid, **kwargs)
        if ack["status"] != "done":
            self.wait(ack["job_id"], timeout_s=timeout_s)
        return self.result(ack["job_id"])

    # -- daemon introspection -------------------------------------------
    def catalog(self) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"{API_PREFIX}/catalog")
        self._raise_unless_ok(status, payload)
        return payload

    def health(self) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", "/healthz")
        self._raise_unless_ok(status, payload)
        return payload

    def metrics_text(self) -> str:
        status, _, _, raw = self._request_raw("GET", "/metrics")
        if status != 200:
            raise ServeError(f"metrics fetch failed ({status})", status=status)
        return raw.decode("utf-8")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain (the remote spelling of SIGTERM)."""
        status, payload, _ = self._request("POST", f"{API_PREFIX}/shutdown", {})
        self._raise_unless_ok(status, payload)
        return payload

    # -- plumbing -------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        status, headers, _, raw = self._request_raw(method, path, body)
        return status, _parse_json(raw), headers

    def _request_raw(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], str, bytes]:
        """One request with transparent transient-failure retry.

        Connection errors and ``429`` sheds consume retry attempts with
        jittered, capped exponential backoff; any other answer (including
        5xx — the daemon *spoke*, it is not transiently unreachable) is
        returned to the caller as-is.  With ``retries=0`` the first
        failure surfaces immediately.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except (ConnectionError, OSError) as exc:
                if attempt >= self.retries:
                    raise ServeError(
                        f"cannot reach serve daemon at {self.host}:{self.port} "
                        f"after {attempt + 1} attempt(s): {exc}"
                    ) from exc
                time.sleep(self._backoff_delay(attempt))
                attempt += 1
                continue
            except _Shed as shed:
                if attempt >= self.retries:
                    return shed.response
                time.sleep(self._backoff_delay(attempt, shed.retry_after_s))
                attempt += 1

    def _request_once(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], str, bytes]:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            response_headers = {k.lower(): v for k, v in response.getheaders()}
            result = response.status, response_headers, response.reason, raw
            if response.status == 429:
                try:
                    retry_after = float(response_headers.get("retry-after", 1.0))
                except ValueError:
                    retry_after = 1.0
                raise _Shed(result, retry_after)
            return result
        finally:
            conn.close()

    def _backoff_delay(
        self, attempt: int, retry_after_s: Optional[float] = None
    ) -> float:
        """Jittered exponential delay before retry ``attempt + 1``.

        An honored ``Retry-After`` raises the delay to at least the
        daemon's estimate; the cap bounds both, so a pathological header
        can never park the client for minutes.
        """
        delay = min(self.backoff_cap_s, self.backoff_s * (2.0 ** attempt))
        delay *= 0.5 + self._rng.random()  # jitter: half to 1.5x
        if retry_after_s is not None:
            delay = max(delay, retry_after_s)
        return min(self.backoff_cap_s, delay)

    @staticmethod
    def _raise_unless_ok(status: int, payload: Dict[str, Any]) -> None:
        if not 200 <= status < 300:
            raise ServeError(
                payload.get("error", f"request failed ({status})"), status=status
            )


class _Shed(Exception):
    """Internal: a 429 answer, carried through the retry loop.

    Never escapes :meth:`ServeClient._request_raw` — once attempts are
    exhausted the original response is returned and the caller's 429
    handling (``BackpressureError``) takes over.
    """

    def __init__(self, response, retry_after_s: float) -> None:
        super().__init__("429")
        self.response = response
        self.retry_after_s = retry_after_s


def _parse_json(raw: bytes) -> Dict[str, Any]:
    try:
        parsed = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    return parsed if isinstance(parsed, dict) else {}
