"""``ServeClient`` — the programmatic face of the serve daemon.

A thin, dependency-free (stdlib ``http.client``) synchronous client.
Submissions are plain keyword arguments; the client never computes job
hashes itself — identity is the daemon's business — but it does surface
the daemon's backpressure contract as typed exceptions:

* :class:`repro.errors.BackpressureError` on ``429`` (carries the
  daemon's ``Retry-After`` estimate);
* :class:`repro.errors.ServeError` on any other non-2xx answer or
  transport failure (carries the HTTP status).

``wait()`` polls status until the job completes; ``submit_and_wait()``
is the one-call happy path the CLI and the smoke script use.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import BackpressureError, ServeError
from .protocol import API_PREFIX, PROTOCOL_VERSION

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to one serve daemon.

    Args:
        host: daemon host.
        port: daemon port.
        client_id: fairness identity — the daemon round-robins across
            client ids, so share one id per logical tenant.
        timeout_s: per-request socket timeout.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8421,
        client_id: str = "anon",
        timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout_s = timeout_s

    # -- submissions ----------------------------------------------------
    def submit(
        self,
        eid: str,
        point_index: Optional[int] = None,
        point: Any = None,
        quick: bool = False,
        seed: Optional[int] = None,
        replicate: int = 0,
    ) -> Dict[str, Any]:
        """Submit one job; returns the daemon's acknowledgement.

        The acknowledgement carries ``job_id`` (the content hash),
        ``status`` (``done`` for a cache hit, else ``queued``) and
        ``cached``.  Raises :class:`BackpressureError` when the daemon
        sheds load.
        """
        body: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "eid": eid,
            "quick": quick,
            "replicate": replicate,
            "client": self.client_id,
        }
        if point_index is not None:
            body["point_index"] = point_index
        if point is not None:
            body["point"] = point
        if seed is not None:
            body["seed"] = seed
        status, payload, headers = self._request("POST", f"{API_PREFIX}/jobs", body)
        if status == 429:
            retry_after = float(
                payload.get("retry_after_s", headers.get("retry-after", 1))
            )
            raise BackpressureError(
                payload.get("error", "queue full"), retry_after_s=retry_after
            )
        self._raise_unless_ok(status, payload)
        return payload

    def status(self, job_id: str) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"{API_PREFIX}/jobs/{job_id}")
        self._raise_unless_ok(status, payload)
        return payload

    def result_text(self, job_id: str) -> str:
        """The job's payload as verbatim text (byte-identical contract)."""
        status, _, _, raw = self._request_raw("GET", f"{API_PREFIX}/jobs/{job_id}/result")
        if status != 200:
            payload = _parse_json(raw)
            raise ServeError(
                payload.get("error", f"result fetch failed ({status})"), status=status
            )
        return raw.decode("utf-8")

    def result(self, job_id: str) -> Dict[str, Any]:
        return json.loads(self.result_text(job_id))

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job is ``done``; returns its final status.

        Raises :class:`ServeError` when the job fails or the wait times
        out (host wall clock: this module is on the serve allowlist).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            state = self.status(job_id)
            if state["status"] == "done":
                return state
            if state["status"] == "failed":
                raise ServeError(
                    f"job {job_id} failed after {state['attempts']} attempt(s): "
                    f"{state.get('error')}",
                    status=200,
                )
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {state['status']} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def submit_and_wait(
        self, eid: str, timeout_s: float = 300.0, **kwargs: Any
    ) -> Dict[str, Any]:
        """Submit, wait, and fetch the result payload in one call."""
        ack = self.submit(eid, **kwargs)
        if ack["status"] != "done":
            self.wait(ack["job_id"], timeout_s=timeout_s)
        return self.result(ack["job_id"])

    # -- daemon introspection -------------------------------------------
    def catalog(self) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", f"{API_PREFIX}/catalog")
        self._raise_unless_ok(status, payload)
        return payload

    def health(self) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", "/healthz")
        self._raise_unless_ok(status, payload)
        return payload

    def metrics_text(self) -> str:
        status, _, _, raw = self._request_raw("GET", "/metrics")
        if status != 200:
            raise ServeError(f"metrics fetch failed ({status})", status=status)
        return raw.decode("utf-8")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain (the remote spelling of SIGTERM)."""
        status, payload, _ = self._request("POST", f"{API_PREFIX}/shutdown", {})
        self._raise_unless_ok(status, payload)
        return payload

    # -- plumbing -------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        status, headers, _, raw = self._request_raw(method, path, body)
        return status, _parse_json(raw), headers

    def _request_raw(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], str, bytes]:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            response_headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, response_headers, response.reason, raw
        except (ConnectionError, OSError) as exc:
            raise ServeError(
                f"cannot reach serve daemon at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    @staticmethod
    def _raise_unless_ok(status: int, payload: Dict[str, Any]) -> None:
        if not 200 <= status < 300:
            raise ServeError(
                payload.get("error", f"request failed ({status})"), status=status
            )


def _parse_json(raw: bytes) -> Dict[str, Any]:
    try:
        parsed = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    return parsed if isinstance(parsed, dict) else {}
