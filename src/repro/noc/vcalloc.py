"""Virtual-channel allocation policies.

VC allocation is separable: first each waiting input VC *selects* one
candidate output VC on its route port (policy below), then a per-output-VC
arbiter resolves conflicts among input VCs that selected the same output VC.
This module implements the selection half; the arbitration half lives in the
router and uses :mod:`repro.noc.arbiter`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ConfigError
from .packet import Packet

__all__ = ["select_output_vc"]


def select_output_vc(
    policy: str,
    packet: Packet,
    free_vcs: Sequence[bool],
    num_vcs: int,
    dateline_active: bool = False,
    dateline_class: int = 0,
) -> Optional[int]:
    """Pick the output VC a packet will request, or ``None`` if none is legal.

    Args:
        policy: ``"any_free"`` or ``"class_partition"``.
        packet: the packet whose head flit is waiting in VA.
        free_vcs: ``free_vcs[v]`` is True when output VC ``v`` is unclaimed.
        num_vcs: total VCs per port.
        dateline_active: True on tori, where wrap-around wormhole
            dependencies could close a cycle; the VC space is then split in
            two halves by dateline class.
        dateline_class: 0 before the packet crosses the dateline in any
            dimension, 1 after; class 0 packets use the lower half of the VC
            space and class 1 packets the upper half.

    The lowest legal free VC is chosen, which keeps allocation deterministic.
    """
    if policy == "any_free":
        candidates: List[int] = list(range(num_vcs))
    elif policy == "class_partition":
        # Each message class hashes to one VC slot; classes sharing a slot
        # (when num_vcs < number of classes) weaken but do not break the
        # discipline because the full-system side always sinks deliveries.
        candidates = [packet.msg_class % num_vcs]
    else:
        raise ConfigError(f"unknown vc_select policy {policy!r}")

    if dateline_active:
        half = max(1, num_vcs // 2)
        if dateline_class:
            allowed = range(half, num_vcs)
        else:
            allowed = range(0, half)
        restricted = [v for v in candidates if v in allowed]
        # class_partition may map a class outside its dateline half; fall
        # back to the whole half rather than deadlock.
        candidates = restricted or list(allowed)

    for vc in candidates:
        if free_vcs[vc]:
            return vc
    return None
