"""Virtual-channel allocation policies.

VC allocation is separable: first each waiting input VC *selects* one
candidate output VC on its route port (policy below), then a per-output-VC
arbiter resolves conflicts among input VCs that selected the same output VC.
This module implements the selection half; the arbitration half lives in the
router and uses :mod:`repro.noc.arbiter`.

The *static* half of the policy — which VCs a packet of a given message
class and dateline class may ever use, before runtime free-ness is known —
is exposed separately as :func:`legal_output_vcs` so the configuration
verifier (:mod:`repro.verify`) can reason about the exact partition
structure the router will enforce at runtime.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import ConfigError
from .packet import Packet

__all__ = ["legal_output_vcs", "select_output_vc"]


def legal_output_vcs(
    policy: str,
    msg_class: int,
    num_vcs: int,
    dateline_active: bool = False,
    dateline_class: int = 0,
) -> Tuple[int, ...]:
    """The output VCs a packet may ever claim, in preference order.

    This is the selection policy with runtime free-ness abstracted away:
    :func:`select_output_vc` picks the first *free* VC of exactly this
    tuple.  The static deadlock verifier labels channel-dependency-graph
    nodes with these sets.

    Args:
        policy: ``"any_free"`` or ``"class_partition"``.
        msg_class: the packet's message class.
        num_vcs: total VCs per port.
        dateline_active: True on tori, where wrap-around wormhole
            dependencies could close a cycle; the VC space is then split in
            two halves by dateline class.
        dateline_class: 0 before the packet crosses the dateline of the ring
            it is travelling in, 1 after; class 0 packets use the lower half
            of the VC space and class 1 packets the upper half.
    """
    if policy == "any_free":
        candidates = list(range(num_vcs))
    elif policy == "class_partition":
        # Each message class hashes to one VC slot; classes sharing a slot
        # (when num_vcs < number of classes) weaken but do not break the
        # discipline because the full-system side always sinks deliveries.
        candidates = [msg_class % num_vcs]
    else:
        raise ConfigError(f"unknown vc_select policy {policy!r}")

    if dateline_active:
        half = max(1, num_vcs // 2)
        if dateline_class:
            allowed = range(half, num_vcs)
        else:
            allowed = range(0, half)
        restricted = [v for v in candidates if v in allowed]
        # class_partition may map a class outside its dateline half; fall
        # back to the whole half rather than deadlock.
        candidates = restricted or list(allowed)

    return tuple(candidates)


def select_output_vc(
    policy: str,
    packet: Packet,
    free_vcs: Sequence[bool],
    num_vcs: int,
    dateline_active: bool = False,
    dateline_class: int = 0,
) -> Optional[int]:
    """Pick the output VC a packet will request, or ``None`` if none is legal.

    The lowest legal free VC is chosen, which keeps allocation deterministic.
    See :func:`legal_output_vcs` for the argument semantics.
    """
    for vc in legal_output_vcs(
        policy,
        packet.msg_class,
        num_vcs,
        dateline_active=dateline_active,
        dateline_class=dateline_class,
    ):
        if free_vcs[vc]:
            return vc
    return None
