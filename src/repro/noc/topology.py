"""Network-on-chip topologies.

A topology describes routers, the directed channels between them, and the
mapping of *nodes* (terminals: cores, cache banks, memory controllers) onto
routers.  Routers expose numbered ports; port 0 is always the local
injection/ejection port and ports 1..radix-1 are direction ports.

All topologies here are two-dimensional grids because that is what the paper
targets (mesh NoCs for 64-512 core CMPs), but the :class:`Topology` interface
is what the simulators program against, so other shapes can be added without
touching router or network code.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import networkx as nx

from ..errors import ConfigError, TopologyError

__all__ = [
    "LOCAL",
    "EAST",
    "WEST",
    "NORTH",
    "SOUTH",
    "PORT_NAMES",
    "opposite_port",
    "port_dimension",
    "Topology",
    "Mesh",
    "Torus",
    "ConcentratedMesh",
]

#: Port indices shared by all 2-D grid topologies.
LOCAL, EAST, WEST, NORTH, SOUTH = 0, 1, 2, 3, 4

PORT_NAMES = {LOCAL: "local", EAST: "east", WEST: "west", NORTH: "north", SOUTH: "south"}

_OPPOSITE = {EAST: WEST, WEST: EAST, NORTH: SOUTH, SOUTH: NORTH}

#: dimension index (0 = X, 1 = Y) each direction port travels in
_PORT_DIM = {EAST: 0, WEST: 0, NORTH: 1, SOUTH: 1}


def opposite_port(port: int) -> int:
    """Return the port a channel arrives on at the neighbour router."""
    try:
        return _OPPOSITE[port]
    except KeyError:
        raise TopologyError(f"port {port} has no opposite (is it LOCAL?)") from None


def port_dimension(port: int) -> int:
    """The grid dimension a direction port travels in (0 = X, 1 = Y).

    Dateline virtual-channel classes are tracked per dimension, so both the
    router (choosing an output VC) and the static deadlock verifier need to
    map ports onto ring dimensions.
    """
    try:
        return _PORT_DIM[port]
    except KeyError:
        raise TopologyError(f"port {port} has no dimension (is it LOCAL?)") from None


class Topology:
    """Base class for 2-D grid topologies.

    Subclasses define wrap-around behaviour via :meth:`neighbor`.  The base
    class provides coordinate arithmetic, node↔router mapping (identity by
    default, overridden by :class:`ConcentratedMesh`), and export to a
    :mod:`networkx` graph for analysis and tests.
    """

    #: number of ports per router, including the local port
    radix = 5

    def __init__(self, width: int, height: int, concentration: int = 1) -> None:
        if width < 1 or height < 1:
            raise ConfigError(f"topology dimensions must be >= 1, got {width}x{height}")
        if concentration < 1:
            raise ConfigError(f"concentration must be >= 1, got {concentration}")
        self.width = width
        self.height = height
        self.concentration = concentration

    # ------------------------------------------------------------------
    # Router geometry
    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return self.width * self.height

    @property
    def num_nodes(self) -> int:
        return self.num_routers * self.concentration

    def coords(self, router: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``router``; x grows east, y grows north."""
        self._check_router(router)
        return router % self.width, router // self.width

    def router_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise TopologyError(f"({x}, {y}) outside {self.width}x{self.height} grid")
        return y * self.width + x

    def routers(self) -> Iterator[int]:
        return iter(range(self.num_routers))

    # ------------------------------------------------------------------
    # Node <-> router mapping
    # ------------------------------------------------------------------
    def node_router(self, node: int) -> int:
        """The router a terminal node attaches to."""
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} outside [0, {self.num_nodes})")
        return node // self.concentration

    def router_nodes(self, router: int) -> range:
        """All nodes attached to ``router``."""
        self._check_router(router)
        c = self.concentration
        return range(router * c, (router + 1) * c)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def neighbor(self, router: int, port: int) -> Optional[int]:
        """Router on the far end of ``port``, or ``None`` for edge/local ports."""
        raise NotImplementedError

    def channels(self) -> Iterator[Tuple[int, int, int]]:
        """Every directed inter-router channel as ``(src, out_port, dst)``.

        This is the node set of the channel-dependency graph the static
        deadlock verifier builds; injection/ejection (LOCAL) channels are
        excluded because the source queue holds no network resource and the
        ejection port is an infinite sink.
        """
        for router in self.routers():
            for port in range(1, self.radix):
                nbr = self.neighbor(router, port)
                if nbr is not None:
                    yield router, port, nbr

    def is_wrap_channel(self, router: int, port: int) -> bool:
        """True when the channel out of ``port`` crosses a dateline.

        Wrap-around channels are where torus rings close; packets crossing
        one switch to the upper dateline half of the VC space (see
        :mod:`repro.noc.vcalloc`).  Meshes have no wrap channels.
        """
        return False

    def hop_distance(self, src_router: int, dst_router: int) -> int:
        """Minimal hop count between two routers."""
        raise NotImplementedError

    def node_distance(self, src_node: int, dst_node: int) -> int:
        """Minimal router-hop count between the routers of two nodes."""
        return self.hop_distance(self.node_router(src_node), self.node_router(dst_node))

    def to_networkx(self) -> nx.DiGraph:
        """Directed router graph; edges carry the outgoing port index."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.routers())
        for router in self.routers():
            for port in range(1, self.radix):
                nbr = self.neighbor(router, port)
                if nbr is not None:
                    graph.add_edge(router, nbr, port=port)
        return graph

    # ------------------------------------------------------------------
    def _check_router(self, router: int) -> None:
        if not 0 <= router < self.num_routers:
            raise TopologyError(f"router {router} outside [0, {self.num_routers})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.width}x{self.height}, "
            f"concentration={self.concentration})"
        )


class Mesh(Topology):
    """2-D mesh: no wrap-around channels; corner routers have degree 2."""

    def neighbor(self, router: int, port: int) -> Optional[int]:
        self._check_router(router)
        x, y = self.coords(router)
        if port == LOCAL:
            return None
        if port == EAST:
            return self.router_at(x + 1, y) if x + 1 < self.width else None
        if port == WEST:
            return self.router_at(x - 1, y) if x - 1 >= 0 else None
        if port == NORTH:
            return self.router_at(x, y + 1) if y + 1 < self.height else None
        if port == SOUTH:
            return self.router_at(x, y - 1) if y - 1 >= 0 else None
        raise TopologyError(f"mesh has no port {port}")

    def hop_distance(self, src_router: int, dst_router: int) -> int:
        sx, sy = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        return abs(sx - dx) + abs(sy - dy)


class Torus(Topology):
    """2-D torus: every dimension wraps, so all routers have full degree."""

    def neighbor(self, router: int, port: int) -> Optional[int]:
        self._check_router(router)
        x, y = self.coords(router)
        if port == LOCAL:
            return None
        if port == EAST:
            return self.router_at((x + 1) % self.width, y)
        if port == WEST:
            return self.router_at((x - 1) % self.width, y)
        if port == NORTH:
            return self.router_at(x, (y + 1) % self.height)
        if port == SOUTH:
            return self.router_at(x, (y - 1) % self.height)
        raise TopologyError(f"torus has no port {port}")

    def hop_distance(self, src_router: int, dst_router: int) -> int:
        sx, sy = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        ddx = abs(sx - dx)
        ddy = abs(sy - dy)
        return min(ddx, self.width - ddx) + min(ddy, self.height - ddy)

    def is_wrap_channel(self, router: int, port: int) -> bool:
        x, y = self.coords(router)
        if port == EAST:
            return x == self.width - 1
        if port == WEST:
            return x == 0
        if port == NORTH:
            return y == self.height - 1
        if port == SOUTH:
            return y == 0
        return False


class ConcentratedMesh(Mesh):
    """Mesh with ``concentration`` terminals multiplexed onto each router.

    Concentration shrinks the router grid for a given core count — the usual
    way large-core-count targets (256, 512) keep network diameter manageable.
    The local port is shared: all attached nodes inject and eject through it,
    which the network models as extra serialization at port 0.
    """

    def __init__(self, width: int, height: int, concentration: int = 4) -> None:
        if concentration < 2:
            raise ConfigError(
                "ConcentratedMesh needs concentration >= 2; use Mesh for 1"
            )
        super().__init__(width, height, concentration)
