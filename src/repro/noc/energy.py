"""NoC energy estimation (Orion-style event-energy model).

Cycle-level NoC simulators conventionally report energy alongside latency:
each microarchitectural *event* (buffer write, buffer read + switch
traversal, link traversal, allocation) costs a fixed dynamic energy, and
every router leaks continuously in proportion to its buffering.  The event
counts come from the simulators' existing statistics, so the model works
identically over the OO and SIMD networks — and agreement between the two
is itself a useful validation (tested in ``tests/test_energy.py``).

The default per-event energies are representative 32 nm-class values (order
of magnitude of ORION 2.0 reports, in picojoules); they are configuration
constants, not measurements, and every experiment that reports energy says
so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError
from .config import NocConfig

__all__ = ["EnergyParams", "NetworkEventCounts", "EnergyBreakdown", "estimate_energy"]


@dataclass
class EnergyParams:
    """Per-event dynamic energies (pJ) and leakage (pW-equivalent per cycle).

    ``leakage_pj_per_slot_cycle`` charges every buffer slot every cycle;
    ``router_leakage_pj_per_cycle`` covers the rest of the router (crossbar,
    allocators, clocking).
    """

    buffer_write_pj: float = 1.2
    buffer_read_pj: float = 0.9
    switch_traversal_pj: float = 1.8
    link_traversal_pj: float = 2.4
    allocation_pj: float = 0.2
    ejection_pj: float = 0.4
    router_leakage_pj_per_cycle: float = 0.6
    leakage_pj_per_slot_cycle: float = 0.01

    def __post_init__(self) -> None:
        for name, value in vars(self).items():
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")


@dataclass
class NetworkEventCounts:
    """Event counts a network simulator exposes for energy estimation."""

    buffer_writes: int = 0
    switch_grants: int = 0  # buffer read + crossbar traversal per grant
    link_traversals: int = 0
    allocations: int = 0  # allocator invocations (VA+SA grants)
    ejected_flits: int = 0
    cycles: int = 0
    routers: int = 0


@dataclass
class EnergyBreakdown:
    """Energy totals in picojoules, by component."""

    buffers: float = 0.0
    switch: float = 0.0
    links: float = 0.0
    allocators: float = 0.0
    ejection: float = 0.0
    leakage: float = 0.0

    @property
    def dynamic(self) -> float:
        return self.buffers + self.switch + self.links + self.allocators + self.ejection

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage

    def per_flit(self, flits: int) -> float:
        """Total energy per delivered flit (the standard NoC efficiency
        metric); 0 when nothing was delivered."""
        return self.total / flits if flits else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "buffers_pj": self.buffers,
            "switch_pj": self.switch,
            "links_pj": self.links,
            "allocators_pj": self.allocators,
            "ejection_pj": self.ejection,
            "dynamic_pj": self.dynamic,
            "leakage_pj": self.leakage,
            "total_pj": self.total,
        }


def estimate_energy(
    counts: NetworkEventCounts,
    config: NocConfig,
    params: EnergyParams | None = None,
) -> EnergyBreakdown:
    """Energy for a run described by ``counts`` on a ``config`` router.

    Leakage scales with instantiated buffering (ports x VCs x depth per
    router) — the term that penalizes over-provisioned designs in the
    energy/performance ablation.
    """
    params = params or EnergyParams()
    slots_per_router = 5 * config.num_vcs * config.buffer_depth
    leakage_per_cycle = (
        params.router_leakage_pj_per_cycle
        + params.leakage_pj_per_slot_cycle * slots_per_router
    )
    return EnergyBreakdown(
        buffers=counts.buffer_writes * params.buffer_write_pj
        + counts.switch_grants * params.buffer_read_pj,
        switch=counts.switch_grants * params.switch_traversal_pj,
        links=counts.link_traversals * params.link_traversal_pj,
        allocators=counts.allocations * params.allocation_pj,
        ejection=counts.ejected_flits * params.ejection_pj,
        leakage=counts.cycles * counts.routers * leakage_per_cycle,
    )
