"""Arbiters used in the router's allocation stages.

Both arbiters pick one winner among a set of integer requesters.  They are
deterministic (no RNG), so a whole simulation is reproducible from its
workload seed alone.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

__all__ = ["RoundRobinArbiter", "MatrixArbiter"]


class RoundRobinArbiter:
    """Classic rotating-priority arbiter over ``size`` requesters.

    The requester after the most recent winner has the highest priority, so
    under persistent contention grants rotate and every requester receives
    1/k of the grants (strong fairness; tested by property tests).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter needs >= 1 requester, got {size}")
        self.size = size
        self._next = 0

    def grant(self, requests: Iterable[int]) -> Optional[int]:
        """Pick a winner among ``requests`` (indices), or None if empty."""
        req = set(requests)
        if not req:
            return None
        for offset in range(self.size):
            candidate = (self._next + offset) % self.size
            if candidate in req:
                self._next = (candidate + 1) % self.size
                return candidate
        return None

    def reset(self) -> None:
        self._next = 0


class MatrixArbiter:
    """Least-recently-served arbiter using the classic priority matrix.

    ``_prio[i][j]`` is True when ``i`` beats ``j``.  After a grant the winner
    becomes lowest priority against everyone.  Slightly fairer than round
    robin under asymmetric request patterns; used by the VC allocator when
    ``vc_alloc='matrix'``.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"arbiter needs >= 1 requester, got {size}")
        self.size = size
        self._prio: List[List[bool]] = [
            [i < j for j in range(size)] for i in range(size)
        ]

    def grant(self, requests: Iterable[int]) -> Optional[int]:
        req = sorted(set(requests))
        if not req:
            return None
        for candidate in req:
            if all(
                self._prio[candidate][other] for other in req if other != candidate
            ):
                self._update(candidate)
                return candidate
        # The matrix always has a unique maximum among any subset, so this
        # line is unreachable; kept as a safety net for future edits.
        winner = req[0]
        self._update(winner)
        return winner

    def _update(self, winner: int) -> None:
        for other in range(self.size):
            if other != winner:
                self._prio[winner][other] = False
                self._prio[other][winner] = True

    def reset(self) -> None:
        self._prio = [[i < j for j in range(self.size)] for i in range(self.size)]
