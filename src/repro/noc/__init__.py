"""Cycle-level network-on-chip simulator (the paper's *detailed component*).

Public surface:

* topologies: :class:`Mesh`, :class:`Torus`, :class:`ConcentratedMesh`
* routing: :func:`make_routing` and the routing-function classes
* the simulator: :class:`CycleNetwork` configured by :class:`NocConfig`
* traffic units: :class:`Packet`, :class:`MessageClass`
* results: :class:`NetworkStats`
"""

from .config import NocConfig
from .energy import EnergyBreakdown, EnergyParams, NetworkEventCounts, estimate_energy
from .network import CycleNetwork
from .packet import Flit, MessageClass, Packet
from .routing import (
    OddEvenRouting,
    RoutingFunction,
    WestFirstRouting,
    XYRouting,
    YXRouting,
    make_routing,
)
from .stats import ClassStats, NetworkStats
from .topology import (
    EAST,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
    ConcentratedMesh,
    Mesh,
    Topology,
    Torus,
)

__all__ = [
    "NocConfig",
    "EnergyParams",
    "EnergyBreakdown",
    "NetworkEventCounts",
    "estimate_energy",
    "CycleNetwork",
    "Packet",
    "Flit",
    "MessageClass",
    "NetworkStats",
    "ClassStats",
    "Topology",
    "Mesh",
    "Torus",
    "ConcentratedMesh",
    "RoutingFunction",
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "OddEvenRouting",
    "make_routing",
    "LOCAL",
    "EAST",
    "WEST",
    "NORTH",
    "SOUTH",
]
