"""Routing functions.

A routing function maps ``(topology, current_router, destination_router)`` to
an output port.  All functions here are deterministic and minimal except for
``OddEvenRouting`` which is partially adaptive (it returns the set of legal
ports and lets the router pick based on local congestion).

Dimension-ordered routing (XY/YX) is deadlock-free on meshes without extra
virtual channels, which the co-simulation relies on: the full-system side
always sinks delivered messages, so with DOR there is no protocol-level or
routing-level deadlock even at one VC.
"""

from __future__ import annotations

from typing import List

from ..errors import RoutingError
from .topology import EAST, LOCAL, NORTH, SOUTH, WEST, Topology, Torus

__all__ = [
    "RoutingFunction",
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "OddEvenRouting",
    "make_routing",
]


class RoutingFunction:
    """Interface: compute candidate output ports for a packet at a router."""

    #: True when :meth:`candidates` may return more than one port.
    adaptive = False

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        """Legal output ports, in preference order. ``[LOCAL]`` on arrival."""
        raise NotImplementedError

    def first(self, topo: Topology, router: int, dst_router: int) -> int:
        """The single preferred output port (what deterministic routers use)."""
        return self.candidates(topo, router, dst_router)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__


def _offsets(topo: Topology, router: int, dst_router: int) -> tuple[int, int]:
    """Signed (dx, dy) to travel, taking the short way around on a torus."""
    x, y = topo.coords(router)
    dx_, dy_ = topo.coords(dst_router)
    dx = dx_ - x
    dy = dy_ - y
    if isinstance(topo, Torus):
        if abs(dx) > topo.width // 2:
            dx -= topo.width if dx > 0 else -topo.width
        if abs(dy) > topo.height // 2:
            dy -= topo.height if dy > 0 else -topo.height
    return dx, dy


class XYRouting(RoutingFunction):
    """Dimension-ordered: correct X fully, then Y. Deadlock-free on meshes."""

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        dx, dy = _offsets(topo, router, dst_router)
        if dx > 0:
            return [EAST]
        if dx < 0:
            return [WEST]
        if dy > 0:
            return [NORTH]
        if dy < 0:
            return [SOUTH]
        return [LOCAL]


class YXRouting(RoutingFunction):
    """Dimension-ordered: correct Y fully, then X."""

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        dx, dy = _offsets(topo, router, dst_router)
        if dy > 0:
            return [NORTH]
        if dy < 0:
            return [SOUTH]
        if dx > 0:
            return [EAST]
        if dx < 0:
            return [WEST]
        return [LOCAL]


class WestFirstRouting(RoutingFunction):
    """Turn-model routing: any westward travel happens first.

    When the destination is east (or due north/south), the packet may choose
    adaptively between the remaining productive directions; when it is west,
    routing degenerates to deterministic west-then-Y.  Deadlock-free on
    meshes by the turn model (the two prohibited turns are *-to-west).
    """

    adaptive = True

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        dx, dy = _offsets(topo, router, dst_router)
        if dx == 0 and dy == 0:
            return [LOCAL]
        if dx < 0:
            # Must finish all westward hops before turning.
            return [WEST]
        ports: List[int] = []
        if dx > 0:
            ports.append(EAST)
        if dy > 0:
            ports.append(NORTH)
        elif dy < 0:
            ports.append(SOUTH)
        return ports


class OddEvenRouting(RoutingFunction):
    """Odd-even turn model: adaptivity limited by column parity.

    East-to-north/south turns are forbidden in even columns; north/south-to-
    west turns are forbidden in odd columns.  Minimal and deadlock-free on
    meshes (Chiu, 2000).
    """

    adaptive = True

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        dx, dy = _offsets(topo, router, dst_router)
        if dx == 0 and dy == 0:
            return [LOCAL]
        x, _ = topo.coords(router)
        dst_x, _ = topo.coords(dst_router)
        even = x % 2 == 0
        ports: List[int] = []
        if dx > 0:
            # Turning off the east direction is forbidden in even columns,
            # so in even columns prefer finishing Y early (N/S first).
            if dy != 0 and even:
                ports.append(NORTH if dy > 0 else SOUTH)
            ports.append(EAST)
            if dy != 0 and not even and x != dst_x - 0:
                ports.append(NORTH if dy > 0 else SOUTH)
        elif dx < 0:
            # N/S-to-west turns forbidden in odd columns: only go west there.
            ports.append(WEST)
            if dy != 0 and even:
                ports.append(NORTH if dy > 0 else SOUTH)
        else:
            ports.append(NORTH if dy > 0 else SOUTH)
        if not ports:
            raise RoutingError(
                f"odd-even produced no ports at {router} -> {dst_router}"
            )
        return ports


_REGISTRY = {
    "xy": XYRouting,
    "yx": YXRouting,
    "west-first": WestFirstRouting,
    "odd-even": OddEvenRouting,
}


def make_routing(name: str) -> RoutingFunction:
    """Construct a routing function by name (``xy``, ``yx``, ``west-first``,
    ``odd-even``)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise RoutingError(
            f"unknown routing {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
