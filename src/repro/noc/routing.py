"""Routing functions.

A routing function maps ``(topology, current_router, destination_router)`` to
an output port.  All functions here are deterministic and minimal except for
``OddEvenRouting`` which is partially adaptive (it returns the set of legal
ports and lets the router pick based on local congestion).

Dimension-ordered routing (XY/YX) is deadlock-free on meshes without extra
virtual channels, which the co-simulation relies on: the full-system side
always sinks delivered messages, so with DOR there is no protocol-level or
routing-level deadlock even at one VC.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from ..errors import RoutingError
from .topology import EAST, LOCAL, NORTH, SOUTH, WEST, Topology, Torus

__all__ = [
    "RoutingFunction",
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "OddEvenRouting",
    "make_routing",
]

#: every (incoming travel direction, outgoing travel direction) 90-degree turn
_ALL_TURNS = frozenset(
    (d_in, d_out)
    for d_in in (EAST, WEST, NORTH, SOUTH)
    for d_out in (EAST, WEST, NORTH, SOUTH)
    if {d_in, d_out} not in ({EAST, WEST}, {NORTH, SOUTH})
)


class RoutingFunction:
    """Interface: compute candidate output ports for a packet at a router.

    Besides the operational :meth:`candidates` interface, every routing
    function exposes the *turn structure* its deadlock-freedom argument
    rests on via :meth:`forbidden_turns`: the set of (incoming travel
    direction, outgoing travel direction) turns it promises never to take at
    a given router.  The static verifier (:mod:`repro.verify`) checks the
    promise against the actual candidate sets and uses the channel
    dependencies the function *does* permit to build the extended
    channel-dependency graph.  180-degree reversals are excluded by
    minimality and are not listed.
    """

    #: True when :meth:`candidates` may return more than one port.
    adaptive = False

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        """Legal output ports, in preference order. ``[LOCAL]`` on arrival."""
        raise NotImplementedError

    def first(self, topo: Topology, router: int, dst_router: int) -> int:
        """The single preferred output port (what deterministic routers use)."""
        return self.candidates(topo, router, dst_router)[0]

    def forbidden_turns(
        self, topo: Topology, router: int
    ) -> FrozenSet[Tuple[int, int]]:
        """Turns this function never takes at ``router``.

        Expressed over travel directions: ``(EAST, NORTH)`` is an
        east-travelling packet turning north.  The base class promises
        nothing (empty set); turn-model routings override this with the
        prohibitions their deadlock argument is built on.
        """
        return frozenset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__


def _offsets(topo: Topology, router: int, dst_router: int) -> tuple[int, int]:
    """Signed (dx, dy) to travel, taking the short way around on a torus."""
    x, y = topo.coords(router)
    dx_, dy_ = topo.coords(dst_router)
    dx = dx_ - x
    dy = dy_ - y
    if isinstance(topo, Torus):
        if abs(dx) > topo.width // 2:
            dx -= topo.width if dx > 0 else -topo.width
        if abs(dy) > topo.height // 2:
            dy -= topo.height if dy > 0 else -topo.height
    return dx, dy


class XYRouting(RoutingFunction):
    """Dimension-ordered: correct X fully, then Y. Deadlock-free on meshes."""

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        dx, dy = _offsets(topo, router, dst_router)
        if dx > 0:
            return [EAST]
        if dx < 0:
            return [WEST]
        if dy > 0:
            return [NORTH]
        if dy < 0:
            return [SOUTH]
        return [LOCAL]

    def forbidden_turns(
        self, topo: Topology, router: int
    ) -> FrozenSet[Tuple[int, int]]:
        # X is fully corrected before Y, so no Y-to-X turn ever occurs.
        return frozenset(
            t for t in _ALL_TURNS if t[0] in (NORTH, SOUTH) and t[1] in (EAST, WEST)
        )


class YXRouting(RoutingFunction):
    """Dimension-ordered: correct Y fully, then X."""

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        dx, dy = _offsets(topo, router, dst_router)
        if dy > 0:
            return [NORTH]
        if dy < 0:
            return [SOUTH]
        if dx > 0:
            return [EAST]
        if dx < 0:
            return [WEST]
        return [LOCAL]

    def forbidden_turns(
        self, topo: Topology, router: int
    ) -> FrozenSet[Tuple[int, int]]:
        # Y is fully corrected before X, so no X-to-Y turn ever occurs.
        return frozenset(
            t for t in _ALL_TURNS if t[0] in (EAST, WEST) and t[1] in (NORTH, SOUTH)
        )


class WestFirstRouting(RoutingFunction):
    """Turn-model routing: any westward travel happens first.

    When the destination is east (or due north/south), the packet may choose
    adaptively between the remaining productive directions; when it is west,
    routing degenerates to deterministic west-then-Y.  Deadlock-free on
    meshes by the turn model (the two prohibited turns are *-to-west).
    """

    adaptive = True

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        dx, dy = _offsets(topo, router, dst_router)
        if dx == 0 and dy == 0:
            return [LOCAL]
        if dx < 0:
            # Must finish all westward hops before turning.
            return [WEST]
        ports: List[int] = []
        if dx > 0:
            ports.append(EAST)
        if dy > 0:
            ports.append(NORTH)
        elif dy < 0:
            ports.append(SOUTH)
        return ports

    def forbidden_turns(
        self, topo: Topology, router: int
    ) -> FrozenSet[Tuple[int, int]]:
        # The two prohibited turns of the west-first turn model: once a
        # packet is travelling north or south it may never turn west.
        return frozenset(((NORTH, WEST), (SOUTH, WEST)))


class OddEvenRouting(RoutingFunction):
    """Odd-even turn model: adaptivity limited by column parity.

    East-to-north/south turns are forbidden in even columns; north/south-to-
    west turns are forbidden in odd columns.  Minimal and deadlock-free on
    meshes (Chiu, 2000).
    """

    adaptive = True

    def candidates(self, topo: Topology, router: int, dst_router: int) -> List[int]:
        dx, dy = _offsets(topo, router, dst_router)
        if dx == 0 and dy == 0:
            return [LOCAL]
        x, _ = topo.coords(router)
        even = x % 2 == 0
        ports: List[int] = []
        if dx > 0:
            # EN/ES turns are forbidden in even columns, and the candidate
            # set cannot depend on how the packet arrived, so Y correction
            # is only ever offered in odd columns (where an east-travelling
            # packet may legally turn off).
            if dy == 0 or even:
                ports.append(EAST)
            elif dx == 1:
                # The next column east is the (even) destination column,
                # where turning off EAST is forbidden: all remaining Y
                # correction must finish in this last odd column.
                ports.append(NORTH if dy > 0 else SOUTH)
            else:
                ports.append(EAST)
                ports.append(NORTH if dy > 0 else SOUTH)
        elif dx < 0:
            # NW/SW turns are forbidden in odd columns: Y correction is
            # offered only in even columns.  Westbound packets only ever
            # arrive at odd columns travelling west, so continuing west
            # there takes no forbidden turn.
            ports.append(WEST)
            if dy != 0 and even:
                ports.append(NORTH if dy > 0 else SOUTH)
        else:
            ports.append(NORTH if dy > 0 else SOUTH)
        if not ports:
            raise RoutingError(
                f"odd-even produced no ports at {router} -> {dst_router}"
            )
        return ports

    def forbidden_turns(
        self, topo: Topology, router: int
    ) -> FrozenSet[Tuple[int, int]]:
        # Chiu's odd-even rules: EN/ES turns are forbidden in even columns,
        # NW/SW turns in odd columns.
        x, _ = topo.coords(router)
        if x % 2 == 0:
            return frozenset(((EAST, NORTH), (EAST, SOUTH)))
        return frozenset(((NORTH, WEST), (SOUTH, WEST)))


_REGISTRY = {
    "xy": XYRouting,
    "yx": YXRouting,
    "west-first": WestFirstRouting,
    "odd-even": OddEvenRouting,
}


def make_routing(name: str) -> RoutingFunction:
    """Construct a routing function by name (``xy``, ``yx``, ``west-first``,
    ``odd-even``)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise RoutingError(
            f"unknown routing {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
