"""Configuration for the cycle-level NoC simulator."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..util import check_positive

__all__ = ["NocConfig"]


@dataclass
class NocConfig:
    """Parameters of the cycle-level network.

    The defaults describe the canonical input-queued virtual-channel router
    used throughout the experiments: 4 VCs of 4 flits per input port, a
    2-cycle router pipeline, single-cycle links.

    Attributes:
        num_vcs: virtual channels per input port.
        buffer_depth: flits of buffering per virtual channel.
        router_delay: cycles a flit spends in the router pipeline before it
            can arbitrate for the switch (models BW+RC+VA+SA depth).
        link_delay: cycles to traverse an inter-router channel.
        credit_delay: cycles for a credit to return upstream.
        ejection_delay: extra cycles from switch traversal at the destination
            router to delivery at the terminal.
        vc_select: ``"any_free"`` lets a packet claim any idle VC;
            ``"class_partition"`` restricts each message class to the VC set
            ``class % num_vcs`` (a cheap virtual-network discipline).
        va_arbiter: ``"round_robin"`` or ``"matrix"`` — arbiter used by the
            VC allocator's output stage.
        watchdog_cycles: raise if no flit moves for this many cycles while
            packets are in flight (deadlock/livelock detector); 0 disables.
    """

    num_vcs: int = 4
    buffer_depth: int = 4
    router_delay: int = 2
    link_delay: int = 1
    credit_delay: int = 1
    ejection_delay: int = 1
    vc_select: str = "any_free"
    va_arbiter: str = "round_robin"
    watchdog_cycles: int = 100_000

    def __post_init__(self) -> None:
        check_positive(self.num_vcs, "num_vcs")
        check_positive(self.buffer_depth, "buffer_depth")
        check_positive(self.router_delay, "router_delay")
        check_positive(self.link_delay, "link_delay")
        check_positive(self.credit_delay, "credit_delay")
        if self.ejection_delay < 0:
            raise ConfigError(f"ejection_delay must be >= 0, got {self.ejection_delay}")
        if self.vc_select not in ("any_free", "class_partition"):
            raise ConfigError(f"unknown vc_select {self.vc_select!r}")
        if self.va_arbiter not in ("round_robin", "matrix"):
            raise ConfigError(f"unknown va_arbiter {self.va_arbiter!r}")
        if self.watchdog_cycles < 0:
            raise ConfigError(f"watchdog_cycles must be >= 0, got {self.watchdog_cycles}")

    def min_latency(self, hops: int, size_flits: int) -> int:
        """Zero-load latency for a packet of ``size_flits`` over ``hops`` links.

        One router traversal per router on the path (hops+1 routers), one
        link traversal per hop, serialization of the body flits, plus the
        ejection delay.  This closed form is shared with the abstract
        network models so that at zero load all models agree exactly.
        """
        return (
            (hops + 1) * self.router_delay
            + hops * self.link_delay
            + (size_flits - 1)
            + self.ejection_delay
        )
