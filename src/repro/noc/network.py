"""The cycle-level network simulator.

:class:`CycleNetwork` assembles routers and links over a topology and steps
them in lock-step, one target cycle per :meth:`step`.  It owns packet
injection (per-router source queues feeding the local input port at one flit
per cycle) and ejection (delivery callbacks plus a pull queue), and enforces
the credit protocol end to end.

The simulator is deterministic: given the same sequence of ``inject`` calls
it produces identical flit movement, which the reciprocal-abstraction
co-simulation relies on for reproducible experiments.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError, StallError
from .config import NocConfig
from .link import Link
from .packet import Flit, Packet
from .router import Router
from .routing import RoutingFunction, XYRouting
from .stats import NetworkStats
from .topology import LOCAL, Topology, Torus, opposite_port, port_dimension

__all__ = ["CycleNetwork"]


class _SourceQueue:
    """Per-router injection state: queued packets and the one mid-injection."""

    __slots__ = ("pending", "current_flits", "current_vc")

    def __init__(self) -> None:
        self.pending: Deque[Packet] = deque()
        self.current_flits: List[Flit] = []
        self.current_vc: Optional[int] = None


class CycleNetwork:
    """Flit-level, cycle-accurate NoC simulator.

    Args:
        topo: network topology (routers, channels, node mapping).
        config: router/channel parameters.
        routing: routing function; defaults to deterministic XY.
        on_eject: optional callback invoked as ``on_eject(packet, cycle)``
            when a packet's tail flit is delivered.  Independently of the
            callback, delivered packets can be pulled with
            :meth:`pop_delivered`.
    """

    def __init__(
        self,
        topo: Topology,
        config: Optional[NocConfig] = None,
        routing: Optional[RoutingFunction] = None,
        on_eject: Optional[Callable[[Packet, int], None]] = None,
    ) -> None:
        self.topo = topo
        self.config = config or NocConfig()
        self.routing = routing or XYRouting()
        self.on_eject = on_eject
        self.cycle = 0
        self.stats = NetworkStats()

        self.routers = [
            Router(r, topo, self.routing, self.config) for r in topo.routers()
        ]
        #: links keyed by (src_router, src_port)
        self.links: Dict[Tuple[int, int], Link] = {}
        for router in topo.routers():
            for port in range(1, topo.radix):
                nbr = topo.neighbor(router, port)
                if nbr is None:
                    continue
                self.links[(router, port)] = Link(
                    router,
                    port,
                    nbr,
                    opposite_port(port),
                    delay=self.config.link_delay,
                    credit_delay=self.config.credit_delay,
                )

        self._sources = [_SourceQueue() for _ in topo.routers()]
        #: link arriving at (router, input port) — credits travel on it
        self._reverse_links: Dict[Tuple[int, int], Link] = {
            (link.dst_router, link.dst_port): link for link in self.links.values()
        }
        #: links with traffic or credits in flight (skip the rest per cycle).
        #: A dict used as an insertion-ordered set: Link objects hash by
        #: identity, so a real set would iterate in a memory-address order
        #: that differs between runs and machines.
        self._active_links: Dict[Link, None] = {}
        #: routers with a non-empty source queue (skip the rest at
        #: injection); ordered for the same reason.
        self._active_sources: Dict[int, None] = {}
        #: future injections as a (cycle, seq, packet) heap
        self._future: List[Tuple[int, int, Packet]] = []
        self._future_seq = 0
        self._delivered: Deque[Packet] = deque()
        #: packets diverted at ejection (corrupted payloads); the resilient
        #: transport pulls these and retransmits their messages.
        self._dropped: Deque[Packet] = deque()
        self._last_progress_cycle = 0
        self._is_torus = isinstance(topo, Torus)
        #: optional fault-injection state (see repro.resilience.faults);
        #: None means every fault hook below is skipped — zero overhead and
        #: bit-identical behaviour for fault-free runs.
        self.faults = None

    # ------------------------------------------------------------------
    # Driving the simulation
    # ------------------------------------------------------------------
    def inject(self, packet: Packet, cycle: Optional[int] = None) -> None:
        """Queue ``packet`` for injection at ``cycle`` (default: now).

        ``cycle`` may not be in the past; the co-simulation injects messages
        at their creation cycles inside the upcoming quantum.
        """
        when = self.cycle if cycle is None else cycle
        if when < self.cycle:
            raise SimulationError(
                f"cannot inject at cycle {when}; network is at {self.cycle}"
            )
        packet.inject_cycle = when
        heapq.heappush(self._future, (when, self._future_seq, packet))
        self._future_seq += 1

    def attach_faults(self, state) -> None:
        """Install a :class:`repro.resilience.faults.FaultState` (or None)."""
        self.faults = state

    def step(self) -> None:
        """Advance the whole network by one cycle."""
        now = self.cycle
        if self.faults is not None:
            self.faults.on_cycle(self, now)
        self._deliver_link_traffic(now)
        self._admit_new_packets(now)
        self._inject_flits(now)
        progressed = False
        for router in self.routers:
            if router.failed or not router.busy:
                continue
            winners = router.step(now)
            if winners:
                progressed = True
            for out_port, flit, out_vc, in_port, in_vc in winners:
                self._traverse(router.rid, out_port, flit, out_vc, in_port, in_vc, now)
        if progressed:
            self._last_progress_cycle = now
        self._check_watchdog(now)
        self.cycle += 1
        self.stats.cycles = self.cycle

    def run(self, cycles: int) -> None:
        """Step the network ``cycles`` times."""
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 1_000_000) -> None:
        """Step until every injected packet has been delivered."""
        start = self.cycle
        while self.in_flight > 0 or self._future:
            if self.cycle - start > max_cycles:
                raise SimulationError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.in_flight} packets still in flight)"
                )
            self.step()

    def pop_delivered(self) -> List[Packet]:
        """Packets delivered since the previous call, in ejection order."""
        out = list(self._delivered)
        self._delivered.clear()
        return out

    @property
    def in_flight(self) -> int:
        """Packets injected (or scheduled) but not yet delivered."""
        return self.stats.in_flight_packets + len(self._future)

    # ------------------------------------------------------------------
    # Per-cycle phases
    # ------------------------------------------------------------------
    def _deliver_link_traffic(self, now: int) -> None:
        drained = []
        for link in self._active_links:
            for flit, vc in link.arrivals(now):
                if (
                    flit.is_head
                    and self._is_torus
                    and self.topo.is_wrap_channel(link.src_router, link.src_port)
                ):
                    if port_dimension(link.src_port) == 0:
                        flit.packet.dateline_x = 1
                    else:
                        flit.packet.dateline_y = 1
                self.routers[link.dst_router].accept_flit(link.dst_port, vc, flit, now)
            for vc in link.credit_arrivals(now):
                self.routers[link.src_router].accept_credit(link.src_port, vc)
            if link.idle:
                drained.append(link)
        for link in drained:
            self._active_links.pop(link, None)

    def _admit_new_packets(self, now: int) -> None:
        while self._future and self._future[0][0] <= now:
            _, _, packet = heapq.heappop(self._future)
            router = self.topo.node_router(packet.src)
            self._sources[router].pending.append(packet)
            self._active_sources[router] = None
            self.stats.record_injection(packet)

    def _inject_flits(self, now: int) -> None:
        """Move at most one flit per router from its source queue into the
        local input port, claiming an idle VC for each new packet."""
        finished = []
        for rid in self._active_sources:
            source = self._sources[rid]
            router = self.routers[rid]
            if not source.current_flits:
                if not source.pending:
                    finished.append(rid)
                    continue
                vc = router.free_input_vc(LOCAL)
                if vc is None:
                    continue  # all local VCs busy; head waits in the queue
                packet = source.pending.popleft()
                packet.network_entry_cycle = now
                packet.dateline_x = 0
                packet.dateline_y = 0
                source.current_flits = packet.flits()
                source.current_vc = vc
            vc = source.current_vc
            if vc is None:
                raise SimulationError(
                    f"router {rid}: mid-injection packet lost its VC claim"
                )
            ivc = router.inputs[LOCAL][vc]
            if len(ivc.buffer) >= self.config.buffer_depth:
                continue  # no space this cycle; body flits wait at source
            flit = source.current_flits.pop(0)
            router.accept_flit(LOCAL, vc, flit, now)
            if not source.current_flits:
                source.current_vc = None
                if not source.pending:
                    finished.append(rid)
        for rid in finished:
            self._active_sources.pop(rid, None)

    def _traverse(
        self,
        rid: int,
        out_port: int,
        flit: Flit,
        out_vc: int,
        in_port: int,
        in_vc: int,
        now: int,
    ) -> None:
        """Switch-traversal aftermath: move the flit, return the credit."""
        if out_port == LOCAL:
            self._eject(flit, now)
        else:
            link = self.links[(rid, out_port)]
            if flit.is_head:
                flit.packet.hops += 1
                if self.faults is not None:
                    self.faults.on_link_traverse(flit.packet, rid, out_port)
            link.send_flit(flit, out_vc, now)
            self._active_links[link] = None
        # The input buffer slot the flit occupied is now free; tell upstream.
        # The LOCAL input port needs no credit message: the source queue
        # observes buffer occupancy directly.
        upstream_link = self._reverse_link(rid, in_port)
        if upstream_link is not None:
            upstream_link.send_credit(in_vc, now)
            self._active_links[upstream_link] = None

    def _reverse_link(self, rid: int, in_port: int) -> Optional[Link]:
        """Link whose traffic arrives at (rid, in_port) — credits flow on it."""
        return self._reverse_links.get((rid, in_port))

    def _eject(self, flit: Flit, now: int) -> None:
        if flit.is_tail:
            packet = flit.packet
            packet.eject_cycle = now + self.config.ejection_delay
            self.stats.record_ejection(packet)
            if packet.corrupted:
                # Corrupted payloads traverse and eject normally (credit/VC
                # conservation) but are discarded at the ejection port; the
                # resilient transport observes the drop and retransmits.
                self._dropped.append(packet)
                return
            self._delivered.append(packet)
            if self.on_eject is not None:
                self.on_eject(packet, packet.eject_cycle)

    def pop_dropped(self) -> List[Packet]:
        """Packets discarded at ejection (corrupted) since the last call."""
        out = list(self._dropped)
        self._dropped.clear()
        return out

    def _check_watchdog(self, now: int) -> None:
        limit = self.config.watchdog_cycles
        if not limit:
            return
        if self.stats.in_flight_packets > 0 and now - self._last_progress_cycle > limit:
            message = (
                f"no flit movement for {limit} cycles with "
                f"{self.stats.in_flight_packets} packets in flight at cycle "
                f"{now}: likely deadlock (routing={self.routing!r})"
            )
            if self.faults is not None:
                # Under fault injection a freeze is an expected failure mode;
                # raise the structured error with the full diagnostic dump.
                from ..resilience.watchdog import network_diagnostics

                diag = network_diagnostics(self)
                raise StallError(message + "\n" + diag.render(), diagnostics=diag)
            raise SimulationError(message)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def link_utilizations(self) -> Dict[Tuple[int, int], float]:
        """Utilization per (router, out_port) link over the elapsed run."""
        return {
            key: link.utilization(self.cycle) for key, link in self.links.items()
        }

    def buffered_flits(self) -> int:
        """Flits currently buffered across all routers."""
        return sum(router.buffered_flits() for router in self.routers)

    def energy_counters(self) -> "NetworkEventCounts":
        """Event counts for :func:`repro.noc.energy.estimate_energy`."""
        from .energy import NetworkEventCounts

        return NetworkEventCounts(
            buffer_writes=sum(r.buffer_writes for r in self.routers),
            switch_grants=sum(r.sa_grants for r in self.routers),
            link_traversals=sum(l.flits_carried for l in self.links.values()),
            allocations=sum(r.sa_grants + r.va_grants for r in self.routers),
            ejected_flits=self.stats.ejected_flits,
            cycles=self.cycle,
            routers=len(self.routers),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CycleNetwork({self.topo!r}, cycle={self.cycle}, "
            f"in_flight={self.in_flight})"
        )
