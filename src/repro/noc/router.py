"""The input-queued virtual-channel wormhole router.

This is the canonical four-stage VC router (Dally & Towles): buffer write and
route compute, VC allocation, switch allocation, switch traversal.  Pipeline
depth is modelled by holding each flit in its input buffer for
``router_delay`` cycles (its ``ready_cycle``) rather than by simulating the
stages as separate latches — the timing is identical and the code is half the
size.

One :class:`Router` advances one cycle via :meth:`step`; the
:class:`~repro.noc.network.CycleNetwork` owns the links between routers and
delivers flit/credit arrivals before stepping each router.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .arbiter import MatrixArbiter, RoundRobinArbiter
from .config import NocConfig
from .packet import Flit, Packet
from .routing import RoutingFunction
from .topology import LOCAL, Topology, Torus, port_dimension
from .vcalloc import select_output_vc

__all__ = ["Router", "InputVC"]

# Input-VC states
_IDLE = 0  # no packet assigned
_ROUTED = 1  # head flit routed, waiting for an output VC
_ACTIVE = 2  # output VC held; flits may arbitrate for the switch


class InputVC:
    """One virtual channel of one input port: a flit FIFO plus wormhole state."""

    __slots__ = ("buffer", "state", "route_port", "out_vc", "packet")

    def __init__(self) -> None:
        self.buffer: Deque[Flit] = deque()
        self.state = _IDLE
        self.route_port: Optional[int] = None
        self.out_vc: Optional[int] = None
        self.packet: Optional[Packet] = None

    def reset_to_idle(self) -> None:
        self.state = _IDLE
        self.route_port = None
        self.out_vc = None
        self.packet = None


class Router:
    """One VC wormhole router."""

    def __init__(
        self,
        rid: int,
        topo: Topology,
        routing: RoutingFunction,
        config: NocConfig,
    ) -> None:
        self.rid = rid
        self.topo = topo
        self.routing = routing
        self.config = config
        radix = topo.radix
        nvc = config.num_vcs

        #: input VC state: _in[port][vc]
        self.inputs: List[List[InputVC]] = [
            [InputVC() for _ in range(nvc)] for _ in range(radix)
        ]
        #: downstream buffer credits per (output port, vc); the LOCAL output
        #: (ejection) is modelled as an infinite sink, encoded as a large
        #: credit count that is never decremented.
        self.credits: List[List[int]] = [
            [config.buffer_depth] * nvc for _ in range(radix)
        ]
        #: which (in_port, in_vc) currently owns each (out_port, vc)
        self.out_vc_owner: List[List[Optional[Tuple[int, int]]]] = [
            [None] * nvc for _ in range(radix)
        ]

        arb_cls = MatrixArbiter if config.va_arbiter == "matrix" else RoundRobinArbiter
        #: VC-allocation output arbiters, one per (out_port, out_vc), over
        #: the flattened input-VC index space.
        self._va_arbiters = [
            [arb_cls(radix * nvc) for _ in range(nvc)] for _ in range(radix)
        ]
        #: switch allocation: input stage (per input port, over VCs) and
        #: output stage (per output port, over input ports).
        self._sa_input = [RoundRobinArbiter(nvc) for _ in range(radix)]
        self._sa_output = [RoundRobinArbiter(radix) for _ in range(radix)]

        self._dateline_active = isinstance(topo, Torus)
        #: fail-stop flag (set by repro.resilience fault injection): a failed
        #: router stops arbitrating — the network skips its step() — but its
        #: input buffers still accept arriving flits, so upstream credits
        #: starve realistically rather than flits vanishing mid-network.
        self.failed = False
        # Activity tracking: a router with no buffered flits and no VC in a
        # non-idle state cannot do anything this cycle, so the network skips
        # it entirely — the dominant cost saving at low and medium load.
        self._buffered = 0
        self._nonidle_vcs = 0
        # Incremental pipeline-stage work lists.  These only *skip provably
        # inactive VCs*; every arbitration decision is identical to scanning
        # all VCs (iteration is sorted where shared state could otherwise
        # make results machine-dependent).
        self._needs_route: set = set()  # (port, vc) with an unrouted head
        self._awaiting_vc: set = set()  # (port, vc) in ROUTED state
        self._active_vcs: List[List[int]] = [[] for _ in range(radix)]
        # Statistics
        self.flits_routed = 0
        self.sa_grants = 0
        self.sa_conflicts = 0
        self.va_grants = 0
        self.buffer_writes = 0

    @property
    def busy(self) -> bool:
        """True when stepping this router this cycle could have any effect."""
        return self._buffered > 0 or self._nonidle_vcs > 0

    # ------------------------------------------------------------------
    # Arrivals (called by the network before step())
    # ------------------------------------------------------------------
    def accept_flit(self, port: int, vc: int, flit: Flit, now: int) -> None:
        """Buffer-write stage: an arriving flit enters an input VC."""
        ivc = self.inputs[port][vc]
        if len(ivc.buffer) >= self.config.buffer_depth:
            raise SimulationError(
                f"router {self.rid} port {port} vc {vc} buffer overflow "
                f"(credit protocol violated)"
            )
        flit.ready_cycle = now + self.config.router_delay
        was_empty = not ivc.buffer
        ivc.buffer.append(flit)
        self._buffered += 1
        self.buffer_writes += 1
        if was_empty and ivc.state == _IDLE:
            self._needs_route.add((port, vc))

    def accept_credit(self, port: int, vc: int) -> None:
        """A downstream buffer slot was freed."""
        self.credits[port][vc] += 1
        if self.credits[port][vc] > self.config.buffer_depth and port != LOCAL:
            raise SimulationError(
                f"router {self.rid} port {port} vc {vc} credit overflow"
            )

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def step(self, now: int) -> List[Tuple[int, Flit, int, int, int]]:
        """Advance one cycle.

        Returns the switch-traversal winners as
        ``(out_port, flit, out_vc, in_port, in_vc)`` tuples; the network
        moves them onto links (or ejects them for ``out_port == LOCAL``) and
        returns the freed input-buffer credit upstream via ``(in_port,
        in_vc)``.
        """
        self._route_compute()
        self._vc_allocate()
        return self._switch_allocate(now)

    # -- stage 1: route compute ----------------------------------------
    def _route_compute(self) -> None:
        if not self._needs_route:
            return
        for port, vc in sorted(self._needs_route):
            ivc = self.inputs[port][vc]
            if ivc.state != _IDLE or not ivc.buffer:
                continue
            head = ivc.buffer[0]
            if not head.is_head:
                raise SimulationError(
                    f"router {self.rid}: non-head flit {head!r} at the "
                    f"front of an idle VC (wormhole invariant broken)"
                )
            ivc.packet = head.packet
            ivc.route_port = self._pick_route(head.packet)
            ivc.state = _ROUTED
            self._awaiting_vc.add((port, vc))
            self._nonidle_vcs += 1
            self.flits_routed += 1
        self._needs_route.clear()

    def _pick_route(self, packet: Packet) -> int:
        candidates = self.routing.candidates(self.topo, self.rid, self._dst_router(packet))
        if len(candidates) == 1:
            return candidates[0]
        # Adaptive: prefer the candidate with the most downstream credits;
        # deterministic tie-break on candidate order.
        return max(candidates, key=lambda p: (sum(self.credits[p]), -candidates.index(p)))

    def _dst_router(self, packet: Packet) -> int:
        return self.topo.node_router(packet.dst)

    # -- stage 2: VC allocation ----------------------------------------
    def _vc_allocate(self) -> None:
        if not self._awaiting_vc:
            return
        nvc = self.config.num_vcs
        # selection half: each ROUTED input VC picks one output VC to request
        requests: Dict[Tuple[int, int], List[int]] = {}
        for in_port, in_vc in sorted(self._awaiting_vc):
            ivc = self.inputs[in_port][in_vc]
            out_port = ivc.route_port
            if out_port is None or ivc.packet is None:
                raise SimulationError(
                    f"router {self.rid}: VC ({in_port},{in_vc}) awaits "
                    "allocation without a route (VA before RC)"
                )
            free = [self.out_vc_owner[out_port][v] is None for v in range(nvc)]
            # Dateline classes are per ring dimension: the class that matters
            # is the one of the dimension the packet is about to travel in.
            # Ejecting packets (LOCAL) hold no further channel, so class 0.
            if out_port == LOCAL:
                dateline_class = 0
            elif port_dimension(out_port) == 0:
                dateline_class = ivc.packet.dateline_x
            else:
                dateline_class = ivc.packet.dateline_y
            choice = select_output_vc(
                self.config.vc_select,
                ivc.packet,
                free,
                nvc,
                dateline_active=self._dateline_active,
                dateline_class=dateline_class,
            )
            if choice is not None:
                requests.setdefault((out_port, choice), []).append(
                    in_port * nvc + in_vc
                )
        # arbitration half: one winner per contested output VC
        for (out_port, out_vc), reqs in requests.items():
            winner = self._va_arbiters[out_port][out_vc].grant(reqs)
            if winner is None:
                continue
            in_port, in_vc = divmod(winner, nvc)
            ivc = self.inputs[in_port][in_vc]
            ivc.out_vc = out_vc
            ivc.state = _ACTIVE
            self.out_vc_owner[out_port][out_vc] = (in_port, in_vc)
            self.va_grants += 1
            self._awaiting_vc.discard((in_port, in_vc))
            self._active_vcs[in_port].append(in_vc)

    # -- stage 3+4: switch allocation and traversal ---------------------
    def _switch_allocate(self, now: int) -> List[Tuple[int, Flit, int, int, int]]:
        radix = self.topo.radix
        # Input stage: each input port nominates one of its ready VCs
        # (candidates are exactly the ACTIVE VCs of that port).
        per_output: Dict[int, List[int]] = {}
        nominee_vc: Dict[int, int] = {}
        for in_port in range(radix):
            candidates = self._active_vcs[in_port]
            if not candidates:
                continue
            inputs = self.inputs[in_port]
            ready = [vc for vc in candidates if self._sa_ready(inputs[vc], now)]
            if not ready:
                continue
            vc = self._sa_input[in_port].grant(ready)
            if vc is None:
                raise SimulationError(
                    f"router {self.rid}: SA input arbiter granted nobody "
                    f"among ready VCs {ready}"
                )
            nominee_vc[in_port] = vc
            out_port = self.inputs[in_port][vc].route_port
            if out_port is None:
                raise SimulationError(
                    f"router {self.rid}: nominee VC ({in_port},{vc}) has no "
                    "route (SA before RC)"
                )
            per_output.setdefault(out_port, []).append(in_port)

        # Output stage: each output port grants one input port.
        winners: List[Tuple[int, Flit, int, int, int]] = []
        for out_port, in_ports in per_output.items():
            if len(in_ports) > 1:
                self.sa_conflicts += len(in_ports) - 1
            in_port = self._sa_output[out_port].grant(in_ports)
            if in_port is None:
                raise SimulationError(
                    f"router {self.rid}: SA output arbiter granted nobody "
                    f"among requesting ports {in_ports}"
                )
            in_vc = nominee_vc[in_port]
            ivc = self.inputs[in_port][in_vc]
            flit = ivc.buffer.popleft()
            self._buffered -= 1
            out_vc = ivc.out_vc
            if out_vc is None:
                raise SimulationError(
                    f"router {self.rid}: VC ({in_port},{in_vc}) traversed "
                    "the switch without an output VC (ST before VA)"
                )
            self.sa_grants += 1
            if out_port != LOCAL:
                self.credits[out_port][out_vc] -= 1
                if self.credits[out_port][out_vc] < 0:
                    raise SimulationError(
                        f"router {self.rid} port {out_port} vc {out_vc}: "
                        f"sent a flit without a credit"
                    )
            if flit.is_tail:
                self.out_vc_owner[out_port][out_vc] = None
                ivc.reset_to_idle()
                self._nonidle_vcs -= 1
                self._active_vcs[in_port].remove(in_vc)
                if ivc.buffer:
                    # The next packet's head is already waiting behind the
                    # departed tail; route it next cycle.
                    self._needs_route.add((in_port, in_vc))
            winners.append((out_port, flit, out_vc, in_port, in_vc))
        return winners

    def _sa_ready(self, ivc: InputVC, now: int) -> bool:
        if ivc.state != _ACTIVE or not ivc.buffer:
            return False
        if ivc.buffer[0].ready_cycle > now:
            return False
        if ivc.route_port is None or ivc.out_vc is None:
            raise SimulationError(
                f"router {self.rid}: ACTIVE VC lost its route or output VC"
            )
        if ivc.route_port == LOCAL:
            return True  # ejection is always creditworthy (infinite sink)
        return self.credits[ivc.route_port][ivc.out_vc] > 0

    # ------------------------------------------------------------------
    # Introspection helpers (used by stats, adaptive routing, tests)
    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        return sum(len(ivc.buffer) for port in self.inputs for ivc in port)

    def free_input_vc(self, port: int) -> Optional[int]:
        """Lowest idle, empty VC on ``port`` (used for injection)."""
        for vc, ivc in enumerate(self.inputs[port]):
            if ivc.state == _IDLE and not ivc.buffer:
                return vc
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router({self.rid}, buffered={self.buffered_flits()})"
