"""Packets and flits.

A :class:`Packet` is the unit of end-to-end transfer; it is broken into
:class:`Flit` s (flow-control units) at injection.  The first flit is the
*head* (it carries routing information through the network), the last is the
*tail* (it releases virtual channels as it drains).  Single-flit packets are
both head and tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..errors import ConfigError
from ..util import SerialCounter

__all__ = ["MessageClass", "Packet", "Flit", "packet_id_state", "restore_packet_id_state"]


class MessageClass:
    """Well-known message classes, used for statistics and VC preference.

    These mirror the coherence-protocol traffic the full-system simulator
    generates.  Purely synthetic traffic uses :data:`DATA`.
    """

    REQUEST = 0  #: short control packet: GetS/GetX/upgrade
    RESPONSE = 1  #: data-carrying response
    CONTROL = 2  #: invalidations, acks, forwards
    WRITEBACK = 3  #: dirty-data writeback
    DATA = 4  #: generic data (synthetic traffic)

    ALL = (REQUEST, RESPONSE, CONTROL, WRITEBACK, DATA)
    NAMES = {
        REQUEST: "request",
        RESPONSE: "response",
        CONTROL: "control",
        WRITEBACK: "writeback",
        DATA: "data",
    }


# Restorable (not itertools.count) so checkpoint/restore can reinstate the
# exact id position and a restored run issues the same pids it would have.
_packet_ids = SerialCounter()


def packet_id_state() -> int:
    """Snapshot the packet-id counter (for checkpoint/restore)."""
    return _packet_ids.state()


def restore_packet_id_state(state: int) -> None:
    """Reinstate a snapshotted packet-id counter position."""
    _packet_ids.restore(state)


@dataclass
class Packet:
    """One network packet.

    ``inject_cycle`` is the cycle the packet was *created* (handed to the
    network), which may precede the cycle its head flit actually enters a
    router if the injection queue is backed up; the difference is source
    queueing delay and is included in end-to-end latency, as the paper's
    latency metric requires.
    """

    src: int
    dst: int
    size_flits: int
    msg_class: int = MessageClass.DATA
    inject_cycle: int = 0
    payload: Any = None
    pid: int = field(default_factory=_packet_ids.next)

    # Filled in by the network as the packet progresses.
    network_entry_cycle: Optional[int] = None
    eject_cycle: Optional[int] = None
    hops: int = 0

    #: Set by a fault schedule when a transit fault corrupts one of this
    #: packet's flits.  The packet still traverses and ejects normally (so
    #: credit/VC conservation holds) but is discarded at the ejection port
    #: instead of being delivered — end-to-end retransmission recovers it.
    corrupted: bool = False

    #: Dateline VC class per ring dimension, maintained by the network on
    #: tori: 0 until the packet crosses that dimension's wrap channel, 1
    #: after.  Tracked per dimension because the X and Y rings have
    #: independent datelines — a single shared bit would let a stale X
    #: crossing restrict the Y-ring VC choice and reopen the cycle the
    #: dateline exists to break.
    dateline_x: int = 0
    dateline_y: int = 0

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ConfigError(f"packet needs >= 1 flit, got {self.size_flits}")
        if self.src == self.dst:
            raise ConfigError(f"packet src == dst == {self.src}")
        if self.msg_class not in MessageClass.ALL:
            raise ConfigError(f"unknown message class {self.msg_class}")

    # ------------------------------------------------------------------
    def flits(self) -> List["Flit"]:
        """Materialize this packet's flits, head first."""
        last = self.size_flits - 1
        return [
            Flit(packet=self, seq=i, is_head=(i == 0), is_tail=(i == last))
            for i in range(self.size_flits)
        ]

    @property
    def latency(self) -> int:
        """End-to-end latency (creation to tail ejection). Valid once ejected."""
        if self.eject_cycle is None:
            raise ValueError(f"packet {self.pid} has not been ejected yet")
        return self.eject_cycle - self.inject_cycle

    @property
    def network_latency(self) -> int:
        """Latency excluding source queueing (network entry to ejection)."""
        if self.eject_cycle is None or self.network_entry_cycle is None:
            raise ValueError(f"packet {self.pid} has not traversed the network")
        return self.eject_cycle - self.network_entry_cycle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
            f"{self.size_flits}f, cls={MessageClass.NAMES[self.msg_class]})"
        )


@dataclass
class Flit:
    """One flow-control unit of a packet."""

    packet: Packet
    seq: int
    is_head: bool
    is_tail: bool

    #: earliest cycle this flit may leave the input buffer it sits in;
    #: the router sets this to model its pipeline depth.
    ready_cycle: int = 0

    @property
    def dst(self) -> int:
        return self.packet.dst

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit(p{self.packet.pid}#{self.seq}{kind})"
