"""Inter-router channels.

A :class:`Link` is a unidirectional pipelined channel: flits placed on it at
cycle *t* arrive at ``t + delay``.  The same object also carries credits
flowing in the reverse direction (real routers use a sideband wire; modelling
it on the link keeps the delay bookkeeping in one place).

Links record how many cycles they carried a flit, which gives the utilization
statistics the abstract queueing model is validated against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from .packet import Flit

__all__ = ["Link"]


class Link:
    """One directed channel between two router ports."""

    def __init__(
        self,
        src_router: int,
        src_port: int,
        dst_router: int,
        dst_port: int,
        delay: int,
        credit_delay: int,
    ) -> None:
        self.src_router = src_router
        self.src_port = src_port
        self.dst_router = dst_router
        self.dst_port = dst_port
        self.delay = delay
        self.credit_delay = credit_delay
        #: (arrival_cycle, flit, vc) in flight toward dst
        self._flits: Deque[Tuple[int, Flit, int]] = deque()
        #: (arrival_cycle, vc) credits in flight back toward src
        self._credits: Deque[Tuple[int, int]] = deque()
        self.flit_cycles = 0  # cycles this link carried a flit (utilization)
        self.flits_carried = 0
        #: fail-stop flag (set by repro.resilience fault injection): a failed
        #: channel is masked out of routing candidate sets; flits already on
        #: the wire still arrive (the pipeline registers survive the fault).
        self.failed = False

    # ------------------------------------------------------------------
    def send_flit(self, flit: Flit, vc: int, now: int) -> None:
        """Place a flit on the wire at cycle ``now``."""
        self._flits.append((now + self.delay, flit, vc))
        self.flit_cycles += self.delay
        self.flits_carried += 1

    def send_credit(self, vc: int, now: int) -> None:
        """Return one credit for ``vc`` to the upstream router."""
        self._credits.append((now + self.credit_delay, vc))

    # ------------------------------------------------------------------
    def arrivals(self, now: int) -> List[Tuple[Flit, int]]:
        """Pop all flits arriving at exactly cycle ``now`` as (flit, vc)."""
        out: List[Tuple[Flit, int]] = []
        while self._flits and self._flits[0][0] <= now:
            _, flit, vc = self._flits.popleft()
            out.append((flit, vc))
        return out

    def credit_arrivals(self, now: int) -> List[int]:
        """Pop all credits arriving at exactly cycle ``now`` (vc indices)."""
        out: List[int] = []
        while self._credits and self._credits[0][0] <= now:
            out.append(self._credits.popleft()[1])
        return out

    @property
    def in_flight(self) -> int:
        return len(self._flits)

    def in_flight_by_vc(self, num_vcs: int) -> List[int]:
        """Flits currently on the wire, counted per VC (invariant checks)."""
        counts = [0] * num_vcs
        for _, _, vc in self._flits:
            counts[vc] += 1
        return counts

    def credits_in_flight_by_vc(self, num_vcs: int) -> List[int]:
        """Credits travelling back upstream, counted per VC."""
        counts = [0] * num_vcs
        for _, vc in self._credits:
            counts[vc] += 1
        return counts

    @property
    def idle(self) -> bool:
        """True when nothing (flit or credit) is in flight on this channel."""
        return not self._flits and not self._credits

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles this (pipelined) link accepted a new flit.

        A pipelined channel accepts at most one flit per cycle regardless of
        its latency, so utilization is flits carried over elapsed cycles.
        """
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.flits_carried / elapsed_cycles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Link(r{self.src_router}.p{self.src_port} -> "
            f"r{self.dst_router}.p{self.dst_port}, d={self.delay})"
        )
