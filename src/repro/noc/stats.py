"""Statistics collection for network simulators.

:class:`NetworkStats` is shared by the object-oriented cycle network and the
SIMD (GPU-style) network so experiments can compare them directly.  It keeps
streaming aggregates plus the full latency sample list (experiments need
percentiles and distribution comparisons, and even long runs stay in the
low millions of packets).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .packet import Packet

__all__ = ["ClassStats", "NetworkStats"]


@dataclass
class ClassStats:
    """Aggregates for one message class."""

    packets: int = 0
    flits: int = 0
    total_latency: int = 0
    total_network_latency: int = 0
    total_hops: int = 0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.packets if self.packets else 0.0

    @property
    def mean_network_latency(self) -> float:
        return self.total_network_latency / self.packets if self.packets else 0.0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.packets if self.packets else 0.0


@dataclass
class NetworkStats:
    """Aggregate and per-class statistics for a simulated network."""

    injected_packets: int = 0
    injected_flits: int = 0
    ejected_packets: int = 0
    ejected_flits: int = 0
    cycles: int = 0
    per_class: Dict[int, ClassStats] = field(
        default_factory=lambda: defaultdict(ClassStats)
    )
    latencies: List[int] = field(default_factory=list)
    network_latencies: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_injection(self, packet: Packet) -> None:
        self.injected_packets += 1
        self.injected_flits += packet.size_flits

    def record_ejection(self, packet: Packet) -> None:
        self.ejected_packets += 1
        self.ejected_flits += packet.size_flits
        cls = self.per_class[packet.msg_class]
        cls.packets += 1
        cls.flits += packet.size_flits
        cls.total_latency += packet.latency
        cls.total_hops += packet.hops
        self.latencies.append(packet.latency)
        if packet.network_entry_cycle is not None:
            cls.total_network_latency += packet.network_latency
            self.network_latencies.append(packet.network_latency)

    # ------------------------------------------------------------------
    @property
    def in_flight_packets(self) -> int:
        return self.injected_packets - self.ejected_packets

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end packet latency (cycles), incl. source queueing."""
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def mean_network_latency(self) -> float:
        return float(np.mean(self.network_latencies)) if self.network_latencies else 0.0

    def latency_percentile(self, q: float) -> float:
        """``q``-th percentile of packet latency (``q`` in [0, 100])."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, q))

    @property
    def mean_hops(self) -> float:
        pkts = sum(c.packets for c in self.per_class.values())
        hops = sum(c.total_hops for c in self.per_class.values())
        return hops / pkts if pkts else 0.0

    def throughput_flits_per_cycle(self) -> float:
        """Accepted throughput: ejected flits per elapsed cycle."""
        return self.ejected_flits / self.cycles if self.cycles else 0.0

    def offered_load(self, num_nodes: int) -> float:
        """Injected flits per node per cycle."""
        if not self.cycles or not num_nodes:
            return 0.0
        return self.injected_flits / (self.cycles * num_nodes)

    def latency_histogram(self, bin_width: int = 8) -> Dict[int, int]:
        """Histogram of end-to-end latency, keyed by bin lower edge."""
        hist: Dict[int, int] = defaultdict(int)
        for lat in self.latencies:
            hist[(lat // bin_width) * bin_width] += 1
        return dict(sorted(hist.items()))

    def summary(self) -> Dict[str, float]:
        """Flat summary dict, convenient for reports and tests."""
        return {
            "cycles": float(self.cycles),
            "injected_packets": float(self.injected_packets),
            "ejected_packets": float(self.ejected_packets),
            "mean_latency": self.mean_latency,
            "mean_network_latency": self.mean_network_latency,
            "p95_latency": self.latency_percentile(95.0),
            "mean_hops": self.mean_hops,
            "throughput_flits_per_cycle": self.throughput_flits_per_cycle(),
        }

    def class_summary(self, msg_class: int) -> ClassStats:
        return self.per_class[msg_class]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkStats(cycles={self.cycles}, in={self.injected_packets}, "
            f"out={self.ejected_packets}, lat={self.mean_latency:.1f})"
        )
