"""Set-associative cache with LRU replacement and per-line coherence state.

Used for both the private L1s and the distributed L2 banks.  The cache
stores no data — only tags and states — because the simulator is timing-only.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from ..errors import ConfigError

__all__ = ["CacheLineState", "Cache"]


class CacheLineState:
    """MSI states used by the L1s (the L2 stores VALID/DIRTY only)."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"
    VALID = "V"  # L2-only
    DIRTY = "D"  # L2-only


class Cache:
    """Tag array: ``sets`` sets of ``ways`` ways, true-LRU within a set.

    Each set is an :class:`OrderedDict` mapping line -> state with LRU order
    (oldest first), which makes lookup, update, and victim selection all
    O(1) amortized.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets < 1 or ways < 1:
            raise ConfigError(f"cache needs sets>=1 and ways>=1, got {num_sets}/{ways}")
        self.num_sets = num_sets
        self.ways = ways
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(num_sets)]
        # Statistics
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_geometry(cls, total_lines: int, ways: int) -> "Cache":
        """Build a cache holding ``total_lines`` lines with ``ways`` ways."""
        if total_lines % ways:
            raise ConfigError(
                f"total_lines {total_lines} not divisible by ways {ways}"
            )
        return cls(total_lines // ways, ways)

    # ------------------------------------------------------------------
    def _set_for(self, line: int) -> OrderedDict:
        return self._sets[line % self.num_sets]

    def lookup(self, line: int, touch: bool = True) -> Optional[str]:
        """State of ``line`` or None; ``touch`` refreshes LRU on hit."""
        entry = self._set_for(line)
        state = entry.get(line)
        if state is None:
            self.misses += 1
            return None
        if touch:
            entry.move_to_end(line)
        self.hits += 1
        return state

    def peek(self, line: int) -> Optional[str]:
        """State of ``line`` without LRU or statistics side effects."""
        return self._set_for(line).get(line)

    def set_state(self, line: int, state: str) -> None:
        """Update the state of a line that must already be resident."""
        entry = self._set_for(line)
        if line not in entry:
            raise ConfigError(f"line {line} not resident; use insert()")
        entry[line] = state

    def insert(self, line: int, state: str) -> Optional[Tuple[int, str]]:
        """Insert ``line``; returns the evicted ``(line, state)`` if any."""
        entry = self._set_for(line)
        victim: Optional[Tuple[int, str]] = None
        if line not in entry and len(entry) >= self.ways:
            victim = entry.popitem(last=False)  # LRU = oldest
            self.evictions += 1
        entry[line] = state
        entry.move_to_end(line)
        return victim

    def invalidate(self, line: int) -> Optional[str]:
        """Drop ``line``; returns its state if it was resident."""
        return self._set_for(line).pop(line, None)

    # ------------------------------------------------------------------
    def resident_lines(self) -> Iterator[Tuple[int, str]]:
        for entry in self._sets:
            yield from entry.items()

    @property
    def occupancy(self) -> int:
        return sum(len(entry) for entry in self._sets)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cache({self.num_sets}x{self.ways}, occ={self.occupancy}, "
            f"mr={self.miss_rate:.3f})"
        )
