"""Discrete-event kernel for the coarse-grain full-system simulator.

A deliberately small engine: a binary heap of ``(time, sequence, callback)``
entries.  The sequence number makes simultaneous events fire in scheduling
order, which keeps whole-system runs deterministic.

The co-simulation layer drives the kernel in bounded slices
(:meth:`run_until`) — one slice per synchronization quantum.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered callback queue."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, time: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}; simulator is at {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback)

    # ------------------------------------------------------------------
    def run_until(self, time: int) -> None:
        """Process every event with timestamp <= ``time``; leave now=time.

        Events may schedule further events; newly scheduled events inside
        the window are processed in the same call.
        """
        if time < self.now:
            raise SimulationError(f"run_until({time}) but simulator is at {self.now}")
        while self._heap and self._heap[0][0] <= time:
            self.now, _, callback = heapq.heappop(self._heap)
            callback()
            self.events_processed += 1
        self.now = time

    def run_all(self, max_time: Optional[int] = None) -> None:
        """Drain the queue completely (or up to ``max_time``)."""
        while self._heap:
            if max_time is not None and self._heap[0][0] > max_time:
                self.now = max_time
                return
            self.now, _, callback = heapq.heappop(self._heap)
            callback()
            self.events_processed += 1

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._heap)

    def next_event_time(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventQueue(now={self.now}, pending={self.pending})"
