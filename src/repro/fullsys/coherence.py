"""Directory-based MSI coherence protocol.

The protocol is *home-centric and blocking*: every transaction for a line is
serialized at the line's home directory, which stays busy until the requester
sends an Unblock.  Dirty data always flows through the home (owner ->
home -> requester), and dirty L1 evictions are explicit transactions
(PutM / PutAck).  These two choices eliminate the classic directory races
(late writebacks, forward-to-stale-owner) at the cost of one extra hop on
owner-sourced fills — an accepted coarse-grain simplification, documented in
DESIGN.md, that slightly *increases* network traffic and therefore keeps the
co-simulation experiments conservative.

Message walk-throughs:

* **Load miss**: GETS -> home.  Home recalls the owner if any (RECALL_S /
  RECALL_DATA), fetches from memory if the L2 bank misses (MEM_READ /
  MEM_DATA), then DATA -> requester, who answers UNBLOCK.
* **Store miss / upgrade**: GETX -> home.  Home recalls an owner with
  RECALL_X, or sends INV to every sharer; sharers ack the *requester*
  directly (INV_ACK).  DATA carries ``acks_expected``; the requester
  unblocks the home after data and all acks arrive.
* **Dirty eviction**: PUTM (with data) -> home; home answers PUT_ACK.  The
  L1 keeps the line in an *evicting* shadow state until the ack so it can
  still answer a RECALL that crossed the PutM on the wire.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Set

from ..errors import ProtocolError
from ..noc.packet import MessageClass

__all__ = ["MessageKind", "Message", "DirectoryEntry", "message_profile"]


class MessageKind:
    """Protocol message opcodes."""

    GETS = "GetS"
    GETX = "GetX"
    RECALL_S = "RecallS"  # home -> owner: downgrade to S, send data home
    RECALL_X = "RecallX"  # home -> owner: invalidate, send data home
    RECALL_DATA = "RecallData"  # owner -> home
    DATA = "Data"  # home -> requester (carries acks_expected)
    INV = "Inv"  # home -> sharer
    INV_ACK = "InvAck"  # sharer -> requester
    UNBLOCK = "Unblock"  # requester -> home: transaction complete
    PUTM = "PutM"  # L1 -> home: dirty eviction (carries data)
    PUT_ACK = "PutAck"  # home -> L1
    MEM_READ = "MemRead"  # home -> memory controller
    MEM_DATA = "MemData"  # memory controller -> home
    MEM_WB = "MemWB"  # home -> memory controller (dirty L2 victim)


#: (message class, carries_data) per opcode; sizes resolve via CmpConfig.
_PROFILES = {
    MessageKind.GETS: (MessageClass.REQUEST, False),
    MessageKind.GETX: (MessageClass.REQUEST, False),
    MessageKind.RECALL_S: (MessageClass.CONTROL, False),
    MessageKind.RECALL_X: (MessageClass.CONTROL, False),
    MessageKind.RECALL_DATA: (MessageClass.WRITEBACK, True),
    MessageKind.DATA: (MessageClass.RESPONSE, True),
    MessageKind.INV: (MessageClass.CONTROL, False),
    MessageKind.INV_ACK: (MessageClass.CONTROL, False),
    MessageKind.UNBLOCK: (MessageClass.CONTROL, False),
    MessageKind.PUTM: (MessageClass.WRITEBACK, True),
    MessageKind.PUT_ACK: (MessageClass.CONTROL, False),
    MessageKind.MEM_READ: (MessageClass.REQUEST, False),
    MessageKind.MEM_DATA: (MessageClass.RESPONSE, True),
    MessageKind.MEM_WB: (MessageClass.WRITEBACK, True),
}


def message_profile(kind: str) -> tuple:
    """``(msg_class, carries_data)`` for an opcode."""
    try:
        return _PROFILES[kind]
    except KeyError:
        raise ProtocolError(f"unknown message kind {kind!r}") from None


_msg_ids = itertools.count()


@dataclass
class Message:
    """One protocol message travelling between tiles.

    ``size_flits`` and ``msg_class`` are what the network sees; everything
    else is protocol payload.
    """

    kind: str
    src: int
    dst: int
    line: int
    requester: int
    size_flits: int
    msg_class: int
    created_cycle: int = 0
    acks_expected: int = 0
    mid: int = field(default_factory=lambda: next(_msg_ids))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Msg({self.kind} {self.src}->{self.dst} line={self.line} "
            f"req={self.requester} t={self.created_cycle})"
        )


# Directory-entry busy states
IDLE = "idle"
BUSY_RECALL = "busy_recall"  # waiting for RECALL_DATA from the old owner
BUSY_MEM = "busy_mem"  # waiting for MEM_DATA from a memory controller
BUSY_UNBLOCK = "busy_unblock"  # waiting for the requester's UNBLOCK


@dataclass
class DirectoryEntry:
    """Sharing state and transaction context for one line at its home."""

    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)
    state: str = IDLE
    #: request currently being serviced (None when IDLE)
    active: Optional[Message] = None
    #: requests waiting for the line to go idle
    pending: Deque[Message] = field(default_factory=deque)

    @property
    def is_idle(self) -> bool:
        return self.state == IDLE

    @property
    def is_clean_and_quiet(self) -> bool:
        """True when the entry carries no information and can be dropped."""
        return (
            self.state == IDLE
            and self.owner is None
            and not self.sharers
            and not self.pending
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirEntry(owner={self.owner}, sharers={sorted(self.sharers)}, "
            f"state={self.state}, queued={len(self.pending)})"
        )
