"""Directory-based MSI coherence protocol.

The protocol is *home-centric and blocking*: every transaction for a line is
serialized at the line's home directory, which stays busy until the requester
sends an Unblock.  Dirty data always flows through the home (owner ->
home -> requester), and dirty L1 evictions are explicit transactions
(PutM / PutAck).  These two choices eliminate the classic directory races
(late writebacks, forward-to-stale-owner) at the cost of one extra hop on
owner-sourced fills — an accepted coarse-grain simplification, documented in
DESIGN.md, that slightly *increases* network traffic and therefore keeps the
co-simulation experiments conservative.

Message walk-throughs:

* **Load miss**: GETS -> home.  Home recalls the owner if any (RECALL_S /
  RECALL_DATA), fetches from memory if the L2 bank misses (MEM_READ /
  MEM_DATA), then DATA -> requester, who answers UNBLOCK.
* **Store miss / upgrade**: GETX -> home.  Home recalls an owner with
  RECALL_X, or sends INV to every sharer; sharers ack the *requester*
  directly (INV_ACK).  DATA carries ``acks_expected``; the requester
  unblocks the home after data and all acks arrive.
* **Dirty eviction**: PUTM (with data) -> home; home answers PUT_ACK.  The
  L1 keeps the line in an *evicting* shadow state until the ack so it can
  still answer a RECALL that crossed the PutM on the wire.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..errors import ProtocolError
from ..noc.packet import MessageClass
from ..util import SerialCounter

__all__ = [
    "MessageKind",
    "Message",
    "DirectoryEntry",
    "message_profile",
    "TransitionSpec",
    "CacheLabel",
    "MEMORY_READY",
    "DIRECTORY_TABLE",
    "CACHE_TABLE",
    "MEMORY_TABLE",
    "BLOCKING_WAITS",
    "home_bound_kinds",
    "cache_bound_kinds",
    "memory_bound_kinds",
]


class MessageKind:
    """Protocol message opcodes."""

    GETS = "GetS"
    GETX = "GetX"
    RECALL_S = "RecallS"  # home -> owner: downgrade to S, send data home
    RECALL_X = "RecallX"  # home -> owner: invalidate, send data home
    RECALL_DATA = "RecallData"  # owner -> home
    DATA = "Data"  # home -> requester (carries acks_expected)
    INV = "Inv"  # home -> sharer
    INV_ACK = "InvAck"  # sharer -> requester
    UNBLOCK = "Unblock"  # requester -> home: transaction complete
    PUTM = "PutM"  # L1 -> home: dirty eviction (carries data)
    PUT_ACK = "PutAck"  # home -> L1
    MEM_READ = "MemRead"  # home -> memory controller
    MEM_DATA = "MemData"  # memory controller -> home
    MEM_WB = "MemWB"  # home -> memory controller (dirty L2 victim)


#: (message class, carries_data) per opcode; sizes resolve via CmpConfig.
_PROFILES = {
    MessageKind.GETS: (MessageClass.REQUEST, False),
    MessageKind.GETX: (MessageClass.REQUEST, False),
    MessageKind.RECALL_S: (MessageClass.CONTROL, False),
    MessageKind.RECALL_X: (MessageClass.CONTROL, False),
    MessageKind.RECALL_DATA: (MessageClass.WRITEBACK, True),
    MessageKind.DATA: (MessageClass.RESPONSE, True),
    MessageKind.INV: (MessageClass.CONTROL, False),
    MessageKind.INV_ACK: (MessageClass.CONTROL, False),
    MessageKind.UNBLOCK: (MessageClass.CONTROL, False),
    MessageKind.PUTM: (MessageClass.WRITEBACK, True),
    MessageKind.PUT_ACK: (MessageClass.CONTROL, False),
    MessageKind.MEM_READ: (MessageClass.REQUEST, False),
    MessageKind.MEM_DATA: (MessageClass.RESPONSE, True),
    MessageKind.MEM_WB: (MessageClass.WRITEBACK, True),
}


def message_profile(kind: str) -> tuple:
    """``(msg_class, carries_data)`` for an opcode."""
    try:
        return _PROFILES[kind]
    except KeyError:
        raise ProtocolError(f"unknown message kind {kind!r}") from None


# Restorable (not itertools.count) so checkpoint/restore can reinstate the
# exact id position and a restored run issues the same mids it would have.
_msg_ids = SerialCounter()


def message_id_state() -> int:
    """Snapshot the message-id counter (for checkpoint/restore)."""
    return _msg_ids.state()


def restore_message_id_state(state: int) -> None:
    """Reinstate a snapshotted message-id counter position."""
    _msg_ids.restore(state)


@dataclass
class Message:
    """One protocol message travelling between tiles.

    ``size_flits`` and ``msg_class`` are what the network sees; everything
    else is protocol payload.
    """

    kind: str
    src: int
    dst: int
    line: int
    requester: int
    size_flits: int
    msg_class: int
    created_cycle: int = 0
    acks_expected: int = 0
    mid: int = field(default_factory=_msg_ids.next)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Msg({self.kind} {self.src}->{self.dst} line={self.line} "
            f"req={self.requester} t={self.created_cycle})"
        )


# Directory-entry busy states
IDLE = "idle"
BUSY_RECALL = "busy_recall"  # waiting for RECALL_DATA from the old owner
BUSY_MEM = "busy_mem"  # waiting for MEM_DATA from a memory controller
BUSY_UNBLOCK = "busy_unblock"  # waiting for the requester's UNBLOCK


@dataclass
class DirectoryEntry:
    """Sharing state and transaction context for one line at its home."""

    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)
    state: str = IDLE
    #: request currently being serviced (None when IDLE)
    active: Optional[Message] = None
    #: requests waiting for the line to go idle
    pending: Deque[Message] = field(default_factory=deque)

    @property
    def is_idle(self) -> bool:
        return self.state == IDLE

    @property
    def is_clean_and_quiet(self) -> bool:
        """True when the entry carries no information and can be dropped."""
        return (
            self.state == IDLE
            and self.owner is None
            and not self.sharers
            and not self.pending
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirEntry(owner={self.owner}, sharers={sorted(self.sharers)}, "
            f"state={self.state}, queued={len(self.pending)})"
        )


# ---------------------------------------------------------------------------
# Declarative protocol tables
# ---------------------------------------------------------------------------
#
# The tables below are the protocol *specification* the implementations in
# :mod:`repro.fullsys.directory` and :mod:`repro.fullsys.core_model` are held
# to.  They are data, not code, so that
#
# * :mod:`repro.fullsys.cmp` can derive message routing (which controller a
#   kind is bound for) instead of hard-coding parallel kind sets, and
# * the configuration verifier (:mod:`repro.verify.protocol`) can enumerate
#   the reachable protocol state space and flag any (state, kind) pair the
#   tables do not cover — before a single cycle is simulated.
#
# A row keyed ``(state_label, kind)`` means: a controller whose abstract
# state has that label handles an arriving message of that kind, may emit
# any subset of ``emits``, and lands in one of ``next_states``.  *Absence*
# of a row is a claim that the pair is unreachable; the verifier either
# proves that claim or produces the message interleaving that refutes it.


@dataclass(frozen=True)
class TransitionSpec:
    """One (state, message kind) row of a protocol table."""

    #: message kinds the handler may send while processing (superset).
    emits: FrozenSet[str]
    #: abstract state labels the controller may be in afterwards.
    next_states: FrozenSet[str]


def _spec(emits: Iterable[str] = (), next_states: Iterable[str] = ()) -> TransitionSpec:
    return TransitionSpec(frozenset(emits), frozenset(next_states))


class CacheLabel:
    """Abstract L1 states (base MSI x MSHR x eviction shadow).

    The stable states are plain MSI.  Transient names follow the usual
    Sorin-style convention: ``XY_Z`` is "was X, becoming Y, waiting for Z"
    with D = data and A = acks (PutAck for the eviction states).  ``^def``
    marks a miss deferred behind an in-flight PutM for the same line
    (:class:`~repro.fullsys.core_model.Mshr` ``deferred``), and ``^defr``
    additionally records that the eviction shadow already answered a recall
    (so the line may be on the directory's sharer list again).
    """

    I = "I"  # noqa: E741 - conventional MSI name
    S = "S"
    M = "M"
    IS_D = "IS_D"
    IM_AD = "IM_AD"
    IM_A = "IM_A"
    SM_AD = "SM_AD"
    SM_A = "SM_A"
    MI_A = "MI_A"
    II_A = "II_A"
    IS_D_DEF = "IS_D^def"
    IM_AD_DEF = "IM_AD^def"
    IS_D_DEF_R = "IS_D^defr"
    IM_AD_DEF_R = "IM_AD^defr"

    STABLE = frozenset((I, S, M))
    TRANSIENT = frozenset(
        (IS_D, IM_AD, IM_A, SM_AD, SM_A, MI_A, II_A,
         IS_D_DEF, IM_AD_DEF, IS_D_DEF_R, IM_AD_DEF_R)
    )
    ALL = STABLE | TRANSIENT


#: the (only) abstract state of a memory controller: always ready.
MEMORY_READY = "ready"

_QUEUED_KINDS = (MessageKind.GETS, MessageKind.GETX, MessageKind.PUTM)

#: Home/directory transitions.  Requests arriving at a busy entry are queued
#: unchanged (the blocking home), which the table records as a self-loop;
#: the dequeue on return to IDLE is a fresh application of the IDLE row for
#: the queued kind.
DIRECTORY_TABLE: Dict[Tuple[str, str], TransitionSpec] = {
    (IDLE, MessageKind.GETS): _spec(
        emits=(MessageKind.RECALL_S, MessageKind.MEM_READ, MessageKind.DATA),
        next_states=(BUSY_RECALL, BUSY_MEM, BUSY_UNBLOCK),
    ),
    (IDLE, MessageKind.GETX): _spec(
        emits=(
            MessageKind.RECALL_X,
            MessageKind.MEM_READ,
            MessageKind.INV,
            MessageKind.DATA,
        ),
        next_states=(BUSY_RECALL, BUSY_MEM, BUSY_UNBLOCK),
    ),
    (IDLE, MessageKind.PUTM): _spec(
        emits=(MessageKind.PUT_ACK, MessageKind.MEM_WB),
        next_states=(IDLE,),
    ),
    (BUSY_RECALL, MessageKind.RECALL_DATA): _spec(
        emits=(MessageKind.MEM_WB, MessageKind.INV, MessageKind.DATA),
        next_states=(BUSY_UNBLOCK,),
    ),
    (BUSY_MEM, MessageKind.MEM_DATA): _spec(
        emits=(MessageKind.MEM_WB, MessageKind.INV, MessageKind.DATA),
        next_states=(BUSY_UNBLOCK,),
    ),
    (BUSY_UNBLOCK, MessageKind.UNBLOCK): _spec(next_states=(IDLE,)),
}
for _busy in (BUSY_RECALL, BUSY_MEM, BUSY_UNBLOCK):
    for _kind in _QUEUED_KINDS:
        DIRECTORY_TABLE[(_busy, _kind)] = _spec(next_states=(_busy,))

#: L1/requester transitions, message-triggered only — the spontaneous core
#: actions (issuing misses, upgrades, evictions, silent Shared drops) are
#: state transitions of the *core*, not responses to messages, and are
#: modelled directly by the verifier's executor.
CACHE_TABLE: Dict[Tuple[str, str], TransitionSpec] = {
    # Stale-sharer invalidations: the directory's sharer list may lag the
    # cache (silent Shared drops; re-add via a RecallS answered from an
    # eviction shadow), so Inv must be handled in every state the cache can
    # occupy while still on that list.
    (CacheLabel.I, MessageKind.INV): _spec(
        emits=(MessageKind.INV_ACK,), next_states=(CacheLabel.I,)
    ),
    (CacheLabel.S, MessageKind.INV): _spec(
        emits=(MessageKind.INV_ACK,), next_states=(CacheLabel.I,)
    ),
    (CacheLabel.IS_D, MessageKind.INV): _spec(
        emits=(MessageKind.INV_ACK,), next_states=(CacheLabel.IS_D,)
    ),
    (CacheLabel.IM_AD, MessageKind.INV): _spec(
        emits=(MessageKind.INV_ACK,), next_states=(CacheLabel.IM_AD,)
    ),
    (CacheLabel.SM_AD, MessageKind.INV): _spec(
        emits=(MessageKind.INV_ACK,), next_states=(CacheLabel.IM_AD,)
    ),
    (CacheLabel.II_A, MessageKind.INV): _spec(
        emits=(MessageKind.INV_ACK,), next_states=(CacheLabel.II_A,)
    ),
    (CacheLabel.IS_D_DEF_R, MessageKind.INV): _spec(
        emits=(MessageKind.INV_ACK,), next_states=(CacheLabel.IS_D_DEF_R,)
    ),
    (CacheLabel.IM_AD_DEF_R, MessageKind.INV): _spec(
        emits=(MessageKind.INV_ACK,), next_states=(CacheLabel.IM_AD_DEF_R,)
    ),
    # Fills.  A GetS fill with a coalesced store behind it immediately
    # upgrades (GetX), landing in SM_AD rather than S.
    (CacheLabel.IS_D, MessageKind.DATA): _spec(
        emits=(MessageKind.UNBLOCK, MessageKind.GETX),
        next_states=(CacheLabel.S, CacheLabel.SM_AD),
    ),
    (CacheLabel.IM_AD, MessageKind.DATA): _spec(
        emits=(MessageKind.UNBLOCK,),
        next_states=(CacheLabel.M, CacheLabel.IM_A),
    ),
    (CacheLabel.SM_AD, MessageKind.DATA): _spec(
        emits=(MessageKind.UNBLOCK,),
        next_states=(CacheLabel.M, CacheLabel.SM_A),
    ),
    # Invalidation acks travel sharer -> requester and may arrive before
    # the Data they complement.
    (CacheLabel.IM_AD, MessageKind.INV_ACK): _spec(
        next_states=(CacheLabel.IM_AD,)
    ),
    (CacheLabel.SM_AD, MessageKind.INV_ACK): _spec(
        next_states=(CacheLabel.SM_AD,)
    ),
    (CacheLabel.IM_A, MessageKind.INV_ACK): _spec(
        emits=(MessageKind.UNBLOCK,),
        next_states=(CacheLabel.M, CacheLabel.IM_A),
    ),
    (CacheLabel.SM_A, MessageKind.INV_ACK): _spec(
        emits=(MessageKind.UNBLOCK,),
        next_states=(CacheLabel.M, CacheLabel.SM_A),
    ),
    # Recalls of an owned copy; also answered from the eviction shadow when
    # the PutM crossed the recall on the wire.
    (CacheLabel.M, MessageKind.RECALL_S): _spec(
        emits=(MessageKind.RECALL_DATA,), next_states=(CacheLabel.S,)
    ),
    (CacheLabel.M, MessageKind.RECALL_X): _spec(
        emits=(MessageKind.RECALL_DATA,), next_states=(CacheLabel.I,)
    ),
    (CacheLabel.MI_A, MessageKind.RECALL_S): _spec(
        emits=(MessageKind.RECALL_DATA,), next_states=(CacheLabel.II_A,)
    ),
    (CacheLabel.MI_A, MessageKind.RECALL_X): _spec(
        emits=(MessageKind.RECALL_DATA,), next_states=(CacheLabel.II_A,)
    ),
    (CacheLabel.IS_D_DEF, MessageKind.RECALL_S): _spec(
        emits=(MessageKind.RECALL_DATA,), next_states=(CacheLabel.IS_D_DEF_R,)
    ),
    (CacheLabel.IS_D_DEF, MessageKind.RECALL_X): _spec(
        emits=(MessageKind.RECALL_DATA,), next_states=(CacheLabel.IS_D_DEF_R,)
    ),
    (CacheLabel.IM_AD_DEF, MessageKind.RECALL_S): _spec(
        emits=(MessageKind.RECALL_DATA,), next_states=(CacheLabel.IM_AD_DEF_R,)
    ),
    (CacheLabel.IM_AD_DEF, MessageKind.RECALL_X): _spec(
        emits=(MessageKind.RECALL_DATA,), next_states=(CacheLabel.IM_AD_DEF_R,)
    ),
    # Eviction completion; a deferred miss is released (sent) by the ack.
    (CacheLabel.MI_A, MessageKind.PUT_ACK): _spec(next_states=(CacheLabel.I,)),
    (CacheLabel.II_A, MessageKind.PUT_ACK): _spec(next_states=(CacheLabel.I,)),
    (CacheLabel.IS_D_DEF, MessageKind.PUT_ACK): _spec(
        emits=(MessageKind.GETS,), next_states=(CacheLabel.IS_D,)
    ),
    (CacheLabel.IM_AD_DEF, MessageKind.PUT_ACK): _spec(
        emits=(MessageKind.GETX,), next_states=(CacheLabel.IM_AD,)
    ),
    (CacheLabel.IS_D_DEF_R, MessageKind.PUT_ACK): _spec(
        emits=(MessageKind.GETS,), next_states=(CacheLabel.IS_D,)
    ),
    (CacheLabel.IM_AD_DEF_R, MessageKind.PUT_ACK): _spec(
        emits=(MessageKind.GETX,), next_states=(CacheLabel.IM_AD,)
    ),
}

#: Memory controllers are always ready and answer unconditionally.
MEMORY_TABLE: Dict[Tuple[str, str], TransitionSpec] = {
    (MEMORY_READY, MessageKind.MEM_READ): _spec(
        emits=(MessageKind.MEM_DATA,), next_states=(MEMORY_READY,)
    ),
    (MEMORY_READY, MessageKind.MEM_WB): _spec(next_states=(MEMORY_READY,)),
}

#: The *blocking* waits of the protocol: directory busy states refuse to
#: start another transaction until the named kind arrives.  Cache transient
#: states keep consuming every message and therefore never block; the
#: protocol-deadlock (message-class cycle) analysis in
#: :mod:`repro.verify.protocol` builds its dependency graph from exactly
#: these waits.
BLOCKING_WAITS: Dict[str, FrozenSet[str]] = {
    BUSY_RECALL: frozenset((MessageKind.RECALL_DATA,)),
    BUSY_MEM: frozenset((MessageKind.MEM_DATA,)),
    BUSY_UNBLOCK: frozenset((MessageKind.UNBLOCK,)),
}


def home_bound_kinds(
    table: Optional[Dict[Tuple[str, str], TransitionSpec]] = None,
) -> FrozenSet[str]:
    """Message kinds addressed to a home/directory controller."""
    return frozenset(kind for _, kind in (table or DIRECTORY_TABLE))


def cache_bound_kinds(
    table: Optional[Dict[Tuple[str, str], TransitionSpec]] = None,
) -> FrozenSet[str]:
    """Message kinds addressed to an L1/requester controller."""
    return frozenset(kind for _, kind in (table or CACHE_TABLE))


def memory_bound_kinds(
    table: Optional[Dict[Tuple[str, str], TransitionSpec]] = None,
) -> FrozenSet[str]:
    """Message kinds addressed to a memory controller."""
    return frozenset(kind for _, kind in (table or MEMORY_TABLE))
