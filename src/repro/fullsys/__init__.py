"""Coarse-grain full-system CMP simulator — the paper's *system context*.

One tile per node: in-order core with bounded MLP, private L1, a bank of the
distributed shared L2 with its directory, and (at designated tiles) a memory
controller.  Coherence is a blocking home-centric MSI directory protocol;
every inter-tile protocol message crosses the pluggable network transport,
which is where the reciprocal-abstraction co-simulation attaches.
"""

from .address import AddressMap
from .cache import Cache, CacheLineState
from .cmp import CmpSystem, FixedTransport
from .coherence import DirectoryEntry, Message, MessageKind, message_profile
from .config import CmpConfig
from .core_model import Core, CoreProgram, Mshr, Phase
from .directory import HomeController
from .events import EventQueue
from .memory import MemoryController, assign_controllers

__all__ = [
    "AddressMap",
    "Cache",
    "CacheLineState",
    "CmpSystem",
    "FixedTransport",
    "CmpConfig",
    "Core",
    "CoreProgram",
    "Mshr",
    "Phase",
    "HomeController",
    "EventQueue",
    "MemoryController",
    "assign_controllers",
    "Message",
    "MessageKind",
    "DirectoryEntry",
    "message_profile",
]
