"""Configuration of the coarse-grain full-system CMP simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigError
from ..util import check_positive

__all__ = ["CmpConfig"]


@dataclass
class CmpConfig:
    """Target-machine parameters for :class:`~repro.fullsys.cmp.CmpSystem`.

    Cache geometries are in *lines* (the simulator is timing-only, so line
    size in bytes never appears except through ``data_flits``).

    Attributes:
        l1_lines / l1_ways: private L1 data cache per core.
        l2_lines / l2_ways: one distributed shared-L2 bank per tile.
        l1_hit_latency: cycles per L1 hit (charged inline to the core).
        dir_latency: directory/L2-bank controller occupancy per message.
        l2_latency: extra cycles for an L2 data array access.
        mem_latency: DRAM access latency at a memory controller.
        mem_service: cycles between successive requests one controller can
            accept (bandwidth model).
        mem_controllers: tile ids hosting memory controllers; ``None`` picks
            the four mesh corners (or fewer for tiny systems).
        memory_model: ``"simple"`` (service-interval bandwidth model using
            ``mem_latency``/``mem_service``) or ``"dram"`` (detailed banked
            open-page controller from :mod:`repro.dram`).
        ipc: core issue rate for non-memory instructions.
        mlp: outstanding L1 misses a core tolerates before stalling — the
            self-throttling knob that makes traffic realistic in context.
        ctrl_flits / data_flits: network sizes of control and data messages.
        local_latency: delivery latency for messages whose source and
            destination tile coincide (they never enter the network).
        barrier_latency: cycles to release a phase barrier once the last
            core arrives.
        segment_max_accesses / segment_max_cycles: bounds on how much work a
            core simulates per event (coarseness of event interleaving).
    """

    l1_lines: int = 512
    l1_ways: int = 8
    l2_lines: int = 4096
    l2_ways: int = 16
    l1_hit_latency: int = 1
    dir_latency: int = 2
    l2_latency: int = 4
    mem_latency: int = 120
    mem_service: int = 4
    mem_controllers: Optional[List[int]] = None
    memory_model: str = "simple"
    ipc: float = 2.0
    mlp: int = 4
    ctrl_flits: int = 1
    data_flits: int = 5
    local_latency: int = 3
    barrier_latency: int = 20
    segment_max_accesses: int = 64
    segment_max_cycles: int = 256

    def __post_init__(self) -> None:
        for name in (
            "l1_lines",
            "l1_ways",
            "l2_lines",
            "l2_ways",
            "l1_hit_latency",
            "dir_latency",
            "l2_latency",
            "mem_latency",
            "mem_service",
            "mlp",
            "ctrl_flits",
            "data_flits",
            "local_latency",
            "barrier_latency",
            "segment_max_accesses",
            "segment_max_cycles",
        ):
            check_positive(getattr(self, name), name)
        check_positive(self.ipc, "ipc")
        if self.l1_lines % self.l1_ways:
            raise ConfigError("l1_lines must be divisible by l1_ways")
        if self.l2_lines % self.l2_ways:
            raise ConfigError("l2_lines must be divisible by l2_ways")
        if self.memory_model not in ("simple", "dram"):
            raise ConfigError(f"unknown memory_model {self.memory_model!r}")

    def default_mem_controllers(self, width: int, height: int) -> List[int]:
        """The four grid corners (deduplicated for degenerate grids)."""
        corners = {
            0,
            width - 1,
            (height - 1) * width,
            height * width - 1,
        }
        return sorted(corners)
