"""Memory-controller model.

A controller is a single-channel DRAM interface with a fixed access latency
and a service-interval bandwidth model: it can *accept* one request every
``mem_service`` cycles, so bursts queue up and later requests see the queue.
Each home tile is statically assigned to its nearest controller, which is
what concentrates memory traffic on the corner tiles and produces the
hotspot component of realistic NoC load.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigError
from ..noc.topology import Topology

__all__ = ["MemoryController", "assign_controllers"]


class MemoryController:
    """Bandwidth-limited DRAM channel at one tile."""

    def __init__(self, node: int, latency: int, service_interval: int) -> None:
        if latency < 1 or service_interval < 1:
            raise ConfigError("memory latency and service interval must be >= 1")
        self.node = node
        self.latency = latency
        self.service_interval = service_interval
        self._next_free = 0
        # Statistics
        self.reads = 0
        self.writebacks = 0
        self.total_queue_delay = 0

    def service_read(self, now: int) -> int:
        """Accept a read at ``now``; returns the cycle its data is ready."""
        start = max(now, self._next_free)
        self._next_free = start + self.service_interval
        self.reads += 1
        self.total_queue_delay += start - now
        return start + self.latency

    def service_writeback(self, now: int) -> None:
        """Accept a writeback (consumes bandwidth, needs no response)."""
        start = max(now, self._next_free)
        self._next_free = start + self.service_interval
        self.writebacks += 1
        self.total_queue_delay += start - now

    # ------------------------------------------------------------------
    # Uniform memory-model interface (shared with repro.dram)
    # ------------------------------------------------------------------
    def read(self, line: int, now: int, on_ready) -> None:
        """Accept a read; invoke ``on_ready(completion_cycle)``.

        The simple model resolves completion immediately; detailed models
        (``repro.dram``) may call back later from their own events.
        """
        on_ready(self.service_read(now))

    def writeback(self, line: int, now: int) -> None:
        self.service_writeback(now)

    @property
    def mean_queue_delay(self) -> float:
        total = self.reads + self.writebacks
        return self.total_queue_delay / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryController(node={self.node}, reads={self.reads})"


def assign_controllers(topo: Topology, controller_nodes: List[int]) -> Dict[int, int]:
    """Map every tile to its nearest controller node (ties: lowest id)."""
    if not controller_nodes:
        raise ConfigError("need at least one memory controller")
    for node in controller_nodes:
        if not 0 <= node < topo.num_nodes:
            raise ConfigError(f"memory controller node {node} outside the topology")
    assignment: Dict[int, int] = {}
    for tile in range(topo.num_nodes):
        assignment[tile] = min(
            controller_nodes,
            key=lambda mc: (topo.node_distance(tile, mc), mc),
        )
    return assignment
