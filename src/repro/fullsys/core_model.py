"""In-order core with bounded miss-level parallelism, plus its L1 controller.

The core executes a :class:`CoreProgram` — an abstract instruction stream
described by (gap, address, is_write) triples — in *segments*: one event
simulates up to ``segment_max_accesses`` memory accesses inline (L1 hits
cost their latency immediately; misses allocate MSHRs).  When the number of
outstanding misses reaches ``mlp`` the core stalls until a fill returns.
This bounded-MLP behaviour is what makes the generated network traffic
self-throttling, the property the paper shows vacuum simulation loses.

The L1 controller half of this module implements the requester side of the
MSI protocol in :mod:`repro.fullsys.coherence`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from ..errors import ProtocolError, WorkloadError
from .cache import Cache, CacheLineState
from .coherence import Message, MessageKind

__all__ = ["CoreProgram", "Phase", "Core", "Mshr"]


@dataclass
class Phase:
    """One program phase: an instruction budget with its own access mix."""

    instructions: int
    name: str = ""


class CoreProgram(Protocol):
    """What a core executes.  Implemented by :mod:`repro.workloads`."""

    phases: List[Phase]

    def next_access(self, phase: int) -> Tuple[int, int, bool]:
        """Next memory access in ``phase``: (gap_instructions, line, is_write).

        ``gap_instructions`` is the number of non-memory instructions retired
        before this access.  Streams are infinite per phase; the phase's
        instruction budget decides when the core moves on.
        """
        ...


@dataclass
class Mshr:
    """Miss-status register: one outstanding L1 miss.

    ``requested_write`` is what was asked of the directory (GetS vs GetX)
    and decides the fill state; ``wants_write`` additionally tracks stores
    coalesced into a read miss — the fill then triggers a follow-up upgrade
    GetX, because installing Modified without the directory's permission
    would break coherence.
    """

    line: int
    requested_write: bool
    issued_at: int
    wants_write: bool = False
    acks_expected: Optional[int] = None  # unknown until DATA arrives
    acks_received: int = 0
    data_received: bool = False
    #: accesses coalesced into this miss while it was outstanding
    coalesced: int = 0
    #: True while the request is held back by a pending PutM for the same
    #: line (sent when the PutAck arrives) — prevents the stale-writeback
    #: race where the home mistakes the old PutM for the new copy's.
    deferred: bool = False

    @property
    def complete(self) -> bool:
        return self.data_received and (
            self.acks_expected is not None
            and self.acks_received >= self.acks_expected
        )


class Core:
    """One tile's core + L1 cache + requester-side protocol engine.

    The surrounding :class:`~repro.fullsys.cmp.CmpSystem` provides the
    event queue, message transport, and configuration through the ``system``
    handle; the core never touches other tiles directly.
    """

    def __init__(self, core_id: int, system, program: CoreProgram) -> None:
        self.core_id = core_id
        self.system = system
        self.program = program
        cfg = system.config
        self.l1 = Cache.from_geometry(cfg.l1_lines, cfg.l1_ways)
        self.mshrs: Dict[int, Mshr] = {}
        #: dirty lines evicted but not yet PUT_ACKed (shadow copies that can
        #: still answer a RECALL crossing the PutM in flight)
        self.evicting: Dict[int, bool] = {}  # line -> recalled?

        self.phase_idx = 0
        self.instr_done = 0  # within the current phase
        self._time_frac = 0.0  # sub-cycle accumulator for ipc division
        self.stalled = False
        self.at_barrier = False
        self.finished = False
        self.finish_cycle: Optional[int] = None

        # Statistics
        self.instructions_retired = 0
        self.accesses = 0
        self.l1_hits = 0
        self.l1_misses = 0
        self.coalesced_accesses = 0
        self.stall_events = 0
        self.upgrades = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first execution segment."""
        if not self.program.phases:
            raise WorkloadError(f"core {self.core_id} has an empty program")
        self.system.events.schedule(self.system.now, self._segment)

    def _segment(self) -> None:
        """Execute one bounded slice of the program."""
        if self.finished or self.stalled or self.at_barrier:
            return
        cfg = self.system.config
        t = self.system.now
        deadline = t + cfg.segment_max_cycles
        for _ in range(cfg.segment_max_accesses):
            phase_budget = self.program.phases[self.phase_idx].instructions
            if self.instr_done >= phase_budget:
                self._reach_barrier(t)
                return
            gap, line, is_write = self.program.next_access(self.phase_idx)
            remaining = phase_budget - self.instr_done
            if gap >= remaining:
                # The phase ends inside the gap; retire the tail and loop
                # into the barrier branch above.
                t = self._advance(t, remaining)
                self.instr_done += remaining
                self.instructions_retired += remaining
                continue
            t = self._advance(t, gap)
            self.instr_done += gap + 1
            self.instructions_retired += gap + 1
            t = self._access(line, is_write, t)
            if self.stalled:
                return
            if t >= deadline:
                break
        self.system.events.schedule(max(t, self.system.now + 1), self._segment)

    def _advance(self, t: int, instructions: int) -> int:
        """Advance local time by ``instructions`` non-memory instructions."""
        exact = instructions / self.system.config.ipc + self._time_frac
        whole = int(exact)
        self._time_frac = exact - whole
        return t + whole

    def _access(self, line: int, is_write: bool, t: int) -> int:
        """Simulate one memory access at local time ``t``."""
        self.accesses += 1
        cfg = self.system.config
        state = self.l1.lookup(line)
        if state is not None:
            writable = state == CacheLineState.MODIFIED
            if not is_write or writable:
                self.l1_hits += 1
                return t + cfg.l1_hit_latency
            # Store to a Shared line: upgrade via GETX.
            self.upgrades += 1
        if line in self.mshrs:
            # Coalesce with the in-flight miss for the same line.
            mshr = self.mshrs[line]
            mshr.wants_write = mshr.wants_write or is_write
            if mshr.deferred and is_write:
                # Not sent yet: upgrade the request itself instead of
                # filling Shared and immediately upgrading.
                mshr.requested_write = True
            mshr.coalesced += 1
            self.coalesced_accesses += 1
            return t + cfg.l1_hit_latency
        self.l1_misses += 1
        self._issue_miss(line, is_write, t)
        if len(self.mshrs) >= cfg.mlp:
            self.stalled = True
            self.stall_events += 1
        return t + cfg.l1_hit_latency

    def _reach_barrier(self, t: int) -> None:
        self.at_barrier = True
        self.system.barrier_arrive(self.core_id, self.phase_idx, max(t, self.system.now))

    def resume_from_barrier(self) -> None:
        """Called by the system when the phase barrier releases."""
        self.at_barrier = False
        self.phase_idx += 1
        self.instr_done = 0
        if self.phase_idx >= len(self.program.phases):
            self.finished = True
            self.finish_cycle = self.system.now
            self.system.core_finished(self.core_id)
            return
        if not self.stalled:
            self.system.events.schedule(self.system.now, self._segment)

    # ------------------------------------------------------------------
    # Requester-side protocol
    # ------------------------------------------------------------------
    def _issue_miss(self, line: int, is_write: bool, t: int) -> None:
        mshr = Mshr(
            line=line, requested_write=is_write, issued_at=t, wants_write=is_write
        )
        self.mshrs[line] = mshr
        if line in self.evicting:
            # A PutM for this very line is still in flight.  Sending the
            # request now could let it overtake the PutM and make the home
            # recall us, re-grant ownership, and then misread the old PutM
            # as a writeback of the *new* copy.  Hold the request until the
            # PutAck closes the eviction (standard MSHR behaviour).
            mshr.deferred = True
            return
        self._send_miss(mshr, at=t)

    def _send_miss(self, mshr: Mshr, at: Optional[int] = None) -> None:
        kind = MessageKind.GETX if mshr.requested_write else MessageKind.GETS
        self.system.send_protocol(
            kind,
            src=self.core_id,
            dst=self.system.address_map.home_tile(mshr.line),
            line=mshr.line,
            requester=self.core_id,
            at=at,
        )

    def handle_message(self, msg: Message) -> None:
        """Dispatch an L1-bound protocol message."""
        handler = {
            MessageKind.DATA: self._on_data,
            MessageKind.INV: self._on_inv,
            MessageKind.INV_ACK: self._on_inv_ack,
            MessageKind.RECALL_S: self._on_recall,
            MessageKind.RECALL_X: self._on_recall,
            MessageKind.PUT_ACK: self._on_put_ack,
        }.get(msg.kind)
        if handler is None:
            raise ProtocolError(f"core {self.core_id}: unexpected {msg!r}")
        handler(msg)

    def _on_data(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None:
            raise ProtocolError(f"core {self.core_id}: DATA without MSHR: {msg!r}")
        mshr.data_received = True
        mshr.acks_expected = msg.acks_expected
        self._maybe_complete(mshr)

    def _on_inv_ack(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None:
            raise ProtocolError(f"core {self.core_id}: INV_ACK without MSHR: {msg!r}")
        mshr.acks_received += 1
        self._maybe_complete(mshr)

    def _maybe_complete(self, mshr: Mshr) -> None:
        if mshr.acks_expected is None or not mshr.data_received:
            return
        if mshr.acks_received < mshr.acks_expected:
            return
        line = mshr.line
        del self.mshrs[line]
        new_state = (
            CacheLineState.MODIFIED
            if mshr.requested_write
            else CacheLineState.SHARED
        )
        victim = self.l1.insert(line, new_state)
        if victim is not None:
            self._evict(*victim)
        self.system.send_protocol(
            MessageKind.UNBLOCK,
            src=self.core_id,
            dst=self.system.address_map.home_tile(line),
            line=line,
            requester=self.core_id,
        )
        self.system.record_fill(self.core_id, mshr)
        if mshr.wants_write and not mshr.requested_write:
            # A store coalesced into this read miss: the Shared fill is not
            # enough, so upgrade through the directory.
            self.upgrades += 1
            self._issue_miss(line, True, self.system.now)
        if self.stalled and len(self.mshrs) < self.system.config.mlp:
            self.stalled = False
            if not self.at_barrier and not self.finished:
                self.system.events.schedule(self.system.now, self._segment)

    def _evict(self, line: int, state: str) -> None:
        """Handle an L1 victim: Shared lines drop silently, Modified lines
        run the PutM transaction with a shadow copy kept until PutAck."""
        if state != CacheLineState.MODIFIED:
            return
        if line in self.evicting:
            # Unreachable by construction: re-acquiring the line (and hence
            # evicting it again) requires a request, which _issue_miss
            # defers until the previous PutM is acknowledged.
            raise ProtocolError(
                f"core {self.core_id}: double eviction of line {line}"
            )
        self.evicting[line] = False
        self.system.send_protocol(
            MessageKind.PUTM,
            src=self.core_id,
            dst=self.system.address_map.home_tile(line),
            line=line,
            requester=self.core_id,
        )

    def _on_inv(self, msg: Message) -> None:
        # Invalidation for a Shared copy; ack the *requester* directly.
        # The copy may have been silently evicted — ack regardless, since
        # the directory's sharer list is allowed to be stale.
        self.l1.invalidate(msg.line)
        self.system.send_protocol(
            MessageKind.INV_ACK,
            src=self.core_id,
            dst=msg.requester,
            line=msg.line,
            requester=msg.requester,
        )

    def _on_recall(self, msg: Message) -> None:
        """Home recalls our Modified copy (RecallS downgrades, RecallX kills)."""
        line = msg.line
        state = self.l1.peek(line)
        if state == CacheLineState.MODIFIED:
            if msg.kind == MessageKind.RECALL_S:
                self.l1.set_state(line, CacheLineState.SHARED)
            else:
                self.l1.invalidate(line)
        elif line in self.evicting:
            # Our PutM crossed the recall on the wire: answer from the
            # shadow copy and remember we did, so PutAck just cleans up.
            self.evicting[line] = True
        else:
            raise ProtocolError(
                f"core {self.core_id}: recall for line {line} we do not own"
            )
        self.system.send_protocol(
            MessageKind.RECALL_DATA,
            src=self.core_id,
            dst=msg.src,
            line=line,
            requester=msg.requester,
        )

    def _on_put_ack(self, msg: Message) -> None:
        if msg.line not in self.evicting:
            raise ProtocolError(
                f"core {self.core_id}: PutAck for line {msg.line} not evicting"
            )
        del self.evicting[msg.line]
        mshr = self.mshrs.get(msg.line)
        if mshr is not None and mshr.deferred:
            mshr.deferred = False
            self._send_miss(mshr)

    # ------------------------------------------------------------------
    @property
    def outstanding_misses(self) -> int:
        return len(self.mshrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Core({self.core_id}, phase={self.phase_idx}, "
            f"retired={self.instructions_retired}, mshrs={len(self.mshrs)})"
        )
