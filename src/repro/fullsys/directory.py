"""Home-side protocol engine: one directory + L2 bank controller per tile.

Implements the blocking home of the MSI protocol described in
:mod:`repro.fullsys.coherence`: one transaction per line at a time, ordered
by arrival, completed by the requester's Unblock.  The controller also owns
the tile's L2 bank (a non-inclusive tag cache deciding hit-vs-memory) and
talks to the tile's assigned memory controller.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ProtocolError
from .cache import Cache, CacheLineState
from .coherence import (
    BUSY_MEM,
    BUSY_RECALL,
    BUSY_UNBLOCK,
    IDLE,
    DirectoryEntry,
    Message,
    MessageKind,
)

__all__ = ["HomeController"]


class HomeController:
    """Directory and L2 bank for the lines homed at one tile."""

    def __init__(self, tile: int, system) -> None:
        self.tile = tile
        self.system = system
        cfg = system.config
        self.l2 = Cache.from_geometry(cfg.l2_lines, cfg.l2_ways)
        #: sharing/transaction state per line; entries are created on first
        #: touch and dropped once empty, so the dict stays proportional to
        #: the active footprint rather than the address space.
        self.entries: Dict[int, DirectoryEntry] = {}
        # Statistics
        self.transactions = 0
        self.recalls = 0
        self.invalidations = 0
        self.l2_fills = 0
        self.queued_peak = 0

    # ------------------------------------------------------------------
    def entry(self, line: int) -> DirectoryEntry:
        ent = self.entries.get(line)
        if ent is None:
            ent = self.entries[line] = DirectoryEntry()
        return ent

    def _gc(self, line: int, ent: DirectoryEntry) -> None:
        if ent.is_clean_and_quiet:
            del self.entries[line]

    # ------------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        """Dispatch a home-bound protocol message."""
        handler = {
            MessageKind.GETS: self._on_request,
            MessageKind.GETX: self._on_request,
            MessageKind.PUTM: self._on_request,
            MessageKind.RECALL_DATA: self._on_recall_data,
            MessageKind.MEM_DATA: self._on_mem_data,
            MessageKind.UNBLOCK: self._on_unblock,
        }.get(msg.kind)
        if handler is None:
            raise ProtocolError(f"home {self.tile}: unexpected {msg!r}")
        handler(msg)

    # ------------------------------------------------------------------
    # Request admission and serialization
    # ------------------------------------------------------------------
    def _on_request(self, msg: Message) -> None:
        ent = self.entry(msg.line)
        if not ent.is_idle:
            ent.pending.append(msg)
            self.queued_peak = max(self.queued_peak, len(ent.pending))
            return
        self._start(msg, ent)

    def _start(self, msg: Message, ent: DirectoryEntry) -> None:
        self.transactions += 1
        ent.active = msg
        if msg.kind == MessageKind.PUTM:
            self._do_putm(msg, ent)
        elif msg.kind in (MessageKind.GETS, MessageKind.GETX):
            self._do_get(msg, ent)
        else:
            raise ProtocolError(f"home {self.tile}: cannot start on {msg!r}")

    def _next_transaction(self, line: int) -> None:
        ent = self.entry(line)
        ent.state = IDLE
        ent.active = None
        if ent.pending:
            nxt = ent.pending.popleft()
            self._start(nxt, ent)
        else:
            self._gc(line, ent)

    # ------------------------------------------------------------------
    # Transaction bodies
    # ------------------------------------------------------------------
    def _do_putm(self, msg: Message, ent: DirectoryEntry) -> None:
        if ent.owner == msg.src:
            ent.owner = None
            self._l2_fill(msg.line, CacheLineState.DIRTY)
        # else: a recall beat the PutM; the data already came home.  Ack
        # either way so the evicting L1 can drop its shadow copy.
        self._reply(msg, MessageKind.PUT_ACK, dst=msg.src)
        self._next_transaction(msg.line)

    def _do_get(self, msg: Message, ent: DirectoryEntry) -> None:
        if ent.owner is not None:
            # Note ent.owner may equal msg.requester: the requester's GetS
            # raced ahead of its own PutM (short request packets overtake
            # long writebacks).  The recall still works — the L1 answers
            # from its evicting shadow copy.
            ent.state = BUSY_RECALL
            self.recalls += 1
            recall = (
                MessageKind.RECALL_S
                if msg.kind == MessageKind.GETS
                else MessageKind.RECALL_X
            )
            self._reply(msg, recall, dst=ent.owner)
            return
        if self.l2.lookup(msg.line) is None:
            ent.state = BUSY_MEM
            self._reply(msg, MessageKind.MEM_READ, dst=self.system.memory_node(self.tile))
            return
        self._complete_get(msg, ent)

    def _complete_get(self, msg: Message, ent: DirectoryEntry) -> None:
        """Data is available at the home; finish the transaction."""
        acks = 0
        if msg.kind == MessageKind.GETS:
            ent.sharers.add(msg.requester)
        else:  # GETX
            targets = ent.sharers - {msg.requester}
            self.invalidations += len(targets)
            # Sorted so invalidations are sent in node order: sharer sets
            # iterate by hash, which is not a reproducible message order.
            for sharer in sorted(targets):
                self._reply(msg, MessageKind.INV, dst=sharer)
            acks = len(targets)
            ent.sharers.clear()
            ent.owner = msg.requester
            # The line leaves the L2's clean image; mark dirty so a later
            # L2 victim writes back.  (The owner's copy is authoritative.)
            if self.l2.peek(msg.line) is not None:
                self.l2.set_state(msg.line, CacheLineState.DIRTY)
        ent.state = BUSY_UNBLOCK
        self._reply(
            msg,
            MessageKind.DATA,
            dst=msg.requester,
            extra_latency=self.system.config.l2_latency,
            acks_expected=acks,
        )

    # ------------------------------------------------------------------
    # Asynchronous completions
    # ------------------------------------------------------------------
    def _on_recall_data(self, msg: Message) -> None:
        ent = self.entry(msg.line)
        if ent.state != BUSY_RECALL or ent.active is None:
            raise ProtocolError(f"home {self.tile}: stray {msg!r}")
        prev_owner = ent.owner
        if prev_owner is None:
            raise ProtocolError(
                f"home {self.tile}: recall data for {msg.line:#x} arrived "
                "with no recorded owner"
            )
        ent.owner = None
        if ent.active.kind == MessageKind.GETS:
            ent.sharers.add(prev_owner)  # RecallS leaves the owner Shared
        self._l2_fill(msg.line, CacheLineState.DIRTY)
        self._complete_get(ent.active, ent)

    def _on_mem_data(self, msg: Message) -> None:
        ent = self.entry(msg.line)
        if ent.state != BUSY_MEM or ent.active is None:
            raise ProtocolError(f"home {self.tile}: stray {msg!r}")
        self._l2_fill(msg.line, CacheLineState.VALID)
        self._complete_get(ent.active, ent)

    def _on_unblock(self, msg: Message) -> None:
        ent = self.entry(msg.line)
        if ent.state != BUSY_UNBLOCK:
            raise ProtocolError(f"home {self.tile}: stray {msg!r}")
        self._next_transaction(msg.line)

    # ------------------------------------------------------------------
    def _l2_fill(self, line: int, state: str) -> None:
        self.l2_fills += 1
        victim = self.l2.insert(line, state)
        if victim is not None and victim[1] == CacheLineState.DIRTY:
            self.system.send_protocol(
                MessageKind.MEM_WB,
                src=self.tile,
                dst=self.system.memory_node(self.tile),
                line=victim[0],
                requester=self.tile,
            )

    def _reply(
        self,
        msg: Message,
        kind: str,
        dst: int,
        extra_latency: int = 0,
        acks_expected: int = 0,
    ) -> None:
        self.system.send_protocol(
            kind,
            src=self.tile,
            dst=dst,
            line=msg.line,
            requester=msg.requester,
            delay=self.system.config.dir_latency + extra_latency,
            acks_expected=acks_expected,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HomeController(tile={self.tile}, tx={self.transactions})"
