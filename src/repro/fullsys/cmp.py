"""The coarse-grain full-system CMP simulator.

:class:`CmpSystem` assembles one tile per topology node — core + private L1
(:class:`~repro.fullsys.core_model.Core`), directory + L2 bank
(:class:`~repro.fullsys.directory.HomeController`) — plus memory controllers
at designated tiles, a phase-barrier, and a discrete-event kernel.

The system is network-agnostic: every inter-tile message goes through a
pluggable *transport* (``transport(msg)``) which must eventually call
:meth:`CmpSystem.deliver`.  The reciprocal-abstraction co-simulator installs
itself as the transport; :class:`FixedTransport` provides a standalone mode
for unit tests and zero-load studies.
"""

from __future__ import annotations

import functools
from collections import defaultdict
from typing import Callable, Dict, List, Optional

from ..errors import ConfigError, ProtocolError, SimulationError
from ..noc.topology import Topology
from .address import AddressMap
from .config import CmpConfig
from .coherence import (
    Message,
    MessageKind,
    cache_bound_kinds,
    home_bound_kinds,
    memory_bound_kinds,
    message_profile,
)
from .core_model import Core, CoreProgram, Mshr
from .directory import HomeController
from .events import EventQueue
from .memory import MemoryController, assign_controllers

__all__ = ["CmpSystem", "FixedTransport"]

# Delivery routing is derived from the protocol tables so the dispatch
# below can never drift from the specification the verifier checks.
_HOME_KINDS = home_bound_kinds()
_CORE_KINDS = cache_bound_kinds()
_MEM_KINDS = memory_bound_kinds()


class FixedTransport:
    """Standalone transport: delivers every message after a fixed latency."""

    def __init__(self, system: "CmpSystem", latency: int = 12) -> None:
        if latency < 1:
            raise ConfigError(f"transport latency must be >= 1, got {latency}")
        self.system = system
        self.latency = latency

    def __call__(self, msg: Message) -> None:
        # Scheduled callbacks are partials of bound methods (never lambdas)
        # so the pending event heap stays picklable for checkpoint/restore.
        self.system.events.schedule(
            self.system.now + self.latency,
            functools.partial(self.system.deliver, msg),
        )


class CmpSystem:
    """A many-core target machine.

    Args:
        topo: tile topology (one node per tile).
        config: target parameters.
        programs: one :class:`CoreProgram` per tile.
        transport: message transport; defaults to :class:`FixedTransport`.
            The co-simulation layer replaces it via :attr:`transport`.
    """

    def __init__(
        self,
        topo: Topology,
        config: Optional[CmpConfig] = None,
        programs: Optional[List[CoreProgram]] = None,
        transport: Optional[Callable[[Message], None]] = None,
    ) -> None:
        self.topo = topo
        self.config = config or CmpConfig()
        if programs is None:
            raise ConfigError("CmpSystem needs one program per tile")
        if len(programs) != topo.num_nodes:
            raise ConfigError(
                f"{len(programs)} programs for {topo.num_nodes} tiles"
            )
        self.events = EventQueue()
        self.address_map = AddressMap(topo.num_nodes)
        self.transport: Callable[[Message], None] = transport or FixedTransport(self)

        mc_nodes = self.config.mem_controllers
        if mc_nodes is None:
            mc_nodes = self.config.default_mem_controllers(topo.width, topo.height)
            # Node ids == router ids only at concentration 1; pick the first
            # node of each corner router otherwise.
            mc_nodes = [r * topo.concentration for r in mc_nodes]
        if self.config.memory_model == "dram":
            from ..dram import DramController

            self.memctrls: Dict[int, object] = {
                node: DramController(node, schedule=self.events.schedule_in)
                for node in mc_nodes
            }
        else:
            self.memctrls = {
                node: MemoryController(
                    node, self.config.mem_latency, self.config.mem_service
                )
                for node in mc_nodes
            }
        self._mem_assignment = assign_controllers(topo, mc_nodes)

        self.cores = [Core(i, self, programs[i]) for i in range(topo.num_nodes)]
        self.homes = [HomeController(i, self) for i in range(topo.num_nodes)]

        # Barrier bookkeeping: arrivals per phase index.
        self._barrier_counts: Dict[int, int] = defaultdict(int)
        self._barrier_waiting: Dict[int, List[int]] = defaultdict(list)
        self._finished_cores = 0
        self.finish_cycle: Optional[int] = None

        # Statistics
        self.messages_by_kind: Dict[str, int] = defaultdict(int)
        self.network_messages = 0
        self.local_messages = 0
        self.flits_sent = 0
        self.miss_latencies: List[int] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.events.now

    def memory_node(self, tile: int) -> int:
        """The memory controller serving ``tile``'s home bank."""
        return self._mem_assignment[tile]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every core's first segment (call once)."""
        for core in self.cores:
            core.start()

    def run_until(self, time: int) -> None:
        """Advance the whole system to ``time`` (co-simulation slice)."""
        self.events.run_until(time)

    def run_to_completion(self, max_cycles: int = 10_000_000) -> int:
        """Standalone run: start, then process events until all cores finish.

        Returns the target execution time (cycle the last core finished).
        """
        self.start()
        while self.finish_cycle is None:
            if self.events.pending == 0:
                raise SimulationError(
                    "event queue drained before all cores finished "
                    f"({self._finished_cores}/{len(self.cores)} done)"
                )
            if self.now > max_cycles:
                raise SimulationError(f"exceeded {max_cycles} cycles")
            nxt = self.events.next_event_time()
            if nxt is None:
                raise SimulationError(
                    "event queue emptied between pending check and pop"
                )
            self.events.run_until(nxt)
        return self.finish_cycle

    @property
    def all_finished(self) -> bool:
        return self.finish_cycle is not None

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def send_protocol(
        self,
        kind: str,
        src: int,
        dst: int,
        line: int,
        requester: int,
        at: Optional[int] = None,
        delay: int = 0,
        acks_expected: int = 0,
    ) -> None:
        """Create and route one protocol message.

        ``at`` lets a core segment date a message at its local time (which
        can be ahead of the event clock); ``delay`` models controller
        occupancy.  Messages dated in the future are held and dispatched by
        an event at their creation time, so the transport always sees
        messages at ``now == created_cycle``.
        """
        created = (self.now if at is None else at) + delay
        msg_class, carries_data = message_profile(kind)
        size = self.config.data_flits if carries_data else self.config.ctrl_flits
        msg = Message(
            kind=kind,
            src=src,
            dst=dst,
            line=line,
            requester=requester,
            size_flits=size,
            msg_class=msg_class,
            created_cycle=created,
            acks_expected=acks_expected,
        )
        self.messages_by_kind[kind] += 1
        if created > self.now:
            self.events.schedule(created, functools.partial(self._dispatch, msg))
        else:
            self._dispatch(msg)

    def _dispatch(self, msg: Message) -> None:
        if msg.src == msg.dst:
            self.local_messages += 1
            self.events.schedule(
                self.now + self.config.local_latency,
                functools.partial(self.deliver, msg),
            )
        else:
            self.network_messages += 1
            self.flits_sent += msg.size_flits
            self.transport(msg)

    def deliver(self, msg: Message) -> None:
        """Hand a message to its destination tile (called by the transport
        at delivery time)."""
        if msg.kind in _MEM_KINDS:
            self._deliver_memory(msg)
        elif msg.kind in _HOME_KINDS:
            self.homes[msg.dst].handle_message(msg)
        elif msg.kind in _CORE_KINDS:
            self.cores[msg.dst].handle_message(msg)
        else:
            raise ProtocolError(f"undeliverable message {msg!r}")

    def _deliver_memory(self, msg: Message) -> None:
        mc = self.memctrls.get(msg.dst)
        if mc is None:
            raise ProtocolError(f"no memory controller at node {msg.dst}: {msg!r}")
        if msg.kind == MessageKind.MEM_WB:
            mc.writeback(msg.line, self.now)
            return
        # The completion callback is a partial of a bound method, not a
        # closure: the DRAM controller stores it in its request queue, which
        # must pickle for checkpoint/restore.
        mc.read(msg.line, self.now, functools.partial(self._memory_ready, msg))

    def _memory_ready(self, msg: Message, ready: int) -> None:
        """A memory read issued for ``msg`` completes at cycle ``ready``."""
        self.events.schedule(ready, functools.partial(self._send_mem_data, msg))

    def _send_mem_data(self, msg: Message) -> None:
        self.send_protocol(
            MessageKind.MEM_DATA,
            src=msg.dst,
            dst=msg.src,
            line=msg.line,
            requester=msg.requester,
        )

    # ------------------------------------------------------------------
    # Barrier and completion
    # ------------------------------------------------------------------
    def barrier_arrive(self, core_id: int, phase: int, t: int) -> None:
        """A core's segment reached the end of ``phase`` at local time ``t``."""
        self.events.schedule(
            t, functools.partial(self._barrier_register, core_id, phase)
        )

    def _barrier_register(self, core_id: int, phase: int) -> None:
        core = self.cores[core_id]
        if not getattr(core.program, "barriers", True):
            self.events.schedule_in(1, core.resume_from_barrier)
            return
        self._barrier_counts[phase] += 1
        self._barrier_waiting[phase].append(core_id)
        participants = sum(
            1 for c in self.cores if getattr(c.program, "barriers", True)
        )
        if self._barrier_counts[phase] == participants:
            release = self.now + self.config.barrier_latency
            for cid in self._barrier_waiting.pop(phase):
                self.events.schedule(release, self.cores[cid].resume_from_barrier)

    def core_finished(self, core_id: int) -> None:
        self._finished_cores += 1
        if self._finished_cores == len(self.cores):
            self.finish_cycle = self.now

    def record_fill(self, core_id: int, mshr: Mshr) -> None:
        self.miss_latencies.append(self.now - mshr.issued_at)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_instructions(self) -> int:
        return sum(core.instructions_retired for core in self.cores)

    def mean_miss_latency(self) -> float:
        if not self.miss_latencies:
            return 0.0
        return sum(self.miss_latencies) / len(self.miss_latencies)

    def summary(self) -> Dict[str, float]:
        l1_hits = sum(c.l1.hits for c in self.cores)
        l1_misses = sum(c.l1.misses for c in self.cores)
        return {
            "cycles": float(self.now),
            "instructions": float(self.total_instructions()),
            "system_ipc": self.total_instructions() / self.now if self.now else 0.0,
            "network_messages": float(self.network_messages),
            "local_messages": float(self.local_messages),
            "flits_sent": float(self.flits_sent),
            "l1_miss_rate": l1_misses / (l1_hits + l1_misses)
            if (l1_hits + l1_misses)
            else 0.0,
            "mean_miss_latency": self.mean_miss_latency(),
            "finish_cycle": float(self.finish_cycle or 0),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CmpSystem({self.topo!r}, now={self.now}, "
            f"finished={self._finished_cores}/{len(self.cores)})"
        )
