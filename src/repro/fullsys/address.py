"""Address layout of the target CMP.

The unit of coherence is a cache line; everywhere in the full-system
simulator an "address" is a *line address* (byte address >> log2(line)).
The shared L2 is statically distributed (S-NUCA): each line has a home tile
chosen by low-order line-address interleaving, which spreads request traffic
across the die and is what gives coherence traffic its spatial structure.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["AddressMap"]


class AddressMap:
    """Line-address partitioning: homes, private heaps, and the shared heap.

    The synthetic workloads draw from two regions:

    * a *private* region per core (stack/heap accesses that miss to memory
      but never generate coherence), and
    * a *shared* region (data structures touched by many cores, the source
      of invalidations and 3-hop forwards).

    Region sizes are in lines and chosen by the workload; the map only fixes
    the base offsets so regions never collide.
    """

    #: lines reserved per private region (2**20 lines = 64 MiB of 64 B lines)
    PRIVATE_REGION_LINES = 1 << 20

    def __init__(self, num_tiles: int, interleave_shift: int = 0) -> None:
        if num_tiles < 1:
            raise ConfigError(f"need >= 1 tile, got {num_tiles}")
        if interleave_shift < 0:
            raise ConfigError(f"interleave_shift must be >= 0, got {interleave_shift}")
        self.num_tiles = num_tiles
        self.interleave_shift = interleave_shift
        #: shared region starts above every private region
        self.shared_base = (num_tiles + 1) * self.PRIVATE_REGION_LINES

    # ------------------------------------------------------------------
    def home_tile(self, line: int) -> int:
        """Tile whose L2 bank and directory own ``line``."""
        return (line >> self.interleave_shift) % self.num_tiles

    def private_line(self, core: int, offset: int) -> int:
        """The ``offset``-th line of ``core``'s private region."""
        if not 0 <= core < self.num_tiles:
            raise ConfigError(f"core {core} outside [0, {self.num_tiles})")
        if offset < 0 or offset >= self.PRIVATE_REGION_LINES:
            raise ConfigError(f"private offset {offset} out of range")
        return core * self.PRIVATE_REGION_LINES + offset

    def shared_line(self, offset: int) -> int:
        """The ``offset``-th line of the global shared region."""
        if offset < 0:
            raise ConfigError(f"shared offset {offset} must be >= 0")
        return self.shared_base + offset

    def is_shared(self, line: int) -> bool:
        return line >= self.shared_base

    def owner_core(self, line: int) -> int:
        """For private lines: which core's region the line belongs to."""
        if self.is_shared(line):
            raise ConfigError(f"line {line} is shared; it has no owner core")
        return line // self.PRIVATE_REGION_LINES
