"""Detailed DRAM controller: banks, row buffers, FR-FCFS scheduling.

This is the second *detailed component* of the reproduction (beyond the
NoC): it replaces the simple bandwidth-interval memory model with open-page
row-buffer state per bank, bank-level parallelism, a shared data bus, and
first-ready-first-come-first-served scheduling (row hits jump the queue).

Integration is event-driven through an injected ``schedule(delay, fn)``
callable — the same discrete-event kernel the CMP uses — so the controller
composes with the co-simulation without any new coupling machinery: memory
is an *inline* detailed component, exactly the fidelity-mixing flexibility
reciprocal abstraction argues for (experiment E10 quantifies the impact).
"""

from __future__ import annotations

import functools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from ..errors import ConfigError
from .config import DramConfig

__all__ = ["DramController", "DramRequest"]


@dataclass
class DramRequest:
    """One pending memory request."""

    line: int
    is_write: bool
    arrived: int
    on_ready: Optional[Callable[[int], None]]
    bank: int = 0
    row: int = 0
    seq: int = 0


@dataclass
class _Bank:
    open_row: Optional[int] = None
    busy_until: int = 0
    activations: int = 0


class DramController:
    """One memory channel with FR-FCFS scheduling over banked DRAM.

    Args:
        node: tile the controller lives at (for reports).
        config: DRAM timing parameters.
        schedule: ``schedule(delay_cycles, callback)`` into the system's
            event kernel; used to wake the scheduler when the channel frees.

    Reads call ``on_ready(completion_cycle)`` once scheduled; writebacks
    consume bank/bus time but need no response.
    """

    def __init__(
        self,
        node: int,
        config: Optional[DramConfig] = None,
        schedule: Optional[Callable[[int, Callable[[], None]], None]] = None,
    ) -> None:
        if schedule is None:
            raise ConfigError("DramController needs an event scheduler")
        self.node = node
        self.config = config or DramConfig()
        self._schedule = schedule
        self._banks = [_Bank() for _ in range(self.config.banks)]
        self._queue: Deque[DramRequest] = deque()
        self._bus_free_at = 0
        self._now = 0
        self._seq = 0
        self._wakeup_pending = False
        # Statistics
        self.reads = 0
        self.writebacks = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.row_cold = 0
        self.total_queue_delay = 0
        self.peak_queue = 0

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def map_address(self, line: int) -> tuple:
        """(bank, row) for a line: banks interleave below the row bits."""
        bank = line % self.config.banks
        row = line // (self.config.banks * self.config.row_lines)
        return bank, row

    # ------------------------------------------------------------------
    # Request entry points (CmpSystem-facing)
    # ------------------------------------------------------------------
    def read(self, line: int, now: int, on_ready: Callable[[int], None]) -> None:
        self.reads += 1
        self._enqueue(line, False, now, on_ready)

    def writeback(self, line: int, now: int) -> None:
        self.writebacks += 1
        self._enqueue(line, True, now, None)

    def _enqueue(
        self, line: int, is_write: bool, now: int, on_ready
    ) -> None:
        self._now = max(self._now, now)
        bank, row = self.map_address(line)
        request = DramRequest(
            line=line,
            is_write=is_write,
            arrived=now,
            on_ready=on_ready,
            bank=bank,
            row=row,
            seq=self._seq,
        )
        self._seq += 1
        self._queue.append(request)
        self.peak_queue = max(self.peak_queue, len(self._queue))
        self._pump(now)

    # ------------------------------------------------------------------
    # FR-FCFS scheduler
    # ------------------------------------------------------------------
    def _pump(self, now: int) -> None:
        """Issue as many requests as the channel allows right now; arrange
        a wakeup at the next time anything could become issueable."""
        self._now = max(self._now, now)
        while self._queue:
            issued = self._try_issue(self._now)
            if not issued:
                break
        if self._queue and not self._wakeup_pending:
            target = self._next_ready_time()
            delay = max(1, target - self._now)
            self._wakeup_pending = True
            # A partial of a bound method (not a closure) so pending wakeups
            # sitting in the event heap pickle for checkpoint/restore.
            self._schedule(delay, functools.partial(self._wake, target))

    def _wake(self, target: int) -> None:
        self._wakeup_pending = False
        self._pump(target)

    def _try_issue(self, now: int) -> bool:
        """Pick and issue one request if the channel and a bank are free.

        Channel bandwidth is modelled as an issue gate of one request per
        ``t_burst`` cycles (one data burst per burst window); bank timing
        overlaps freely across banks — the standard bank-level-parallelism
        approximation.
        """
        if self._bus_free_at > now:
            return False
        candidates = [
            r for r in self._queue if self._banks[r.bank].busy_until <= now
        ]
        if not candidates:
            return False
        # FR-FCFS: among issueable requests, row hits first; FCFS within
        # each class (seq is the arrival order).
        hits = [r for r in candidates if self._banks[r.bank].open_row == r.row]
        chosen = min(hits or candidates, key=lambda r: r.seq)
        self._queue.remove(chosen)
        self._issue(chosen, now)
        return True

    def _issue(self, request: DramRequest, now: int) -> None:
        bank = self._banks[request.bank]
        cfg = self.config
        if bank.open_row == request.row:
            latency = cfg.row_hit_latency
            self.row_hits += 1
        elif bank.open_row is None:
            latency = cfg.row_closed_latency
            self.row_cold += 1
            bank.activations += 1
        else:
            latency = cfg.row_conflict_latency
            self.row_conflicts += 1
            bank.activations += 1
        bank.open_row = request.row
        completion = now + latency
        bank.busy_until = completion
        self._bus_free_at = now + cfg.t_burst  # issue gate (see _try_issue)
        self.total_queue_delay += now - request.arrived
        if request.on_ready is not None:
            request.on_ready(completion)

    def _next_ready_time(self) -> int:
        """Earliest future cycle at which some queued request could issue."""
        earliest = min(
            max(self._bus_free_at, self._banks[r.bank].busy_until)
            for r in self._queue
        )
        return max(self._now + 1, earliest)

    # ------------------------------------------------------------------
    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_conflicts + self.row_cold
        return self.row_hits / total if total else 0.0

    @property
    def mean_queue_delay(self) -> float:
        total = self.reads + self.writebacks
        return self.total_queue_delay / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "reads": float(self.reads),
            "writebacks": float(self.writebacks),
            "row_hit_rate": self.row_hit_rate,
            "row_conflicts": float(self.row_conflicts),
            "mean_queue_delay": self.mean_queue_delay,
            "peak_queue": float(self.peak_queue),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DramController(node={self.node}, reads={self.reads}, "
            f"hit_rate={self.row_hit_rate:.2f})"
        )
