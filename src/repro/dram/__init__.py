"""Detailed DRAM controller — the reproduction's second detailed component.

Banked open-page DRAM with FR-FCFS scheduling, replacing the simple
service-interval memory model to demonstrate that reciprocal abstraction's
fidelity mixing is not NoC-specific (experiment E10).
"""

from .config import DramConfig
from .controller import DramController, DramRequest

__all__ = ["DramConfig", "DramController", "DramRequest"]
