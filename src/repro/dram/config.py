"""Configuration of the detailed DRAM controller model."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..util import check_positive

__all__ = ["DramConfig"]


@dataclass
class DramConfig:
    """Open-page DDR-style timing, in target core cycles.

    The defaults approximate a DDR3-1600 part behind a 2 GHz core clock:
    ~15 ns for each of tRP/tRCD/tCAS → 30 cycles, 4-cycle data burst.

    Attributes:
        banks: banks per rank (requests to different banks overlap).
        row_lines: cache lines per DRAM row (8 KiB row / 64 B line = 128).
        t_rp: precharge (close an open row).
        t_rcd: activate (open a row).
        t_cas: column access (read from an open row).
        t_burst: data transfer on the shared channel bus.
        queue_depth: pending requests the controller accepts before
            back-pressuring (modelled as serialization at the front end).
    """

    banks: int = 8
    row_lines: int = 128
    t_rp: int = 30
    t_rcd: int = 30
    t_cas: int = 30
    t_burst: int = 4
    queue_depth: int = 16

    def __post_init__(self) -> None:
        for name in ("banks", "row_lines", "t_rp", "t_rcd", "t_cas", "t_burst",
                     "queue_depth"):
            check_positive(getattr(self, name), name)
        if self.banks & (self.banks - 1):
            raise ConfigError(f"banks must be a power of two, got {self.banks}")

    @property
    def row_hit_latency(self) -> int:
        return self.t_cas + self.t_burst

    @property
    def row_closed_latency(self) -> int:
        return self.t_rcd + self.t_cas + self.t_burst

    @property
    def row_conflict_latency(self) -> int:
        return self.t_rp + self.t_rcd + self.t_cas + self.t_burst
