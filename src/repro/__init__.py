"""repro — reciprocal abstraction for computer architecture co-simulation.

A from-scratch reproduction of Moeng, Jones & Melhem, *"Reciprocal
abstraction for computer architecture co-simulation"*, ISPASS 2015.

The package couples a coarse-grain full-system CMP simulator with network
models of different fidelities:

>>> from repro import TargetConfig, build_cosim
>>> cfg = TargetConfig(width=4, height=4, app="fft", network_model="cycle")
>>> result = build_cosim(cfg).run()
>>> result.mean_latency()  # doctest: +SKIP

Subpackages:

* :mod:`repro.core` — the reciprocal-abstraction co-simulation framework
* :mod:`repro.noc` — cycle-level VC-wormhole NoC simulator
* :mod:`repro.noc_gpu` — GPU-style data-parallel NoC simulator + cost model
* :mod:`repro.abstractnet` — message-level latency models
* :mod:`repro.fullsys` — full-system CMP simulator (cores, caches, MSI
  directory coherence, memory controllers)
* :mod:`repro.workloads` — synthetic traffic, statistical app models, traces
* :mod:`repro.harness` — experiment runners for every table/figure
"""

from .abstractnet import (
    AbstractNetworkModel,
    FixedLatencyModel,
    QueueingLatencyModel,
    TableLatencyModel,
)
from .core import (
    AbstractModelAdapter,
    AdaptiveQuantum,
    CoSimResult,
    CoSimulator,
    DetailedNetworkAdapter,
    FixedQuantum,
    LatencyFeedback,
    MessageBridge,
    NetworkModel,
    TargetConfig,
    build_cosim,
    default_target_table,
)
from .dram import DramConfig, DramController
from .errors import (
    ConfigError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from .fullsys import CmpConfig, CmpSystem, Message, MessageKind
from .noc import (
    ConcentratedMesh,
    CycleNetwork,
    Mesh,
    MessageClass,
    NetworkStats,
    NocConfig,
    Packet,
    Torus,
    make_routing,
)
from .noc_gpu import GpuCostParams, GpuExecutionModel, SimdNetwork
from .workloads import APPS, SyntheticTraffic, app_names, make_programs

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CoSimulator",
    "CoSimResult",
    "NetworkModel",
    "MessageBridge",
    "LatencyFeedback",
    "FixedQuantum",
    "AdaptiveQuantum",
    "DetailedNetworkAdapter",
    "AbstractModelAdapter",
    "TargetConfig",
    "build_cosim",
    "default_target_table",
    # noc
    "Mesh",
    "Torus",
    "ConcentratedMesh",
    "CycleNetwork",
    "NocConfig",
    "Packet",
    "MessageClass",
    "NetworkStats",
    "make_routing",
    # noc_gpu
    "SimdNetwork",
    "GpuExecutionModel",
    "GpuCostParams",
    # dram
    "DramConfig",
    "DramController",
    # abstractnet
    "AbstractNetworkModel",
    "FixedLatencyModel",
    "QueueingLatencyModel",
    "TableLatencyModel",
    # fullsys
    "CmpSystem",
    "CmpConfig",
    "Message",
    "MessageKind",
    # workloads
    "APPS",
    "app_names",
    "make_programs",
    "SyntheticTraffic",
    # errors
    "ReproError",
    "ConfigError",
    "TopologyError",
    "RoutingError",
    "ProtocolError",
    "SimulationError",
    "WorkloadError",
]
