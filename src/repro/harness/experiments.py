"""One entry point per reproduced experiment (E1..E9 in DESIGN.md).

Each ``run_eN`` returns an :class:`ExperimentResult` whose rows are the
table/figure series the paper's evaluation would carry; ``render()`` prints
them.  ``quick=True`` shrinks workloads/target sizes for test suites; the
benchmark harness runs the full versions.

The detailed network in accuracy experiments is the SIMD simulator (it is
statistically interchangeable with the OO simulator — validated by E1 and
``tests/test_simd_vs_oo.py`` — and several times faster, which keeps full
sweeps tractable in pure Python).  Ground truth is always the detailed
network at quantum 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.config import TargetConfig, default_target_table
from ..errors import ConfigError
from ..noc.config import NocConfig
from ..noc.topology import Mesh
from ..workloads.apps import splash_apps
from ..workloads.synthetic import SyntheticTraffic
from ..workloads.traces import TraceInjector, matched_load_synthetic
from . import metrics
from .figures import AsciiChart
from .report import format_kv, format_percent, format_table
from .runner import make_network, run_cosim, run_cosim_traced, sweep_injection
from .timing import HostTimingModel, measured_reduction

__all__ = [
    "ExperimentResult",
    "run_table1",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9",
    "run_e10",
    "run_e11",
    "e5_points",
    "run_e5_point",
    "assemble_e5",
    "e6_points",
    "run_e6_point",
    "assemble_e6",
    "e7_points",
    "run_e7_point",
    "assemble_e7",
    "e11_points",
    "run_e11_point",
    "assemble_e11",
    "shipped_target_configs",
    "ALL_EXPERIMENTS",
]


def shipped_target_configs() -> List[tuple]:
    """Every distinctive ``(label, TargetConfig)`` the experiments build.

    This is the enumeration ``python -m repro verify`` (and the CI verify
    job) walks: one entry per configuration shape that differs in anything
    the verifier looks at — topology, routing, VC count, VC-selection
    policy, or network model.  Sweep dimensions the verifier is blind to
    (apps, seeds, scales, quanta) are collapsed to one representative.
    """
    configs: List[tuple] = [
        ("E1/E2 4x4 mesh, cycle network", TargetConfig(width=4, height=4)),
        (
            "E3/E4/E7-E10 4x4 mesh, SIMD network",
            TargetConfig(width=4, height=4, network_model="simd"),
        ),
        (
            "E3 abstract baselines (fixed latency)",
            TargetConfig(width=4, height=4, network_model="fixed"),
        ),
        (
            "table-shadow calibration",
            TargetConfig(width=4, height=4, network_model="table-shadow"),
        ),
    ]
    for num_vcs, depth in e5_points(quick=False):
        configs.append(
            (
                f"E5 router design point {num_vcs}vc x {depth}f",
                TargetConfig(
                    width=4,
                    height=4,
                    network_model="simd",
                    noc=NocConfig(num_vcs=num_vcs, buffer_depth=depth),
                ),
            )
        )
    for width, height in e6_points(quick=False):
        configs.append(
            (
                f"E6 measured target {width}x{height}",
                TargetConfig(width=width, height=height, network_model="simd"),
            )
        )
    return configs


@dataclass
class ExperimentResult:
    """Rows plus headline aggregates for one experiment."""

    eid: str
    title: str
    headers: List[str]
    rows: List[Sequence]
    notes: Dict[str, float] = field(default_factory=dict)
    #: optional pre-rendered ASCII figures (appended after the table)
    figures: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Rows normalize to tuples so persistence round-trips compare equal
        # (JSON has no tuple type) and assembled-from-store results match
        # the in-process originals exactly.
        self.rows = [tuple(row) for row in self.rows]

    def render(self) -> str:
        lines = [format_table(self.headers, self.rows, title=f"[{self.eid}] {self.title}")]
        if self.notes:
            lines.append("")
            for key, value in self.notes.items():
                shown = (
                    format_percent(value)
                    if "reduction" in key or "error" in key
                    else f"{value:.4g}"
                )
                lines.append(f"  {key}: {shown}")
        for figure in self.figures:
            lines.append("")
            lines.append(figure)
        return "\n".join(lines)


def run_table1() -> str:
    """The target-machine configuration table (paper Table 1 analogue)."""
    return format_kv(default_target_table(), title="Target system configuration")


# ----------------------------------------------------------------------
# E1: load-latency validation of the network simulators and models
# ----------------------------------------------------------------------
def _abstract_curve(topo, noc, model, pattern, rate, cycles, seed) -> float:
    """Mean latency an abstract model predicts for a synthetic stream."""
    traffic = SyntheticTraffic(topo, pattern, rate=rate, size_flits=4, seed=seed)
    total = 0
    count = 0
    for cycle in range(cycles):
        for packet in traffic.packets_for_cycle(cycle):
            total += model.latency(
                packet.src, packet.dst, packet.size_flits, packet.msg_class, cycle
            )
            count += 1
        if cycle % 64 == 63:
            model.on_quantum(cycle + 1, 64)
    return total / count if count else 0.0


def run_e1(quick: bool = False, seed: int = 11) -> ExperimentResult:
    """Latency vs offered load: cycle-level (OO), SIMD, fixed, queueing."""
    from ..abstractnet import FixedLatencyModel, QueueingLatencyModel

    topo = Mesh(8, 8)
    noc = NocConfig()
    patterns = ["uniform"] if quick else ["uniform", "transpose", "hotspot"]
    rates = [0.02, 0.06] if quick else [0.01, 0.03, 0.05, 0.08, 0.11]
    cycles = 400 if quick else 1500

    rows = []
    for pattern in patterns:
        def traffic_at(rate, pattern=pattern):
            return SyntheticTraffic(topo, pattern, rate=rate, size_flits=4, seed=seed)

        oo = sweep_injection(topo, traffic_at, rates, cycles, kind="cycle", noc=noc)
        simd = sweep_injection(topo, traffic_at, rates, cycles, kind="simd", noc=noc)
        for (rate, oo_stats), (_, simd_stats) in zip(oo, simd):
            fixed = _abstract_curve(
                topo, noc, FixedLatencyModel(topo, noc), pattern, rate, cycles, seed
            )
            queueing = _abstract_curve(
                topo, noc, QueueingLatencyModel(topo, noc), pattern, rate, cycles, seed
            )
            rows.append(
                (
                    pattern,
                    rate,
                    oo_stats.mean_latency,
                    simd_stats.mean_latency,
                    fixed,
                    queueing,
                )
            )

    # Headline: SIMD-vs-OO agreement (validates using SIMD as ground truth).
    # Saturated points (latency dominated by unbounded source queues) are
    # reported separately: there the absolute latency reflects how long the
    # run lasted, so only loose agreement is meaningful.
    unsaturated = [
        metrics.relative_error(r[3], r[2]) for r in rows if 0 < r[2] < 100
    ]
    saturated = [
        metrics.relative_error(r[3], r[2]) for r in rows if r[2] >= 100
    ]
    figures = []
    for pattern in patterns:
        points = [r for r in rows if r[0] == pattern]
        if len(points) < 2:
            continue
        chart = AsciiChart(
            width=56, height=12, title=f"{pattern}: latency vs offered load", log_y=True
        )
        xs = [r[1] for r in points]
        chart.add_series("cycle", xs, [r[2] for r in points], marker="*")
        chart.add_series("simd", xs, [r[3] for r in points], marker="s")
        chart.add_series("fixed", xs, [r[4] for r in points], marker="f")
        chart.add_series("queueing", xs, [r[5] for r in points], marker="q")
        figures.append(chart.render())
    return ExperimentResult(
        eid="E1",
        title="Load-latency curves: detailed simulators vs abstract models (8x8 mesh)",
        headers=["pattern", "rate", "cycle_oo", "cycle_simd", "fixed", "queueing"],
        rows=rows,
        notes={
            "max_simd_vs_oo_error": max(unsaturated) if unsaturated else 0.0,
            "max_simd_vs_oo_error_saturated": max(saturated) if saturated else 0.0,
        },
        figures=figures,
    )


# ----------------------------------------------------------------------
# E2: vacuum (isolated) simulation vs in-context simulation
# ----------------------------------------------------------------------
def run_e2(quick: bool = False, seed: int = 5) -> ExperimentResult:
    """Isolated NoC evaluation error: trace replay and matched-load Bernoulli
    traffic vs the same network in full-system context."""
    apps = ["radix"] if quick else ["fft", "radix", "ocean", "barnes"]
    rows = []
    for app in apps:
        config = TargetConfig(
            width=4,
            height=4,
            app=app,
            seed=seed,
            network_model="cycle",
            quantum=4,
            scale=0.4 if quick else 1.0,
        )
        result, recorder, cosim = run_cosim_traced(config)
        topo = config.make_topology()
        # In-context latency: what the cycle network itself measured inside
        # the co-simulation (the component's own view — the quantity a
        # component study reports; excludes quantum clamping).
        context_lat = cosim.network.network.stats.mean_latency
        # Replay the trace open loop.
        replay_net = make_network("cycle", topo, config.noc)
        TraceInjector(recorder.records).drive(replay_net, drain=True)
        # Matched-average-load Bernoulli traffic, same duration.
        matched_net = make_network("cycle", topo, config.noc)
        matched = matched_load_synthetic(recorder.records, topo, seed=seed)
        matched.drive(matched_net, cycles=max(1, recorder.duration), drain=False)
        matched_net.run(2000)

        replay_lat = replay_net.stats.mean_latency
        matched_lat = matched_net.stats.mean_latency
        rows.append(
            (
                app,
                context_lat,
                replay_lat,
                matched_lat,
                metrics.relative_error(replay_lat, context_lat),
                metrics.relative_error(matched_lat, context_lat),
            )
        )
    mean_matched_err = sum(r[5] for r in rows) / len(rows)
    return ExperimentResult(
        eid="E2",
        title="Vacuum evaluation error: isolated NoC runs vs in-context (4x4 CMP)",
        headers=[
            "app",
            "in_context_lat",
            "trace_replay_lat",
            "matched_load_lat",
            "replay_error",
            "matched_error",
        ],
        rows=rows,
        notes={"mean_matched_load_error": mean_matched_err},
    )


# ----------------------------------------------------------------------
# E3/E4: accuracy of abstract model vs reciprocal abstraction
# ----------------------------------------------------------------------
def _accuracy_sweep(quick: bool, seed: int) -> List[Dict]:
    apps = ["fft", "water"] if quick else splash_apps()
    scale = 0.4 if quick else 1.0
    runs = []
    for app in apps:
        base = TargetConfig(width=4, height=4, app=app, seed=seed, scale=scale)
        truth = run_cosim(base.variant(network_model="simd", quantum=1))
        ra = run_cosim(base.variant(network_model="simd", quantum=4))
        fixed = run_cosim(base.variant(network_model="fixed"))
        queueing = run_cosim(base.variant(network_model="queueing"))
        runs.append(
            {
                "app": app,
                "truth": truth,
                "ra": ra,
                "fixed": fixed,
                "queueing": queueing,
            }
        )
    return runs


def run_e3(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Packet latency error: abstract network model vs RA co-simulation.

    The paper's headline: RA reduces latency error vs the abstract model by
    69% on average.
    """
    rows = []
    pairs = []
    for run in _accuracy_sweep(quick, seed):
        truth_lat = run["truth"].mean_latency()
        fixed_err = metrics.relative_error(run["fixed"].mean_latency(), truth_lat)
        queue_err = metrics.relative_error(run["queueing"].mean_latency(), truth_lat)
        ra_err = metrics.relative_error(run["ra"].mean_latency(), truth_lat)
        pairs.append((fixed_err, ra_err))
        rows.append(
            (
                run["app"],
                truth_lat,
                run["fixed"].mean_latency(),
                run["queueing"].mean_latency(),
                run["ra"].mean_latency(),
                fixed_err,
                queue_err,
                ra_err,
            )
        )
    reduction = metrics.mean_error_reduction(pairs)
    return ExperimentResult(
        eid="E3",
        title="Packet latency error vs cycle-accurate ground truth (per app)",
        headers=[
            "app",
            "truth_lat",
            "fixed_lat",
            "queueing_lat",
            "ra_lat",
            "fixed_err",
            "queueing_err",
            "ra_err",
        ],
        rows=rows,
        notes={
            "ra_error_reduction_vs_fixed": reduction,
            "paper_anchor_reduction": 0.69,
        },
    )


def run_e4(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Full-system execution-time error from the network-model choice."""
    rows = []
    pairs = []
    for run in _accuracy_sweep(quick, seed):
        truth_finish = float(run["truth"].finish_cycle or run["truth"].cycles)
        fixed_err = metrics.relative_error(
            float(run["fixed"].finish_cycle or 0), truth_finish
        )
        ra_err = metrics.relative_error(
            float(run["ra"].finish_cycle or 0), truth_finish
        )
        pairs.append((fixed_err, ra_err))
        rows.append(
            (
                run["app"],
                truth_finish,
                float(run["fixed"].finish_cycle or 0),
                float(run["ra"].finish_cycle or 0),
                fixed_err,
                ra_err,
            )
        )
    return ExperimentResult(
        eid="E4",
        title="Target execution-time error from the network model (per app)",
        headers=[
            "app",
            "truth_finish",
            "fixed_finish",
            "ra_finish",
            "fixed_err",
            "ra_err",
        ],
        rows=rows,
        notes={"ra_runtime_error_reduction": metrics.mean_error_reduction(pairs)},
    )


# ----------------------------------------------------------------------
# E5: design-space exploration through the detailed component
# ----------------------------------------------------------------------
# E5/E6/E7 are multi-point sweeps.  Each is split into ``eN_points`` (the
# sweep grid), ``run_eN_point`` (one independent, JSON-serializable unit of
# work), and ``assemble_eN`` (cross-point aggregates) so the campaign engine
# (:mod:`repro.campaign`) can fan the points out across worker processes;
# the sequential ``run_eN`` entry points compose exactly these pieces, which
# is what guarantees campaign output is identical to a sequential run.


def e5_points(quick: bool = False) -> List[List[int]]:
    """The (num_vcs, buffer_depth) grid, ordered weakest-first so the
    RA-visible runtime trend is monotone."""
    return [[2, 2], [8, 8]] if quick else [[2, 2], [2, 4], [4, 4], [8, 8]]


def run_e5_point(point: Sequence[int], quick: bool = False, seed: int = 3) -> tuple:
    """One router design point: RA co-sim + abstract-model run; one row."""
    num_vcs, depth = point
    noc = NocConfig(num_vcs=num_vcs, buffer_depth=depth)
    scale = 0.4 if quick else 1.0
    base = TargetConfig(
        width=4, height=4, app="fft", seed=seed, scale=scale, noc=noc
    )
    ra = run_cosim(base.variant(network_model="simd", quantum=4))
    fixed = run_cosim(base.variant(network_model="fixed"))
    return (
        f"{num_vcs}vc x {depth}f",
        float(ra.finish_cycle or 0),
        ra.mean_latency(),
        float(fixed.finish_cycle or 0),
        fixed.mean_latency(),
    )


def assemble_e5(
    rows: Sequence[Sequence], quick: bool = False, seed: int = 3
) -> ExperimentResult:
    """Combine per-point rows (in :func:`e5_points` order) into the result."""
    ra_finishes = [float(row[1]) for row in rows]
    spread = (max(ra_finishes) - min(ra_finishes)) / max(ra_finishes)
    return ExperimentResult(
        eid="E5",
        title="Design-space exploration: router design, RA co-sim vs abstract model",
        headers=["design", "ra_finish", "ra_lat", "fixed_finish", "fixed_lat"],
        rows=list(rows),
        notes={"ra_visible_runtime_spread": spread},
    )


def run_e5(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Router design sweep (VCs x buffers): visible through RA, invisible to
    the abstract model."""
    rows = [run_e5_point(p, quick, seed) for p in e5_points(quick)]
    return assemble_e5(rows, quick, seed)


# ----------------------------------------------------------------------
# E6: CPU vs CPU+GPU co-simulation time
# ----------------------------------------------------------------------
def e6_points(quick: bool = False) -> List[List[int]]:
    """The measured (width, height) target sizes."""
    return [[4, 4], [8, 8]] if quick else [[8, 8], [16, 16], [32, 16]]


def run_e6_point(point: Sequence[int], quick: bool = False, seed: int = 3) -> tuple:
    """One measured target size: CPU-network vs GPU-network wall clock.

    Both runs happen inside the same job so the reduction ratio compares
    like with like even when jobs share a loaded host.
    """
    width, height = point
    window = 800 if quick else 3000
    cores = width * height
    base = TargetConfig(
        width=width, height=height, app="ocean", seed=seed, quantum=16
    )
    cpu = run_cosim(base.variant(network_model="cycle"), max_cycles=window)
    gpu = run_cosim(base.variant(network_model="simd"), max_cycles=window)
    return (
        f"measured-{cores}",
        cores,
        cpu.wall_total,
        gpu.wall_total,
        measured_reduction(cpu, gpu),
    )


def assemble_e6(
    rows: Sequence[Sequence], quick: bool = False, seed: int = 3
) -> ExperimentResult:
    """Measured rows (in :func:`e6_points` order) + paper-calibrated model."""
    rows = list(rows)
    model = HostTimingModel()
    for entry in model.sweep((64, 256, 512)):
        rows.append(
            (
                f"model-{int(entry['cores'])}",
                int(entry["cores"]),
                entry["cpu_cosim"],
                entry["gpu_cosim"],
                entry["gpu_reduction"],
            )
        )
    anchors = model.paper_anchor_errors()
    return ExperimentResult(
        eid="E6",
        title="Co-simulation host time: CPU-only vs CPU+GPU detailed network",
        headers=["row", "cores", "cpu_time", "gpu_time", "gpu_reduction"],
        rows=rows,
        notes={
            "model_anchor_err_256": anchors["err_256"],
            "model_anchor_err_512": anchors["err_512"],
        },
    )


def run_e6(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Host co-simulation time at 64/256/512-core targets.

    Measured part: wall clock of real co-simulations with the OO network
    ("CPU") vs the SIMD network ("GPU") over a fixed window of target
    cycles.  Modelled part: the paper-calibrated cost model (16% @ 256,
    65% @ 512).
    """
    rows = [run_e6_point(p, quick, seed) for p in e6_points(quick)]
    return assemble_e6(rows, quick, seed)


# ----------------------------------------------------------------------
# E7: synchronization-quantum ablation
# ----------------------------------------------------------------------
def e7_points(quick: bool = False) -> List[List[int]]:
    """The quantum grid; quantum 1 leads and serves as the reference."""
    quanta = [1, 16, 64] if quick else [1, 4, 16, 64, 256]
    return [[q] for q in quanta]


def run_e7_point(point: Sequence[int], quick: bool = False, seed: int = 3) -> tuple:
    """One quantum: the raw per-run record; errors are assembled later
    against the quantum-1 record, so every point is an independent job."""
    (quantum,) = point
    scale = 0.4 if quick else 1.0
    base = TargetConfig(
        width=4, height=4, app="fft", seed=seed, scale=scale, network_model="simd"
    )
    result = run_cosim(base.variant(quantum=quantum))
    return (
        quantum,
        result.mean_latency(),
        float(result.finish_cycle or 0),
        result.clamped_deliveries,
        result.deliveries,
        result.windows,
        result.wall_total,
    )


def assemble_e7(
    records: Sequence[Sequence], quick: bool = False, seed: int = 3
) -> ExperimentResult:
    """Turn raw per-quantum records (in :func:`e7_points` order) into the
    accuracy/clamping/host-cost table relative to the quantum-1 record."""
    truth = records[0]
    if truth[0] != 1:
        raise ConfigError(
            f"E7 assembly needs the quantum-1 reference first, got {truth[0]!r}"
        )
    truth_lat = truth[1]
    truth_finish = float(truth[2]) or 1.0
    rows = []
    for quantum, mean_lat, finish, clamped, deliveries, windows, wall in records:
        rows.append(
            (
                quantum,
                mean_lat,
                metrics.relative_error(mean_lat, truth_lat),
                metrics.relative_error(float(finish), truth_finish),
                clamped / max(1, deliveries),
                windows,
                wall,
            )
        )
    return ExperimentResult(
        eid="E7",
        title="Synchronization-quantum sweep (reference: quantum 1)",
        headers=[
            "quantum",
            "mean_lat",
            "lat_err",
            "finish_err",
            "clamped_frac",
            "windows",
            "wall_s",
        ],
        rows=rows,
        notes={},
    )


def run_e7(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Quantum size vs accuracy and host cost of the RA coupling."""
    records = [run_e7_point(p, quick, seed) for p in e7_points(quick)]
    return assemble_e7(records, quick, seed)


# ----------------------------------------------------------------------
# E8: which direction of reciprocity matters
# ----------------------------------------------------------------------
def run_e8(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Full RA vs table-feedback hybrid vs pure abstract model."""
    scale = 0.4 if quick else 1.0
    base = TargetConfig(width=4, height=4, app="fft", seed=seed, scale=scale)
    truth = run_cosim(base.variant(network_model="simd", quantum=1))
    modes = [
        ("full-ra", base.variant(network_model="simd", quantum=4)),
        ("table-feedback", base.variant(network_model="table-shadow", quantum=4)),
        ("table-static", base.variant(network_model="table")),
        ("fixed", base.variant(network_model="fixed")),
    ]
    truth_lat = truth.mean_latency()
    truth_finish = float(truth.finish_cycle or truth.cycles)
    truth_dist = truth.applied_latencies.get(-1, [])
    rows = []
    errors = {}
    for name, config in modes:
        result = run_cosim(config)
        lat_err = metrics.relative_error(result.mean_latency(), truth_lat)
        finish_err = metrics.relative_error(
            float(result.finish_cycle or 0), truth_finish
        )
        # A retuned table can match the *mean* while collapsing the
        # latency *distribution* (every same-distance message gets the same
        # latency); the KS distance exposes what only per-message detailed
        # feedback preserves.
        ks = metrics.distribution_distance(
            result.applied_latencies.get(-1, [0]), truth_dist
        )
        errors[name] = lat_err
        rows.append((name, result.mean_latency(), lat_err, finish_err, ks))
    return ExperimentResult(
        eid="E8",
        title="Reciprocity ablation: latency error by coupling mode (truth: Q=1)",
        headers=["mode", "mean_lat", "lat_err", "finish_err", "ks_distance"],
        rows=rows,
        notes={
            "full_ra_error": errors.get("full-ra", 0.0),
            "fixed_error": errors.get("fixed", 0.0),
        },
    )


# ----------------------------------------------------------------------
# E9 (extension): adaptive synchronization quantum
# ----------------------------------------------------------------------
def run_e9(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Adaptive vs fixed quantum: accuracy per synchronization window.

    This is the natural refinement of the paper's coupling (not evaluated
    there, hence an *extension* experiment): size the quantum by observed
    traffic so busy phases couple finely and idle phases coarsely.  The
    adaptive controller should approach small-fixed-quantum accuracy with
    markedly fewer synchronization windows than quantum-1 coupling.
    """
    from ..core.config import build_cosim
    from ..core.quantum import AdaptiveQuantum, FixedQuantum

    scale = 0.4 if quick else 1.0
    base = TargetConfig(
        width=4, height=4, app="fft", seed=seed, scale=scale, network_model="simd"
    )

    def run_with(controller):
        cosim = build_cosim(base)
        cosim.quantum = controller
        return cosim.run()

    truth = run_with(FixedQuantum(1))
    modes = [
        ("fixed-1", truth),
        ("fixed-4", run_with(FixedQuantum(4))),
        ("fixed-16", run_with(FixedQuantum(16))),
        (
            "adaptive-2..32",
            run_with(
                AdaptiveQuantum(min_cycles=2, max_cycles=32, target_messages=24)
            ),
        ),
    ]
    rows = []
    for name, result in modes:
        rows.append(
            (
                name,
                result.mean_latency(),
                metrics.relative_error(result.mean_latency(), truth.mean_latency()),
                result.windows,
                result.clamped_deliveries / max(1, result.deliveries),
            )
        )
    adaptive = rows[-1]
    fixed1 = rows[0]
    return ExperimentResult(
        eid="E9",
        title="Extension: adaptive synchronization quantum (truth: fixed-1)",
        headers=["mode", "mean_lat", "lat_err", "windows", "clamped_frac"],
        rows=rows,
        notes={
            "adaptive_lat_error": adaptive[2],
            "adaptive_window_saving_vs_q1": 1.0 - adaptive[3] / fixed1[3],
        },
    )


# ----------------------------------------------------------------------
# E10 (extension): memory-model fidelity under reciprocal abstraction
# ----------------------------------------------------------------------
def run_e10(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Fidelity mixing beyond the NoC: flat memory vs detailed DRAM.

    Reciprocal abstraction's premise is that *any* component can be swapped
    to a different fidelity inside the same full-system context.  This
    extension experiment swaps the memory controllers: the simple
    service-interval model vs the banked open-page FR-FCFS DRAM controller
    (:mod:`repro.dram`), with the RA network coupling unchanged.  The
    detailed model exposes row-buffer and bank-conflict behaviour the flat
    model cannot represent, shifting full-system results substantially —
    the same vacuum argument, applied to memory.
    """
    from ..fullsys.config import CmpConfig

    apps = ["ocean"] if quick else ["ocean", "radix", "water"]
    scale = 0.3 if quick else 0.6
    rows = []
    shifts = []
    for app in apps:
        base = TargetConfig(
            width=4, height=4, app=app, seed=seed, scale=scale,
            network_model="simd", quantum=4,
        )
        simple = run_cosim(base)
        dram = run_cosim(
            base.variant(cmp=CmpConfig(memory_model="dram"))
        )
        simple_finish = float(simple.finish_cycle or simple.cycles)
        dram_finish = float(dram.finish_cycle or dram.cycles)
        shift = metrics.relative_error(simple_finish, dram_finish)
        shifts.append(shift)
        rows.append(
            (
                app,
                simple_finish,
                dram_finish,
                simple.system_summary["mean_miss_latency"],
                dram.system_summary["mean_miss_latency"],
                shift,
            )
        )
    return ExperimentResult(
        eid="E10",
        title="Extension: memory-model fidelity (flat vs banked FR-FCFS DRAM)",
        headers=[
            "app",
            "flat_finish",
            "dram_finish",
            "flat_misslat",
            "dram_misslat",
            "runtime_shift",
        ],
        rows=rows,
        notes={"mean_runtime_shift_from_memory_fidelity": sum(shifts) / len(shifts)},
    )


# ----------------------------------------------------------------------
# E11 (extension): fault injection and graceful degradation
# ----------------------------------------------------------------------
# Thin wrappers over :mod:`repro.resilience.experiment` (imported lazily so
# the harness never pays for the resilience package unless E11 runs); the
# trio shape matches E5/E6/E7 so the campaign engine can fan out the levels.


def e11_points(quick: bool = False) -> List[List[int]]:
    """The fault-severity grid (see :mod:`repro.resilience.experiment`)."""
    from ..resilience.experiment import e11_points as points

    return points(quick)


def run_e11_point(point: Sequence[int], quick: bool = False, seed: int = 3) -> tuple:
    """One fault level: faulty detailed run + fault-blind abstract run."""
    from ..resilience.experiment import run_e11_point as run_point

    return run_point(point, quick, seed)


def assemble_e11(
    rows: Sequence[Sequence], quick: bool = False, seed: int = 3
) -> ExperimentResult:
    from ..resilience.experiment import assemble_e11 as assemble

    return assemble(rows, quick, seed)


def run_e11(quick: bool = False, seed: int = 3) -> ExperimentResult:
    """Fault-severity sweep: latency degradation only the detailed model sees."""
    from ..resilience.experiment import run_e11 as run

    return run(quick=quick, seed=seed)


ALL_EXPERIMENTS = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
}
