"""Plain-text rendering of experiment tables and series.

Every experiment prints through these helpers so benchmark output looks like
the rows a paper table/figure would carry.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_kv", "format_percent"]


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    rendered: List[List[str]] = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs: dict, title: str = "") -> str:
    """Aligned key/value block (configuration tables)."""
    width = max(len(str(k)) for k in pairs) if pairs else 0
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{str(key).ljust(width)}  {_render_cell(value)}")
    return "\n".join(lines)


def format_percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"
