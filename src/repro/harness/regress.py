"""Regression comparison between saved experiment results.

Experiments are stochastic only through their fixed seeds, so two runs of
the same library version produce identical rows; across versions, numeric
drift beyond tolerance signals a behaviour change worth reviewing.  This
module diffs two :class:`~repro.harness.experiments.ExperimentResult` sets
(typically ``load_all(golden_dir)`` vs a fresh run) and reports per-cell
relative drift.

Usage::

    golden = load_all("golden/")
    fresh = [ALL_EXPERIMENTS[r.eid](quick=False) for r in golden]
    report = compare_many(golden, fresh, tolerance=0.05)
    assert not report.regressions, report.render()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import ConfigError
from .experiments import ExperimentResult
from .report import format_table

__all__ = ["Drift", "RegressionReport", "compare", "compare_many"]


@dataclass(frozen=True)
class Drift:
    """One cell (or note) whose value moved beyond tolerance."""

    eid: str
    where: str  # "row 3 col mean_lat" or "note ra_error_reduction"
    old: float
    new: float

    @property
    def relative(self) -> float:
        if self.old == 0:
            return float("inf") if self.new != 0 else 0.0
        return abs(self.new - self.old) / abs(self.old)


@dataclass
class RegressionReport:
    """All drifts found between two result sets."""

    tolerance: float
    compared_cells: int = 0
    regressions: List[Drift] = field(default_factory=list)

    def render(self) -> str:
        if not self.regressions:
            return (
                f"no regressions: {self.compared_cells} numeric cells within "
                f"{self.tolerance:.0%}"
            )
        rows = [
            (d.eid, d.where, d.old, d.new, d.relative)
            for d in self.regressions
        ]
        return format_table(
            ["eid", "where", "old", "new", "drift"],
            rows,
            title=f"regressions beyond {self.tolerance:.0%} "
            f"({len(self.regressions)} of {self.compared_cells} cells)",
        )


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare(
    old: ExperimentResult,
    new: ExperimentResult,
    tolerance: float = 0.05,
    report: RegressionReport | None = None,
) -> RegressionReport:
    """Diff two results of the same experiment."""
    if old.eid != new.eid:
        raise ConfigError(f"comparing {old.eid} against {new.eid}")
    if report is None:
        report = RegressionReport(tolerance=tolerance)
    if len(old.rows) != len(new.rows):
        report.regressions.append(
            Drift(old.eid, "row count", float(len(old.rows)), float(len(new.rows)))
        )
        return report

    def check(where: str, a, b) -> None:
        if not (_numeric(a) and _numeric(b)):
            return
        report.compared_cells += 1
        drift = Drift(old.eid, where, float(a), float(b))
        if drift.relative > tolerance:
            report.regressions.append(drift)

    headers = old.headers
    for i, (row_a, row_b) in enumerate(zip(old.rows, new.rows)):
        for j, (a, b) in enumerate(zip(row_a, row_b)):
            name = headers[j] if j < len(headers) else f"col{j}"
            check(f"row {i} {name}", a, b)
    for key in old.notes:
        if key in new.notes:
            check(f"note {key}", old.notes[key], new.notes[key])
        else:
            report.regressions.append(Drift(old.eid, f"note {key} missing", 0.0, 0.0))
    return report


def compare_many(
    old: Sequence[ExperimentResult],
    new: Sequence[ExperimentResult],
    tolerance: float = 0.05,
) -> RegressionReport:
    """Diff matching experiments from two sets (matched by eid)."""
    report = RegressionReport(tolerance=tolerance)
    new_by_id = {r.eid: r for r in new}
    for old_result in old:
        fresh = new_by_id.get(old_result.eid)
        if fresh is None:
            report.regressions.append(
                Drift(old_result.eid, "experiment missing", 0.0, 0.0)
            )
            continue
        compare(old_result, fresh, tolerance, report)
    return report
