"""Command-line interface: run any reproduced experiment from the shell.

Examples::

    python -m repro E3              # the headline accuracy table
    python -m repro E6 --quick      # shrunken variant
    python -m repro table1          # target configuration table
    python -m repro all --quick     # everything

Results print as the same fixed-width tables the benchmark suite saves.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import ALL_EXPERIMENTS, run_table1

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Reciprocal abstraction for "
        "computer architecture co-simulation' (ISPASS 2015).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["table1", "all"],
        help="experiment id (E1..E10), 'table1', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the shrunken (test-sized) variant",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the workload seed"
    )
    return parser


def _run_one(eid: str, quick: bool, seed: Optional[int]) -> None:
    runner = ALL_EXPERIMENTS[eid]
    kwargs = {"quick": quick}
    if seed is not None:
        kwargs["seed"] = seed
    start = time.perf_counter()
    result = runner(**kwargs)
    elapsed = time.perf_counter() - start
    print(result.render())
    print(f"\n  [{eid} completed in {elapsed:.1f}s]\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "table1":
        print(run_table1())
        return 0
    targets = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for eid in targets:
        _run_one(eid, args.quick, args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
