"""Command-line interface: run any reproduced experiment from the shell.

Examples::

    python -m repro E3              # the headline accuracy table
    python -m repro E6 --quick      # shrunken variant
    python -m repro table1          # target configuration table
    python -m repro all --quick     # everything
    python -m repro lint            # simulation-correctness static analysis
    python -m repro verify          # deadlock/protocol verification
    python -m repro E1 --quick --check-invariants
    python -m repro campaign run E5 E7 --workers 4 --db sweep.db
    python -m repro resilience run --link-failures 2 --corrupt-rate 0.005
    python -m repro resilience selftest

Results print as the same fixed-width tables the benchmark suite saves.
``lint`` runs :mod:`repro.analysis.simlint` over the installed ``repro``
package (or ``--path``) and exits non-zero on any finding, so CI can gate
on it.  ``--check-invariants`` installs the runtime invariant checker
(:mod:`repro.analysis.invariants`) on every co-simulation the experiments
build.  ``campaign`` hands off to :mod:`repro.campaign.cli` — the
parallel, resumable sweep engine (``run``/``report``/``status``) —
``verify`` to :mod:`repro.verify.cli`, the pre-simulation deadlock and
protocol-safety checker, and ``resilience`` to
:mod:`repro.resilience.cli` (fault injection, watchdog, checkpoints).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import ALL_EXPERIMENTS, run_table1
from .runner import set_check_invariants

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Reciprocal abstraction for "
        "computer architecture co-simulation' (ISPASS 2015).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["table1", "all", "lint"],
        help="experiment id (E1..E11), 'table1', 'all', or 'lint' (static "
        "analysis of the repro tree)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the shrunken (test-sized) variant",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the workload seed"
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="install the runtime invariant checker (message conservation, "
        "time monotonicity, NoC credit conservation) on every co-simulation",
    )
    parser.add_argument(
        "--path",
        default=None,
        help="with 'lint': tree to analyse (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="with 'lint': report format (json feeds CI annotations)",
    )
    return parser


def _run_one(eid: str, quick: bool, seed: Optional[int]) -> None:
    runner = ALL_EXPERIMENTS[eid]
    kwargs = {"quick": quick}
    if seed is not None:
        kwargs["seed"] = seed
    start = time.perf_counter()
    result = runner(**kwargs)
    elapsed = time.perf_counter() - start
    print(result.render())
    print(f"\n  [{eid} completed in {elapsed:.1f}s]\n")


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        # The campaign engine has its own subcommand tree; dispatch before
        # argparse so the experiment chooser stays a simple positional.
        from ..campaign.cli import main as campaign_main  # deferred: optional

        return campaign_main(argv[1:])
    if argv and argv[0] == "verify":
        # Configuration verification likewise owns its own flags.
        from ..verify.cli import main as verify_main  # deferred: optional

        return verify_main(argv[1:])
    if argv and argv[0] == "resilience":
        # Fault injection / watchdog / checkpoint tooling, same shape.
        from ..resilience.cli import main as resilience_main  # deferred: optional

        return resilience_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "lint":
        from ..analysis.simlint import run as run_lint  # deferred: lint only

        return run_lint(args.path, fmt=args.format)
    if args.check_invariants:
        set_check_invariants(True)
    try:
        if args.experiment == "table1":
            print(run_table1())
            return 0
        targets = (
            sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        )
        for eid in targets:
            _run_one(eid, args.quick, args.seed)
        return 0
    finally:
        if args.check_invariants:
            set_check_invariants(False)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
