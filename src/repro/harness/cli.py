"""Command-line interface: run any reproduced experiment from the shell.

Examples::

    python -m repro E3              # the headline accuracy table
    python -m repro E6 --quick      # shrunken variant
    python -m repro table1          # target configuration table
    python -m repro all --quick     # everything
    python -m repro lint            # simulation-correctness static analysis
    python -m repro verify          # deadlock/protocol verification
    python -m repro E1 --quick --check-invariants
    python -m repro campaign run E5 E7 --workers 4 --db sweep.db
    python -m repro resilience run --link-failures 2 --corrupt-rate 0.005
    python -m repro serve start --db serve.db --workers 4
    python -m repro cluster start --node-id a --port 9301 --peers 127.0.0.1:9302
    python -m repro bench run --quick
    python -m repro chaos audit --mode campaign --torn-commits 1

Results print as the same fixed-width tables the benchmark suite saves.
``--check-invariants`` installs the runtime invariant checker
(:mod:`repro.analysis.invariants`) on every co-simulation the experiments
build.

Tool subcommands (``lint``, ``verify``, ``campaign``, ``resilience``,
``serve``, ``cluster``, ``bench``, ``chaos``) each own their flags and dispatch through one registry,
:data:`SUBCOMMANDS` — the single source of truth that the ``--help``
epilog, the dispatcher, and the dispatch-agreement test all read, so a
new subcommand cannot be wired into one and forgotten in another.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .experiments import ALL_EXPERIMENTS, run_table1
from .runner import set_check_invariants

__all__ = ["main", "build_parser", "SUBCOMMANDS", "Subcommand"]

#: a subcommand entry point: argv (after the subcommand name) -> exit code
SubMain = Callable[[Optional[List[str]]], int]


@dataclass(frozen=True)
class Subcommand:
    """One registered tool subcommand.

    ``load`` returns the subcommand's ``main`` lazily, so ``python -m
    repro E3`` never pays the import cost of the tool packages.
    """

    name: str
    help: str
    load: Callable[[], SubMain]


def _load_lint() -> SubMain:
    return _lint_main


def _load_verify() -> SubMain:
    from ..verify.cli import main as verify_main

    return verify_main


def _load_campaign() -> SubMain:
    from ..campaign.cli import main as campaign_main

    return campaign_main


def _load_resilience() -> SubMain:
    from ..resilience.cli import main as resilience_main

    return resilience_main


def _load_serve() -> SubMain:
    from ..serve.cli import main as serve_main

    return serve_main


def _load_cluster() -> SubMain:
    from ..cluster.cli import main as cluster_main

    return cluster_main


def _load_bench() -> SubMain:
    from ..bench.cli import main as bench_main

    return bench_main


def _load_chaos() -> SubMain:
    from ..chaos.cli import main as chaos_main

    return chaos_main


#: every tool subcommand, in display order — the one dispatch table
SUBCOMMANDS: Dict[str, Subcommand] = {
    sub.name: sub
    for sub in (
        Subcommand(
            "lint",
            "simulation-correctness static analysis (simlint rules)",
            _load_lint,
        ),
        Subcommand(
            "verify",
            "pre-simulation deadlock and protocol-safety verification",
            _load_verify,
        ),
        Subcommand(
            "campaign",
            "parallel, resumable experiment campaigns (run/report/status)",
            _load_campaign,
        ),
        Subcommand(
            "resilience",
            "fault injection, watchdog, and checkpoint/restore",
            _load_resilience,
        ),
        Subcommand(
            "serve",
            "simulation-as-a-service daemon (start/submit/status/result)",
            _load_serve,
        ),
        Subcommand(
            "cluster",
            "sharded multi-node service (start/status/route a hash ring)",
            _load_cluster,
        ),
        Subcommand(
            "bench",
            "performance-trajectory benchmarks (run/compare BENCH_noc.json)",
            _load_bench,
        ),
        Subcommand(
            "chaos",
            "infrastructure fault injection and the crash-consistency audit",
            _load_chaos,
        ),
    )
}


def _subcommand_epilog() -> str:
    width = max(len(name) for name in SUBCOMMANDS)
    lines = ["tool subcommands (each owns its flags; try 'repro <name> --help'):"]
    for name, sub in SUBCOMMANDS.items():
        lines.append(f"  {name:<{width}}  {sub.help}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Reciprocal abstraction for "
        "computer architecture co-simulation' (ISPASS 2015).",
        epilog=_subcommand_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["table1", "all"],
        help="experiment id (E1..E11), 'table1', or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the shrunken (test-sized) variant",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the workload seed"
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="install the runtime invariant checker (message conservation, "
        "time monotonicity, NoC credit conservation) on every co-simulation",
    )
    return parser


def _lint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Simulation-correctness static analysis of a Python tree.",
    )
    parser.add_argument(
        "--path",
        default=None,
        help="tree to analyse (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (json feeds CI annotations, sarif feeds "
        "GitHub code scanning)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural SIM2xx pass "
        "(repro.analysis.flow) and apply the suppression baseline",
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="run the SIM3xx kernel array-semantics pass "
        "(repro.analysis.arrays): lane isolation, dtype bounds, "
        "fancy-index aliasing, shape contracts; composes with --deep",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="suppression baseline file (default: .simlint-baseline.json "
        "in the working directory or the repo root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to suppress every current finding "
        "(deep runs only); exits 0",
    )
    parser.add_argument(
        "--prefix",
        default=None,
        help="prepend to file paths in SARIF output (e.g. src/repro/)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding counts and analyzer coverage for "
        "both passes, then exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="summary cache directory for --deep (default: "
        "$REPRO_LINT_CACHE or .simlint_cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the --deep summary cache",
    )
    args = parser.parse_args(argv)
    from pathlib import Path

    from ..analysis.simlint import (
        default_lint_root,
        lint_paths,
        render_json,
        render_report,
        run as run_lint,
    )

    root = Path(args.path) if args.path else default_lint_root()
    if not root.exists():
        # A typo'd --path must not read as "clean" to CI.
        print(f"simlint: path {root} does not exist")
        return 2

    if not (args.deep or args.kernels or args.stats or args.update_baseline):
        if args.format != "sarif":
            return run_lint(args.path, fmt=args.format)
        from ..analysis.flow import render_sarif

        violations = lint_paths([root])
        print(render_sarif(violations, prefix=args.prefix))
        return 1 if violations else 0

    import os

    from ..analysis.flow import render_sarif, run_deep, write_baseline

    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = Path(
            args.cache_dir
            or os.environ.get("REPRO_LINT_CACHE")
            or ".simlint_cache"
        )

    baseline_path: Optional[Path] = None
    if args.baseline:
        baseline_path = Path(args.baseline)
    else:
        for candidate in (
            Path.cwd() / ".simlint-baseline.json",
            default_lint_root().parent.parent / ".simlint-baseline.json",
        ):
            if candidate.exists():
                baseline_path = candidate
                break

    def _run_report(baseline):
        # --kernels alone runs just the SIM3xx pass; with --deep (or the
        # deep-implying flags) the kernel findings join the full merge.
        if not args.deep and args.kernels:
            from ..analysis.arrays import run_kernels

            return run_kernels(
                [root], cache_dir=cache_dir, baseline_path=baseline
            )
        return run_deep(
            [root],
            cache_dir=cache_dir,
            baseline_path=baseline,
            include_kernels=args.kernels,
        )

    if args.update_baseline:
        report = _run_report(None)
        target = baseline_path or (
            default_lint_root().parent.parent / ".simlint-baseline.json"
        )
        count = write_baseline(target, report.violations)
        print(f"simlint: baseline updated ({count} finding(s) -> {target})")
        return 0

    report = _run_report(baseline_path)

    if args.stats:
        stats = report.stats
        kernels_only = args.kernels and not args.deep
        passes = "--kernels" if kernels_only else (
            "--deep --kernels" if args.kernels else "--deep"
        )
        print(f"simlint {passes} statistics")
        if not kernels_only:
            print(f"  modules analyzed : {stats.get('modules', 0)}")
            print(f"  functions        : {stats.get('functions', 0)}")
            print(f"  call edges       : {stats.get('call_edges', 0)}")
            print(
                f"  summary cache    : {stats.get('cache_hits', 0)} hit(s), "
                f"{stats.get('cache_misses', 0)} miss(es)"
            )
        if args.kernels:
            print(
                f"  kernel modules   : {stats.get('kernel_modules', 0)} "
                f"({stats.get('kernel_functions', 0)} function(s))"
            )
            print(
                f"  shape contracts  : {stats.get('contracts', 0)} "
                f"({stats.get('dtype_bounds', 0)} bounded dtype(s))"
            )
            print(
                f"  kernel cache     : "
                f"{stats.get('kernel_cache_hits', 0)} hit(s), "
                f"{stats.get('kernel_cache_misses', 0)} miss(es)"
            )
        print(f"  baseline         : {report.suppressed} suppressed")
        print("  findings by rule (pre-baseline):")
        for rule_key in sorted(
            k for k in stats if k.startswith("rule:")
        ):
            rule = rule_key[len("rule:"):]
            print(f"    {rule:<24} {stats[rule_key]}")
        if not any(k.startswith("rule:") for k in stats):
            print("    (none)")
        return 0

    if args.format == "sarif":
        print(render_sarif(report.violations, prefix=args.prefix))
    elif args.format == "json":
        print(render_json(report.violations))
    else:
        print(render_report(report.violations))
        if report.suppressed:
            print(f"simlint: {report.suppressed} baselined finding(s) suppressed")
    return 1 if report.violations else 0


def _run_one(eid: str, quick: bool, seed: Optional[int]) -> None:
    runner = ALL_EXPERIMENTS[eid]
    kwargs = {"quick": quick}
    if seed is not None:
        kwargs["seed"] = seed
    start = time.perf_counter()
    result = runner(**kwargs)
    elapsed = time.perf_counter() - start
    print(result.render())
    print(f"\n  [{eid} completed in {elapsed:.1f}s]\n")


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Tool subcommands own their flags: dispatch through the registry
    # before argparse so the experiment chooser stays a simple positional.
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]].load()(argv[1:])
    args = build_parser().parse_args(argv)
    if args.check_invariants:
        set_check_invariants(True)
    try:
        if args.experiment == "table1":
            print(run_table1())
            return 0
        targets = (
            sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        )
        for eid in targets:
            _run_one(eid, args.quick, args.seed)
        return 0
    finally:
        if args.check_invariants:
            set_check_invariants(False)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
