"""Host-time accounting for the speed experiments.

Two complementary sources, matching DESIGN.md's substitution plan:

* **measured** — :func:`measured_split` and :func:`measured_reduction`
  extract wall-clock splits from real co-simulation runs (the OO network as
  the "CPU" configuration, the SIMD network as the "GPU" configuration);
* **modelled** — :class:`HostTimingModel` wraps
  :class:`~repro.noc_gpu.gpu_model.GpuExecutionModel` and renders the
  paper-anchored predictions (16% @ 256 cores, 65% @ 512) for arbitrary
  sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.cosim import CoSimResult
from ..noc_gpu.gpu_model import GpuCostParams, GpuExecutionModel

__all__ = [
    "measured_split",
    "measured_reduction",
    "HostTimingModel",
]


def measured_split(result: CoSimResult) -> Dict[str, float]:
    """Wall-clock decomposition of one co-simulation run (seconds)."""
    other = max(0.0, result.wall_total - result.wall_system - result.wall_network)
    return {
        "system": result.wall_system,
        "network": result.wall_network,
        "coupling": other,
        "total": result.wall_total,
    }


def measured_reduction(cpu_run: CoSimResult, gpu_run: CoSimResult) -> float:
    """Fractional co-simulation time saved, from measured wall clocks.

    Normalizes by simulated cycles so runs of slightly different target
    length (execution is timing-dependent) compare fairly.
    """
    cpu_rate = cpu_run.wall_total / max(1, cpu_run.cycles)
    gpu_rate = gpu_run.wall_total / max(1, gpu_run.cycles)
    return 1.0 - gpu_rate / cpu_rate


@dataclass
class HostTimingModel:
    """Paper-calibrated host-time predictions over a core-count sweep."""

    params: Optional[GpuCostParams] = None

    def __post_init__(self) -> None:
        self.model = GpuExecutionModel(self.params)

    def sweep(
        self, core_counts: Sequence[int] = (64, 256, 512), quantum: int = 1
    ) -> List[Dict[str, float]]:
        """One row per target size: predicted times and the GPU reduction."""
        rows = []
        for cores in core_counts:
            rows.append(
                {
                    "cores": float(cores),
                    "fullsys_only": self.model.cosim_time(cores, 1, "none"),
                    "cpu_cosim": self.model.cosim_time(cores, 1, "cpu"),
                    "gpu_cosim": self.model.cosim_time(cores, 1, "gpu", quantum=quantum),
                    "gpu_reduction": self.model.gpu_time_reduction(
                        cores, quantum=quantum
                    ),
                }
            )
        return rows

    def paper_anchor_errors(self) -> Dict[str, float]:
        """Deviation from the paper's two anchors (should be ~0 by design)."""
        return {
            "err_256": abs(self.model.gpu_time_reduction(256) - 0.16),
            "err_512": abs(self.model.gpu_time_reduction(512) - 0.65),
        }
