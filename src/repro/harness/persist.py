"""Persistence for experiment results.

Experiments are minutes-long; saving their row data lets reports, plots, and
regression comparisons run without re-simulating.  The format is plain JSON
with a schema version, so saved results stay readable as the library evolves.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from ..errors import ConfigError
from .experiments import ExperimentResult

__all__ = ["save_result", "load_result", "save_all", "load_all"]

_SCHEMA = 1


def _to_dict(result: ExperimentResult) -> dict:
    return {
        "schema": _SCHEMA,
        "eid": result.eid,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": dict(result.notes),
        "figures": list(result.figures),
    }


def _from_dict(data: dict) -> ExperimentResult:
    if data.get("schema") != _SCHEMA:
        raise ConfigError(
            f"unsupported experiment-result schema {data.get('schema')!r}"
        )
    return ExperimentResult(
        eid=data["eid"],
        title=data["title"],
        headers=list(data["headers"]),
        rows=[tuple(row) for row in data["rows"]],
        notes=dict(data["notes"]),
        figures=list(data.get("figures", [])),
    )


def save_result(result: ExperimentResult, path: str | Path) -> None:
    """Write one result as JSON."""
    Path(path).write_text(
        json.dumps(_to_dict(result), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_result(path: str | Path) -> ExperimentResult:
    """Read a result written by :func:`save_result`."""
    return _from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def save_all(results: List[ExperimentResult], directory: str | Path) -> List[Path]:
    """Save every result as ``<eid>.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for result in results:
        path = directory / f"{result.eid}.json"
        save_result(result, path)
        paths.append(path)
    return paths


def load_all(directory: str | Path) -> List[ExperimentResult]:
    """Load every ``*.json`` result under ``directory``, sorted by eid."""
    directory = Path(directory)
    results = [load_result(p) for p in sorted(directory.glob("*.json"))]
    return sorted(results, key=lambda r: (len(r.eid), r.eid))
