"""Persistence for experiment results.

Experiments are minutes-long; saving their row data lets reports, plots, and
regression comparisons run without re-simulating.  The format is plain JSON
with a schema version, so saved results stay readable as the library evolves.

:func:`result_to_dict` / :func:`result_from_dict` expose the schema itself:
the campaign job store (:mod:`repro.campaign.store`) records exactly these
payloads, so ``campaign report`` and the file-based workflow read one format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from ..errors import ConfigError
from .experiments import ExperimentResult

__all__ = [
    "SCHEMA_VERSION",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_all",
    "load_all",
]

#: current experiment-result schema version (bump on incompatible change)
SCHEMA_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """The JSON-able form of one result (schema-versioned)."""
    return {
        "schema": SCHEMA_VERSION,
        "eid": result.eid,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": dict(result.notes),
        "figures": list(result.figures),
    }


def result_from_dict(data: dict, source: str = "result") -> ExperimentResult:
    """Rebuild a result from :func:`result_to_dict` output.

    Raises :class:`ConfigError` — never ``KeyError`` — on files from a
    different schema version or with missing/malformed fields, so callers
    can distinguish "bad file" from a library bug.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"{source}: expected a JSON object, got {type(data).__name__}")
    found = data.get("schema")
    if found != SCHEMA_VERSION:
        raise ConfigError(
            f"{source}: unsupported experiment-result schema {found!r} "
            f"(this library reads schema {SCHEMA_VERSION}; a newer version "
            "of repro probably wrote this file)"
        )
    try:
        return ExperimentResult(
            eid=data["eid"],
            title=data["title"],
            headers=list(data["headers"]),
            rows=[tuple(row) for row in data["rows"]],
            notes=dict(data["notes"]),
            figures=list(data.get("figures", [])),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"{source}: malformed experiment-result payload: {exc!r}") from exc


def save_result(result: ExperimentResult, path: str | Path) -> None:
    """Write one result as JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_result(path: str | Path) -> ExperimentResult:
    """Read a result written by :func:`save_result`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: not valid JSON: {exc}") from exc
    return result_from_dict(data, source=str(path))


def save_all(results: List[ExperimentResult], directory: str | Path) -> List[Path]:
    """Save every result as ``<eid>.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for result in results:
        path = directory / f"{result.eid}.json"
        save_result(result, path)
        paths.append(path)
    return paths


def load_all(directory: str | Path) -> List[ExperimentResult]:
    """Load every ``*.json`` result under ``directory``, sorted by eid."""
    directory = Path(directory)
    results = [load_result(p) for p in sorted(directory.glob("*.json"))]
    return sorted(results, key=lambda r: (len(r.eid), r.eid))
