"""Shared experiment-execution helpers.

Experiments compose three runner primitives:

* :func:`run_cosim` — one full co-simulation from a
  :class:`~repro.core.config.TargetConfig`;
* :func:`run_isolated` — a network alone under a traffic generator (the
  vacuum methodology);
* :func:`sweep_injection` — the classic load–latency curve.

``run_cosim`` results are memoized per process keyed on the configuration,
because several experiments share runs (E3/E4 reuse the same sweeps) and
co-simulations are the expensive primitive.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.config import TargetConfig, build_cosim
from ..core.cosim import CoSimResult
from ..errors import ConfigError
from ..noc.config import NocConfig
from ..noc.network import CycleNetwork
from ..noc.stats import NetworkStats
from ..noc.topology import Topology
from ..noc_gpu.simd_network import SimdNetwork
from ..workloads.traces import TraceRecorder

__all__ = [
    "run_cosim",
    "run_cosim_traced",
    "make_network",
    "run_isolated",
    "sweep_injection",
    "clear_run_cache",
    "set_check_invariants",
]

_cache: Dict[Tuple, CoSimResult] = {}

#: process-wide default for installing the runtime invariant checker on
#: every co-simulation this module builds (set by the CLI's
#: ``--check-invariants``; experiments need no per-call plumbing).
_check_invariants_default = False


def set_check_invariants(enabled: bool) -> None:
    """Toggle invariant checking for all subsequent :func:`run_cosim` calls."""
    global _check_invariants_default
    _check_invariants_default = bool(enabled)


def _config_key(config: TargetConfig, max_cycles: Optional[int]) -> Tuple:
    return (
        _check_invariants_default,
        config.width,
        config.height,
        config.concentration,
        config.topology,
        config.routing,
        config.app,
        config.seed,
        config.scale,
        config.network_model,
        config.quantum,
        repr(config.noc),
        repr(config.cmp),
        repr(config.faults),
        config.stall_quanta,
        max_cycles,
    )


def run_cosim(
    config: TargetConfig, max_cycles: Optional[int] = None, cache: bool = True
) -> CoSimResult:
    """Build and run one co-simulation (memoized by configuration).

    When a campaign worker has opened a
    :func:`repro.resilience.checkpoint.job_checkpoint` scope, the run
    checkpoints periodically, resumes from an existing snapshot left by a
    killed previous attempt, and skips the in-process memo cache (a resumed
    attempt must actually run, and its checkpoint file must not leak into
    unrelated runs).
    """
    from ..resilience.checkpoint import active_job_checkpoint  # deferred

    key = _config_key(config, max_cycles)
    spec = active_job_checkpoint()
    if spec is None:
        if cache and key in _cache:
            return _cache[key]
        cosim = build_cosim(config, check_invariants=_check_invariants_default)
        result = cosim.run(
            **({} if max_cycles is None else {"max_cycles": max_cycles})
        )
        if cache:
            _cache[key] = result
        return result

    import os

    from ..errors import CheckpointCorruptError
    from ..resilience.checkpoint import Checkpointer, load_checkpoint

    token = repr(key)
    cosim = None
    if os.path.exists(spec.path):
        try:
            cosim = load_checkpoint(spec.path, expect_config=token)
        except CheckpointCorruptError:
            # A torn snapshot (e.g. power cut mid-write on the previous
            # attempt) costs the resume, never the job: discard it and
            # restart from cycle 0.  Determinism makes the rerun
            # byte-identical, so nothing downstream can tell.
            os.remove(spec.path)
    if cosim is None:
        cosim = build_cosim(config, check_invariants=_check_invariants_default)
    cosim.checkpointer = Checkpointer(
        spec.path, every=spec.every, config_token=token
    )
    result = cosim.run(**({} if max_cycles is None else {"max_cycles": max_cycles}))
    # A finished run owes nobody a resume point; remove it so a later job
    # reusing the path can never restore a stale simulation.
    try:
        os.remove(spec.path)
    except OSError:  # simlint: allow[swallowed-exception] — best-effort cleanup
        pass
    return result


def run_cosim_traced(
    config: TargetConfig, max_cycles: Optional[int] = None
) -> Tuple[CoSimResult, TraceRecorder, object]:
    """Run a co-simulation recording its network-message trace.

    Returns ``(result, trace_recorder, cosim)`` — the co-simulator itself is
    returned so callers can inspect the live network's own statistics (the
    component's in-context view, needed by the vacuum experiment).
    """
    cosim = build_cosim(config, check_invariants=_check_invariants_default)
    recorder = TraceRecorder(cosim._on_message)
    cosim.system.transport = recorder
    result = cosim.run(**({} if max_cycles is None else {"max_cycles": max_cycles}))
    return result, recorder, cosim


def clear_run_cache() -> None:
    _cache.clear()


# ----------------------------------------------------------------------
# Isolated (vacuum) network runs
# ----------------------------------------------------------------------
def make_network(kind: str, topo: Topology, noc: Optional[NocConfig] = None):
    """A flit-level simulator by name: ``cycle`` (OO) or ``simd``."""
    noc = noc or NocConfig()
    if kind == "cycle":
        return CycleNetwork(topo, noc)
    if kind == "simd":
        return SimdNetwork(topo, noc)
    raise ConfigError(f"unknown network kind {kind!r} (cycle|simd)")


def run_isolated(
    topo: Topology,
    traffic,
    cycles: int,
    kind: str = "cycle",
    noc: Optional[NocConfig] = None,
    drain: bool = True,
) -> NetworkStats:
    """Drive a lone network with a traffic generator; returns its stats.

    ``traffic`` is anything with ``drive(network, cycles, drain=...)`` —
    synthetic generators and matched-load trace reductions both qualify.
    """
    network = make_network(kind, topo, noc)
    traffic.drive(network, cycles, drain=drain)
    return network.stats


def sweep_injection(
    topo: Topology,
    make_traffic: Callable[[float], object],
    rates: List[float],
    cycles: int,
    kind: str = "cycle",
    noc: Optional[NocConfig] = None,
) -> List[Tuple[float, NetworkStats]]:
    """Load–latency curve: one isolated run per injection rate.

    Runs ``cycles`` of injection plus a cooldown of the same length with
    injection stopped, *without* requiring a full drain: past saturation the
    source queues grow without bound and a drain would never finish — the
    hockey-stick left in the statistics is the figure's saturated tail.
    """
    points = []
    for rate in rates:
        network = make_network(kind, topo, noc)
        traffic = make_traffic(rate)
        traffic.drive(network, cycles, drain=False)
        network.run(cycles)
        points.append((rate, network.stats))
    return points
