"""ASCII figure rendering: line charts for terminals.

The paper's evaluation figures are x/y curves (latency vs load, time vs
cores).  This module renders such series as fixed-width character plots so
the benchmark output carries actual *figures*, not only tables, without any
plotting dependency.

Example::

    chart = AsciiChart(width=60, height=12, title="latency vs load")
    chart.add_series("cycle", rates, latencies, marker="*")
    chart.add_series("fixed", rates, fixed_lats, marker="o")
    print(chart.render())
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = ["AsciiChart"]


@dataclass
class _Series:
    name: str
    xs: List[float]
    ys: List[float]
    marker: str


class AsciiChart:
    """A multi-series scatter/line chart drawn with characters.

    Points are plotted on a ``width`` x ``height`` grid with linear axes
    (log-y optional, for saturation curves spanning decades).  Rendering is
    deterministic; later series overwrite earlier ones where cells collide.
    """

    def __init__(
        self,
        width: int = 64,
        height: int = 16,
        title: str = "",
        log_y: bool = False,
    ) -> None:
        if width < 16 or height < 4:
            raise ConfigError("chart needs width >= 16 and height >= 4")
        self.width = width
        self.height = height
        self.title = title
        self.log_y = log_y
        self._series: List[_Series] = []

    def add_series(
        self,
        name: str,
        xs: Sequence[float],
        ys: Sequence[float],
        marker: Optional[str] = None,
    ) -> None:
        """Add one named series; ``marker`` defaults to cycling ``*o+x#@``."""
        if len(xs) != len(ys):
            raise ConfigError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
        if not xs:
            raise ConfigError(f"series {name!r} is empty")
        if marker is None:
            marker = "*o+x#@%&"[len(self._series) % 8]
        if len(marker) != 1:
            raise ConfigError(f"marker must be one character, got {marker!r}")
        self._series.append(_Series(name, list(xs), list(ys), marker))

    # ------------------------------------------------------------------
    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [x for s in self._series for x in s.xs]
        ys = [self._y(y) for s in self._series for y in s.ys]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def _y(self, value: float) -> float:
        if not self.log_y:
            return value
        return math.log10(max(value, 1e-9))

    def _y_label(self, grid_value: float) -> float:
        return 10.0**grid_value if self.log_y else grid_value

    def render(self) -> str:
        """Draw the chart; includes a legend and min/max axis labels."""
        if not self._series:
            raise ConfigError("chart has no series")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]
        for series in self._series:
            for x, y in zip(series.xs, series.ys):
                col = round((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
                row = round(
                    (self._y(y) - y_lo) / (y_hi - y_lo) * (self.height - 1)
                )
                grid[self.height - 1 - row][col] = series.marker

        top_label = f"{self._y_label(y_hi):.4g}"
        bottom_label = f"{self._y_label(y_lo):.4g}"
        label_width = max(len(top_label), len(bottom_label))
        lines = []
        if self.title:
            lines.append(self.title)
        for i, row in enumerate(grid):
            if i == 0:
                label = top_label.rjust(label_width)
            elif i == self.height - 1:
                label = bottom_label.rjust(label_width)
            else:
                label = " " * label_width
            lines.append(f"{label} |{''.join(row)}")
        axis = " " * label_width + " +" + "-" * self.width
        lines.append(axis)
        x_left = f"{x_lo:.4g}"
        x_right = f"{x_hi:.4g}"
        pad = self.width - len(x_left) - len(x_right)
        lines.append(
            " " * (label_width + 2) + x_left + " " * max(1, pad) + x_right
        )
        legend = "   ".join(f"{s.marker} {s.name}" for s in self._series)
        lines.append(" " * (label_width + 2) + legend)
        return "\n".join(lines)
