"""Experiment harness: runners, error metrics, host-time accounting, and the
per-experiment entry points that regenerate every table and figure."""

from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e9,
    run_e10,
    run_e11,
    run_table1,
)
from .figures import AsciiChart
from .persist import load_all, load_result, save_all, save_result
from .regress import RegressionReport, compare, compare_many
from .metrics import (
    distribution_distance,
    error_reduction,
    mean_error_reduction,
    relative_error,
    summarize,
)
from .report import format_kv, format_percent, format_table
from .runner import (
    clear_run_cache,
    make_network,
    run_cosim,
    run_cosim_traced,
    run_isolated,
    sweep_injection,
)
from .timing import HostTimingModel, measured_reduction, measured_split

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "run_table1",
    "run_e1",
    "run_e2",
    "run_e3",
    "run_e4",
    "run_e5",
    "run_e6",
    "run_e7",
    "run_e8",
    "run_e9",
    "run_e10",
    "run_e11",
    "AsciiChart",
    "RegressionReport",
    "compare",
    "compare_many",
    "save_result",
    "load_result",
    "save_all",
    "load_all",
    "relative_error",
    "error_reduction",
    "mean_error_reduction",
    "distribution_distance",
    "summarize",
    "format_table",
    "format_kv",
    "format_percent",
    "run_cosim",
    "run_cosim_traced",
    "run_isolated",
    "sweep_injection",
    "make_network",
    "clear_run_cache",
    "HostTimingModel",
    "measured_reduction",
    "measured_split",
]
