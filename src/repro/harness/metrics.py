"""Error metrics used by the accuracy experiments.

The paper's headline metric is *packet latency error*: how far a network
model's latency (as experienced by the full system) is from the
cycle-accurate ground truth, and how much reciprocal abstraction reduces
that error relative to the abstract model (69% on average in the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..util import geometric_mean

__all__ = [
    "relative_error",
    "error_reduction",
    "mean_error_reduction",
    "distribution_distance",
    "summarize",
]


def relative_error(measured: float, truth: float) -> float:
    """|measured - truth| / truth (truth must be nonzero)."""
    if truth == 0:
        raise ValueError("ground truth is zero; relative error undefined")
    return abs(measured - truth) / abs(truth)


def error_reduction(baseline_error: float, improved_error: float) -> float:
    """Fraction of the baseline error removed (1.0 = perfect, <0 = worse)."""
    if baseline_error == 0:
        return 0.0 if improved_error == 0 else float("-inf")
    return 1.0 - improved_error / baseline_error


def mean_error_reduction(
    pairs: Iterable[Tuple[float, float]], geometric: bool = False
) -> float:
    """Average error reduction over (baseline_error, improved_error) pairs.

    The arithmetic mean of per-workload reductions is the conventional
    "reduces error by X% on average"; the geometric variant is stricter and
    only defined when every workload improves.
    """
    reductions = [error_reduction(b, i) for b, i in pairs]
    if not reductions:
        raise ValueError("no error pairs supplied")
    if geometric:
        return geometric_mean(max(r, 0.0) for r in reductions)
    return sum(reductions) / len(reductions)


def distribution_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Kolmogorov–Smirnov distance between two latency samples.

    Used to show that vacuum simulation distorts the latency *distribution*
    even when means happen to be close.
    """
    if not len(a) or not len(b):
        raise ValueError("empty sample")
    xs = np.sort(np.asarray(a, dtype=float))
    ys = np.sort(np.asarray(b, dtype=float))
    grid = np.union1d(xs, ys)
    cdf_a = np.searchsorted(xs, grid, side="right") / len(xs)
    cdf_b = np.searchsorted(ys, grid, side="right") / len(ys)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """mean / p50 / p95 / max of a sample (0s when empty)."""
    if not len(values):
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
