"""``python -m repro cluster`` — run and inspect the sharded service.

Examples::

    # a 3-node ring on one host (each node gets its own database)
    python -m repro cluster start --node-id a --port 9301 --db a.db \\
        --peers 127.0.0.1:9302,127.0.0.1:9303
    python -m repro cluster start --node-id b --port 9302 --db b.db \\
        --peers 127.0.0.1:9301,127.0.0.1:9303
    python -m repro cluster start --node-id c --port 9303 --db c.db \\
        --peers 127.0.0.1:9301,127.0.0.1:9302

    # any node answers for the whole ring
    python -m repro cluster status --port 9302
    python -m repro cluster route --nodes a,b,c deadbeef01234567 ...

``start`` runs one node in the foreground (SIGTERM drains it, exactly
like ``serve start``).  ``status`` prints a live node's ring and
membership view.  ``route`` is offline: given a node set it prints each
key's owner and preference list, and with ``--without NODE`` also the
fraction of the keys that would move if that node left — the bounded
K/N remap consistent hashing exists for.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from ..errors import (
    ClusterError,
    ConfigError,
    ServeError,
    StoreCorruptError,
    StoreIOError,
)
from ..serve.client import ServeClient
from ..serve.server import ServeConfig
from .node import ClusterConfig, ClusterNode
from .ring import DEFAULT_VNODES, HashRing, remap_fraction

__all__ = ["build_parser", "main"]

#: default base port — one above serve's so a lone node of each coexists
DEFAULT_PORT = 9301


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Sharded multi-node simulation service: consistent-hash "
        "routing, peer cache-fill, work-stealing.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser("start", help="run one cluster node in the foreground")
    start.add_argument("--node-id", required=True, help="this node's ring identity")
    start.add_argument("--host", default="127.0.0.1")
    start.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="listen port; 0 picks a free one (default: %(default)s)",
    )
    start.add_argument(
        "--db", default=None,
        help="this node's result store (default: <node-id>.db)",
    )
    start.add_argument(
        "--peers", default="",
        help="comma-separated seed addresses host:port of the other nodes",
    )
    start.add_argument("--workers", type=int, default=2)
    start.add_argument("--max-queue", type=int, default=64)
    start.add_argument("--batch-max", type=int, default=8)
    start.add_argument("--retries", type=int, default=0)
    start.add_argument("--timeout", type=float, default=None)
    start.add_argument(
        "--engine", default="auto", choices=["auto", "oo", "batched"],
    )
    start.add_argument(
        "--vnodes", type=int, default=DEFAULT_VNODES,
        help="virtual nodes per physical node (default: %(default)s)",
    )
    start.add_argument(
        "--gossip-interval", type=float, default=0.5, metavar="S",
        help="seconds between gossip/steal agent ticks",
    )
    start.add_argument(
        "--fail-after", type=float, default=5.0, metavar="S",
        help="declare a silent peer dead after this many seconds",
    )
    start.add_argument(
        "--steal-batch", type=int, default=4,
        help="max jobs taken per work-steal request",
    )
    start.add_argument(
        "--fill-peers", type=int, default=2,
        help="ring nodes probed per cache-fill miss (0 disables fill)",
    )

    status = sub.add_parser("status", help="a live node's ring + health view")
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=DEFAULT_PORT)

    route = sub.add_parser(
        "route", help="offline placement: who owns which keys on a given ring"
    )
    route.add_argument(
        "--nodes", required=True,
        help="comma-separated node ids forming the ring",
    )
    route.add_argument(
        "--vnodes", type=int, default=DEFAULT_VNODES,
    )
    route.add_argument(
        "--without", default=None, metavar="NODE",
        help="also report the remap fraction if NODE left the ring",
    )
    route.add_argument("keys", nargs="+", help="job ids (or any keys) to place")
    return parser


def _cmd_start(args: argparse.Namespace) -> int:
    peers = tuple(part.strip() for part in args.peers.split(",") if part.strip())
    serve = ServeConfig(
        host=args.host,
        port=args.port,
        db=args.db if args.db is not None else f"{args.node_id}.db",
        workers=args.workers,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
        retries=args.retries,
        timeout=args.timeout,
        engine=args.engine,
    )
    config = ClusterConfig(
        node_id=args.node_id,
        serve=serve,
        peers=peers,
        vnodes=args.vnodes,
        gossip_interval_s=args.gossip_interval,
        fail_after_s=args.fail_after,
        steal_batch=args.steal_batch,
        fill_peers=args.fill_peers,
    )
    node = ClusterNode(config)
    node.start()
    print(
        f"repro cluster: node {config.node_id} listening on "
        f"{serve.host}:{node.port} (db={serve.db}, "
        f"peers={','.join(peers) or 'none'})",
        file=sys.stderr,
        flush=True,
    )
    code = node.run_forever()
    print(f"repro cluster: node {config.node_id} drained and stopped",
          file=sys.stderr)
    return code


def _print_json(payload: Any) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServeClient(host=args.host, port=args.port, client_id="cluster-cli")
    try:
        _print_json(client.health())
    finally:
        client.close()
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    node_ids = [part.strip() for part in args.nodes.split(",") if part.strip()]
    if not node_ids:
        raise ConfigError("--nodes must name at least one node")
    ring = HashRing(node_ids, vnodes=args.vnodes)
    placement = {
        key: {
            "owner": ring.owner(key),
            "preference": ring.preference(key, min(3, len(ring))),
        }
        for key in args.keys
    }
    body: dict = {"ring": ring.describe(), "placement": placement}
    if args.without is not None:
        if args.without not in ring:
            raise ConfigError(f"--without {args.without!r} is not in --nodes")
        remaining = [node for node in node_ids if node != args.without]
        if not remaining:
            raise ConfigError("--without would empty the ring")
        after = HashRing(remaining, vnodes=args.vnodes)
        body["without"] = {
            "node": args.without,
            "remap_fraction": remap_fraction(ring, after, args.keys),
        }
    _print_json(body)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "start":
            return _cmd_start(args)
        if args.command == "status":
            return _cmd_status(args)
        return _cmd_route(args)
    except (
        ClusterError, ConfigError, ServeError, StoreCorruptError, StoreIOError,
    ) as exc:
        print(f"cluster: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
