"""repro.cluster — the sharded, multi-node face of the serve layer.

N serve nodes run as one service: a consistent-hash ring over content-
addressed job ids decides which node computes what; any node accepts any
request and redirects to the owner; lookup misses fill from ring peers;
idle nodes steal queued work; gossip membership drives ring rebalancing.
Everything the single-node daemon promises — byte-identical replay,
durable admission, exactly-once completion — holds per ring, because job
identity is content, not location.

See ``docs/cluster.md`` for the architecture and the guarantees, and
``python -m repro cluster --help`` for the CLI.
"""

from .membership import MembershipTable, NodeInfo
from .node import ClusterConfig, ClusterNode
from .peer import PeerClient, PeerResult
from .ring import DEFAULT_VNODES, HashRing, remap_fraction, ring_position
from .router import Router
from .storeapi import PeerBackedStore, ResultStoreAPI

__all__ = [
    "ClusterConfig",
    "ClusterNode",
    "DEFAULT_VNODES",
    "HashRing",
    "MembershipTable",
    "NodeInfo",
    "PeerBackedStore",
    "PeerClient",
    "PeerResult",
    "ResultStoreAPI",
    "Router",
    "remap_fraction",
    "ring_position",
]
