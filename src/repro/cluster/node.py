"""``ClusterNode`` — one serve daemon participating in a sharded ring.

A cluster node *is* a :class:`~repro.serve.server.ServeDaemon` — same
frontier, scheduler, pool, cache, and durability contract — with four
cluster behaviours layered on through the daemon's subclass hooks:

* **routing** — every node accepts every request; a cache-missed
  submission whose ring owner is another live node answers ``307`` with
  the owner's submit URL (clients follow it transparently);
* **peer cache-fill** — the cache's durable tier is a
  :class:`~repro.cluster.storeapi.PeerBackedStore`: a lookup of a job id
  this node has never seen probes the ring preference list (owner, then
  successors) and adopts a found result *verbatim* before answering, so
  a repeat submission to the wrong node is still a zero-compute hit;
* **work-stealing** — an idle node asks the most-loaded peer for queued
  jobs, runs them locally, and pushes the results back to the victim
  under content identity; the victim keeps the jobs' ``pending`` rows
  and re-admits them after a deadline, so a thief dying mid-steal delays
  work but never loses it, and a double execution commits byte-identical
  payloads (``adopt_done`` keeps the first);
* **gossip membership** — a background agent thread heartbeats peers,
  merges tables, sweeps the dead, and rebuilds the ring (one *rebalance
  event* per change).

Cluster RPC rides the same HTTP server under ``/cluster/v1``::

    GET  /cluster/v1/ring          ring + membership view (diagnostics)
    POST /cluster/v1/heartbeat     gossip exchange (tables cross)
    GET  /cluster/v1/results/<id>  local-store result for peer fill
    POST /cluster/v1/results/<id>  adopt a pushed (stolen) result
    POST /cluster/v1/steal         hand queued jobs to an idle thief

``kill()`` is the chaos audit's in-process ``kill -9``: scheduler
crash-stopped (workers SIGKILLed, no drain hand-back), agent and HTTP
loop stopped abruptly, store rows left exactly as the crash found them.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..campaign.store import ResultStore
from ..errors import ClusterError, ConfigError
from ..serve.metrics import PREFIX
from ..serve.protocol import API_PREFIX, Request
from ..serve.queuein import QueueFull, QueuedJob
from ..serve.server import ServeConfig, ServeDaemon
from .membership import MembershipTable, NodeInfo
from .peer import CLUSTER_PREFIX, PeerClient, PeerResult
from .ring import DEFAULT_VNODES
from .router import Router
from .storeapi import PeerBackedStore

__all__ = ["ClusterConfig", "ClusterNode"]

#: metric family prefix for everything cluster-level
CPREFIX = f"{PREFIX}_cluster"


@dataclass(frozen=True)
class ClusterConfig:
    """One node's cluster identity and tuning, over its serve config."""

    node_id: str
    serve: ServeConfig = field(default_factory=ServeConfig)
    #: seed addresses ("host:port") used to bootstrap gossip
    peers: Tuple[str, ...] = ()
    vnodes: int = DEFAULT_VNODES
    gossip_interval_s: float = 0.5
    #: a peer whose freshness stalls this long is declared dead
    fail_after_s: float = 5.0
    #: ring nodes probed per cache-fill miss (owner + successors)
    fill_peers: int = 2
    #: max jobs taken per steal request
    steal_batch: int = 4
    #: a lent (stolen-from-us) job still unfinished after this long is
    #: re-admitted locally — the thief-died safety net
    re_admit_after_s: float = 15.0
    peer_timeout_s: float = 2.0

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ConfigError("cluster node_id must be non-empty")
        if self.vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {self.vnodes}")
        for knob in ("gossip_interval_s", "fail_after_s", "re_admit_after_s",
                     "peer_timeout_s"):
            if getattr(self, knob) <= 0:
                raise ConfigError(f"{knob} must be positive")
        if self.fill_peers < 0:
            raise ConfigError(f"fill_peers must be >= 0, got {self.fill_peers}")
        if self.steal_batch < 1:
            raise ConfigError(f"steal_batch must be >= 1, got {self.steal_batch}")
        for address in self.peers:
            _split_address(address)  # validates


def _split_address(address: str) -> Tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ConfigError(f"peer address must be host:port, got {address!r}")
    return host, int(port)


class _Lent:
    """A job handed to a thief, remembered for the re-admit safety net."""

    __slots__ = ("spec", "client", "thief", "deadline")

    def __init__(self, spec, client, thief, deadline) -> None:
        self.spec = spec
        self.client = client
        self.thief = thief
        self.deadline = deadline


class ClusterNode(ServeDaemon):
    """A serve daemon that shards, fills, and steals across a ring."""

    def __init__(self, cluster: ClusterConfig) -> None:
        self.cluster = cluster
        # The durable tier is built here (not by the cache) so the node
        # can bump its generation and wrap it peer-backed first.
        local = ResultStore(cluster.serve.db, cross_thread=True)
        generation = int(local.get_meta("cluster_generation") or "0") + 1
        local.set_meta("cluster_generation", str(generation))
        self.generation = generation
        self._local = local
        self._peer_store = PeerBackedStore(local, fill=self._peer_fill)
        super().__init__(cluster.serve, store=self._peer_store)

        self_info = NodeInfo(
            node_id=cluster.node_id,
            host=cluster.serve.host,
            port=cluster.serve.port,  # patched after bind if 0
            generation=generation,
        )
        self.membership = MembershipTable(self_info, fail_after_s=cluster.fail_after_s)
        self.router = Router(self.membership, vnodes=cluster.vnodes)
        self.peer_client = PeerClient(timeout_s=cluster.peer_timeout_s)
        self._seeds = [_split_address(address) for address in cluster.peers]
        #: stolen-by-us jobs awaiting push-back: job_id -> victim node id
        self._stolen: Dict[str, str] = {}
        #: stolen-from-us jobs awaiting completion or re-admission
        self._lent: Dict[str, _Lent] = {}
        self._cluster_lock = threading.Lock()
        self._agent_stop = threading.Event()
        self._agent: Optional[threading.Thread] = None
        self._killed = False
        self.steals_taken = 0
        self.steals_served = 0
        self._register_cluster_metrics()

    def _register_cluster_metrics(self) -> None:
        register = self.metrics.register_gauge
        register(
            f"{CPREFIX}_alive_nodes",
            "Live ring members from this node's view (self included).",
            lambda: float(len(self.membership.alive_ids())),
        )
        register(
            f"{CPREFIX}_rebalances",
            "Ring rebuilds caused by membership changes.",
            lambda: float(self.router.rebalances),
        )
        register(
            f"{CPREFIX}_peer_fill_hits",
            "Lookup misses answered by adopting a ring peer's result.",
            lambda: float(self._peer_store.fill_hits),
        )
        register(
            f"{CPREFIX}_peer_fill_misses",
            "Lookup misses no ring peer could answer.",
            lambda: float(self._peer_store.fill_misses),
        )
        register(
            f"{CPREFIX}_lent_jobs",
            "Jobs currently lent to thieves (re-admit safety net size).",
            lambda: float(len(self._lent)),
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        super().start()
        # A port-0 config only learns its real port at bind time; gossip
        # must advertise the real one.
        self.membership.self_info.port = int(self.port or 0)
        self._agent = threading.Thread(
            target=self._agent_loop, name=f"repro-cluster-{self.cluster.node_id}",
            daemon=True,
        )
        self._agent.start()

    def stop(self) -> None:
        self._agent_stop.set()
        if self._agent is not None:
            self._agent.join(timeout=10.0)
            self._agent = None
        super().stop()

    def kill(self) -> None:
        """Die like ``kill -9`` (the cluster chaos audit's node death).

        No drain, no hand-back: workers are SIGKILLed, the agent and HTTP
        loop stop abruptly, and store rows stay exactly as the crash left
        them — ``running`` rows and all.  Restart recovery on the same
        database is what reclaims the work, same as a real process death.
        """
        self._killed = True
        self._agent_stop.set()
        self._draining.set()
        if self._agent is not None:
            self._agent.join(timeout=10.0)
            self._agent = None
        self.scheduler.crash_stop()
        loop, done = self._loop, self._loop_done
        if loop is not None and done is not None:
            try:
                loop.call_soon_threadsafe(done.set)
            except RuntimeError:  # simlint: allow[swallowed-exception]
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        # In-process stand-in for process death: the SQLite handle must be
        # released so a restarted node can own the same file.  Closing a
        # connection commits nothing extra — every transition committed on
        # its own call — so the rows are crash-faithful.
        self.cache.close()
        self._stopped.set()

    # -- peer cache-fill ------------------------------------------------
    def _peer_fill(self, job_id: str) -> Optional[PeerResult]:
        """The PeerBackedStore miss probe: ask the ring, owner first."""
        if self.cluster.fill_peers == 0 or len(self.membership.alive_ids()) < 2:
            return None
        try:
            targets = self.router.fill_targets(job_id, count=self.cluster.fill_peers)
        except ClusterError:
            return None
        for target in targets:
            try:
                result = self.peer_client.fetch_result(target, job_id)
            except ClusterError:
                continue
            if result is not None:
                return result
        return None

    # -- routing hooks ---------------------------------------------------
    def _redirect_for(self, spec):
        """307 a cache-missed submission to its ring owner, if not us."""
        owner = self.router.owner_info(spec.job_id)
        if owner is None or owner.node_id == self.cluster.node_id:
            return None
        self.metrics.inc(
            f"{CPREFIX}_redirects_total",
            "Submissions 307-redirected to their ring owner.",
        )
        return 307, {
            "job_id": spec.job_id,
            "owner": owner.node_id,
            "redirect": owner.address,
        }, None, {"Location": f"http://{owner.address}{API_PREFIX}/jobs"}

    def _lookup_redirect(self, job_id: str, suffix: str = ""):
        """307 a status/result miss to the ring owner, if not us.

        A poller that submitted through a non-owner (and was redirected)
        keeps polling the node it connected to; without this the job is
        invisible here until it is *done* and peer fill can adopt it.
        """
        owner = self.router.owner_info(job_id)
        if owner is None or owner.node_id == self.cluster.node_id:
            return None
        self.metrics.inc(
            f"{CPREFIX}_redirects_total",
            "Submissions 307-redirected to their ring owner.",
        )
        return 307, {
            "job_id": job_id,
            "owner": owner.node_id,
            "redirect": owner.address,
        }, None, {
            "Location":
                f"http://{owner.address}{API_PREFIX}/jobs/{job_id}{suffix}",
        }

    def _healthz_extra(self) -> Dict[str, Any]:
        return {
            "cluster": {
                "node_id": self.cluster.node_id,
                "generation": self.generation,
                "ring": self.router.describe(),
                "membership": self.membership.describe(),
                "peer_fill": {
                    "hits": self._peer_store.fill_hits,
                    "misses": self._peer_store.fill_misses,
                },
                "steals": {
                    "taken": self.steals_taken,
                    "served": self.steals_served,
                },
            }
        }

    # -- cluster endpoints ----------------------------------------------
    def _route_extra(self, request: Request, method: str, path: str):
        if not path.startswith(CLUSTER_PREFIX):
            return None
        tail = path[len(CLUSTER_PREFIX):]
        if method == "GET" and tail == "/ring":
            body = self.router.describe()
            body["membership"] = self.membership.describe()
            return 200, body, None, None
        if method == "POST" and tail == "/heartbeat":
            return self._handle_heartbeat(request)
        if tail.startswith("/results/") and "/" not in tail[len("/results/"):]:
            job_id = tail[len("/results/"):]
            if method == "GET":
                return self._handle_result_fetch(job_id)
            if method == "POST":
                return self._handle_result_push(job_id, request)
        if method == "POST" and tail == "/steal":
            return self._handle_steal(request)
        return None

    def _handle_heartbeat(self, request: Request):
        body = request.json()
        rows = [NodeInfo.from_wire(row) for row in body.get("rows", [])]
        self.membership.merge(rows)
        if self.router.rebuild():
            self._note_rebalance()
        return 200, {"rows": self.membership.to_wire()}, None, None

    def _handle_result_fetch(self, job_id: str):
        """Peer fill, victim side: the *local* store only (no recursion)."""
        try:
            row = self._local.get_job(job_id)
        except ConfigError:
            return 404, {"error": f"unknown job id {job_id!r}"}, None, None
        if row.status != "done" or row.payload is None:
            return 404, {"error": f"job {job_id} is {row.status}, not done"}, None, None
        result = PeerResult(
            spec=row.job_spec(),
            payload_text=row.payload,
            wall_s=row.wall_s or 0.0,
            engine=row.engine,
            kernel_version=row.kernel_version,
        )
        self.metrics.inc(
            f"{CPREFIX}_fills_served_total",
            "Results served to peers' cache-fill probes.",
        )
        return 200, result.to_wire(), None, None

    def _handle_result_push(self, job_id: str, request: Request):
        """A thief handing back a stolen job's result (adopt verbatim)."""
        result = PeerResult.from_wire(request.json())
        if result.spec.job_id != job_id:
            return 400, {
                "error": f"pushed result is for {result.spec.job_id}, "
                f"path says {job_id} (content-identity violation)"
            }, None, None
        adopted = self.cache.adopt(
            result.spec, result.payload_text, result.wall_s,
            engine=result.engine, kernel_version=result.kernel_version,
        )
        with self._cluster_lock:
            self._lent.pop(job_id, None)
        self.metrics.inc(
            f"{CPREFIX}_results_pushed_total",
            "Stolen-job results pushed back by thieves.",
            adopted=str(bool(adopted)).lower(),
        )
        return 200, {"adopted": adopted}, None, None

    def _handle_steal(self, request: Request):
        """Victim side of work-stealing: hand queued jobs to a thief."""
        body = request.json()
        thief = str(body.get("thief") or "unknown")
        try:
            max_jobs = int(body.get("max_jobs") or 1)
        except (TypeError, ValueError):
            return 400, {"error": "max_jobs must be an integer"}, None, None
        if self._draining.is_set():
            return 200, {"jobs": []}, None, None
        taken = self.queue.steal(max(1, min(max_jobs, self.cluster.steal_batch)))
        deadline = time.monotonic() + self.cluster.re_admit_after_s
        with self._cluster_lock:
            for entry in taken:
                self._lent[entry.job_id] = _Lent(
                    entry.spec, entry.client, thief, deadline
                )
        if taken:
            self.steals_served += len(taken)
            self.metrics.inc(
                f"{CPREFIX}_steals_served_total",
                "Queued jobs handed to idle thieves.",
                amount=float(len(taken)),
            )
        return 200, {"jobs": [entry.spec.to_dict() for entry in taken]}, None, None

    # -- the agent loop --------------------------------------------------
    def _agent_loop(self) -> None:
        """Gossip, sweep, rebuild, steal, push back, re-admit — forever."""
        while not self._agent_stop.wait(self.cluster.gossip_interval_s):
            try:
                self._agent_tick()
            except Exception:  # noqa: BLE001 - the agent must survive anything
                self.metrics.inc(
                    f"{CPREFIX}_agent_errors_total",
                    "Unexpected errors swallowed by the cluster agent loop.",
                )

    def _agent_tick(self) -> None:
        self.membership.bump_self(
            queue_depth=self.queue.depth,
            in_flight=len(self.scheduler.running_ids()),
        )
        self._gossip_round()
        self.membership.sweep()
        if self.router.rebuild():
            self._note_rebalance()
        self._push_back_stolen()
        self._re_admit_lent()
        self._maybe_steal()

    def _gossip_round(self) -> None:
        rows = self.membership.to_wire()
        known = {peer.address for peer in self.membership.peers()}
        targets = list(self.membership.peers())
        # Seed addresses we have not yet learned a row for (bootstrap).
        for host, port in self._seeds:
            if f"{host}:{port}" not in known:
                targets.append(NodeInfo(node_id=f"seed@{host}:{port}",
                                        host=host, port=port))
        for target in targets:
            try:
                merged = self.peer_client.heartbeat(target, rows)
            except ClusterError:
                continue  # unreachable; the sweep decides its fate
            self.membership.merge(merged)

    def _note_rebalance(self) -> None:
        self.metrics.inc(
            f"{CPREFIX}_rebalance_events_total",
            "Membership changes that rebuilt the ring.",
        )

    def _push_back_stolen(self) -> None:
        """Ship finished stolen jobs' results home, under content identity."""
        with self._cluster_lock:
            pending = list(self._stolen.items())
        for job_id, victim_id in pending:
            try:
                row = self._local.get_job(job_id)
            except ConfigError:
                continue  # not even admitted yet
            if row.status != "done" or row.payload is None:
                continue
            victim = self.membership.get(victim_id)
            if victim is None:
                # The victim died; our store has the result and ring fill
                # can serve it — nothing left to push.
                with self._cluster_lock:
                    self._stolen.pop(job_id, None)
                continue
            result = PeerResult(
                spec=row.job_spec(), payload_text=row.payload,
                wall_s=row.wall_s or 0.0, engine=row.engine,
                kernel_version=row.kernel_version,
            )
            try:
                self.peer_client.push_result(victim, result)
            except ClusterError:
                continue  # retry next tick
            with self._cluster_lock:
                self._stolen.pop(job_id, None)

    def _re_admit_lent(self) -> None:
        """The thief-died safety net: reclaim lent jobs past deadline."""
        now = time.monotonic()
        with self._cluster_lock:
            due = [
                (job_id, lent) for job_id, lent in self._lent.items()
                if lent.deadline <= now
            ]
        for job_id, lent in due:
            try:
                row = self._local.get_job(job_id)
            except ConfigError:
                row = None
            if row is not None and row.status == "done":
                with self._cluster_lock:
                    self._lent.pop(job_id, None)
                continue
            try:
                self.queue.offer(QueuedJob(spec=lent.spec, client=lent.client))
            except QueueFull:
                lent.deadline = now + self.cluster.re_admit_after_s
                continue
            with self._cluster_lock:
                self._lent.pop(job_id, None)
            self.metrics.inc(
                f"{CPREFIX}_re_admitted_total",
                "Lent jobs re-admitted after their thief went quiet.",
            )

    def _maybe_steal(self) -> None:
        """Thief side: an idle node pulls queued work from a loaded peer."""
        if self._draining.is_set() or self.queue.depth > 0:
            return
        if len(self.scheduler.running_ids()) >= self.config.workers:
            return
        victims = [peer for peer in self.membership.peers() if peer.queue_depth > 0]
        if not victims:
            return
        victim = max(victims, key=lambda peer: (peer.queue_depth, peer.node_id))
        try:
            specs = self.peer_client.steal(
                victim, self.cluster.steal_batch, self.cluster.node_id
            )
        except ClusterError:
            return
        admitted = 0
        for spec in specs:
            with self._cluster_lock:
                self._stolen[spec.job_id] = victim.node_id
            if not self.cache.admit(spec):
                continue  # already done here; push-back alone remains
            try:
                if self.queue.offer(QueuedJob(spec=spec, client=f"steal:{victim.node_id}")):
                    admitted += 1
            except QueueFull:
                # Our queue filled while stealing; the victim's pending
                # row (plus its re-admit deadline) keeps the job safe.
                self.cache.retract(spec.job_id)
                with self._cluster_lock:
                    self._stolen.pop(spec.job_id, None)
        if specs:
            self.steals_taken += admitted
            self.metrics.inc(
                f"{CPREFIX}_steals_total",
                "Jobs stolen from loaded peers and run locally.",
                amount=float(admitted),
            )
