"""The consistent-hash ring: content-hashed job ids → owning nodes.

Every node id is placed on a 64-bit circle at ``vnodes`` positions (its
*virtual nodes*), each position the SHA-256 of ``"{node_id}#{index}"``.
A job id is hashed onto the same circle and owned by the first virtual
node clockwise from it.  Two properties make this the right router for a
sharded result cache:

* **bounded remap** — adding or removing one of N nodes moves only the
  keys that node owns (≈ K/N of them); every other key keeps its owner,
  so a membership change invalidates almost none of the ring's placement
  (the property the join/leave tests pin down exactly);
* **smoothing** — virtual nodes break one node's arc into ``vnodes``
  small arcs scattered around the circle, so per-node load stays near
  K/N instead of tracking one arbitrary arc length.

The ring is immutable and cheap to build (sorted list + ``bisect``);
membership changes rebuild it from the new alive set rather than
patching it in place — rebuilds are counted as *rebalance events* by the
node's metrics.

Everything here is a pure function of the node set: no clocks, no
randomness, same ring on every node that agrees on membership.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ClusterError

__all__ = ["HashRing", "ring_position"]

#: virtual nodes per physical node — enough to hold per-node load within
#: a few tens of percent of K/N at small cluster sizes (see the skew test)
DEFAULT_VNODES = 64

_SPACE_BITS = 64


def ring_position(key: str) -> int:
    """A key's position on the 64-bit ring circle (SHA-256 derived)."""
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
    return int(digest[: _SPACE_BITS // 4], 16)


class HashRing:
    """An immutable consistent-hash ring over a set of node ids.

    Args:
        nodes: the participating node ids (deduplicated, order-free —
            every member that agrees on the set builds the same ring).
        vnodes: virtual nodes per physical node (>= 1).
    """

    def __init__(self, nodes: Iterable[str], vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.nodes: Tuple[str, ...] = tuple(sorted(set(nodes)))
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                points.append((ring_position(f"{node}#{index}"), node))
        # Position collisions across nodes are astronomically unlikely in
        # a 64-bit space; sorting by (position, node) keeps even that
        # case deterministic on every member.
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    @property
    def empty(self) -> bool:
        return not self.nodes

    # -- lookups --------------------------------------------------------
    def owner(self, key: str) -> str:
        """The node owning ``key`` (first virtual node clockwise)."""
        if self.empty:
            raise ClusterError("hash ring is empty (no alive nodes)")
        index = bisect.bisect_right(self._positions, ring_position(key))
        if index == len(self._points):  # wrap past 2**64
            index = 0
        return self._points[index][1]

    def preference(self, key: str, count: int) -> List[str]:
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        Element 0 is the owner; the rest are its successors — the order
        peer cache-fill probes on a miss, because a just-rebalanced key's
        previous owner is, by construction, one of the old ring's nearby
        nodes.
        """
        if self.empty:
            raise ClusterError("hash ring is empty (no alive nodes)")
        wanted = min(count, len(self.nodes))
        start = bisect.bisect_right(self._positions, ring_position(key))
        chosen: List[str] = []
        for step in range(len(self._points)):
            node = self._points[(start + step) % len(self._points)][1]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == wanted:
                    break
        return chosen

    def successors(self, key: str, count: int) -> List[str]:
        """The owner's ``count`` distinct successors (owner excluded)."""
        return self.preference(key, count + 1)[1:]

    # -- diagnostics ----------------------------------------------------
    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (skew tests, ``/healthz``)."""
        tally = {node: 0 for node in self.nodes}
        for key in keys:
            tally[self.owner(key)] += 1
        return tally

    def describe(self) -> Dict[str, object]:
        """JSON-safe ring summary (the ``/cluster/v1/ring`` body)."""
        return {
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
            "points": len(self._points),
        }


def remap_fraction(before: HashRing, after: HashRing, keys: Iterable[str]) -> float:
    """Fraction of ``keys`` whose owner differs between two rings.

    The consistent-hashing headline number: for a join or leave of one
    node out of N it is ~1/N, not ~1.  Exposed for tests and the CLI's
    ``route`` diagnostics rather than the hot path.
    """
    keys = list(keys)
    if not keys:
        return 0.0
    if before.empty or after.empty:
        return 1.0
    moved = sum(1 for key in keys if before.owner(key) != after.owner(key))
    return moved / len(keys)


__all__.append("remap_fraction")
__all__.append("DEFAULT_VNODES")
