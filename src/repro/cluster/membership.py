"""Gossip-style membership: who is in the ring, and who is alive.

Every node keeps a :class:`MembershipTable` — one :class:`NodeInfo` row
per node it has ever heard of — and periodically pushes its whole table
to a random peer (``POST /cluster/v1/heartbeat``).  The receiver merges
row-by-row and answers with *its* table, so information spreads
epidemically: any join, leave, or load change reaches every node in
O(log N) gossip rounds without a coordinator.

Freshness is a per-node ``(generation, heartbeat)`` pair, merged by max:

* ``heartbeat`` is a counter the owning node bumps before each gossip
  round — strictly increasing while the process lives;
* ``generation`` is bumped **once per process start** and persisted in
  the node's result store (meta key ``cluster_generation``), which solves
  the restart-resurrection problem: a restarted node's heartbeat restarts
  from 0, but its higher generation makes its fresh rows win over the
  stale pre-crash rows peers still hold.

Liveness is local judgement, not gossiped: each node remembers *when it
last saw a row's freshness advance* (``last_seen``, host-monotonic) and
declares a peer dead once that exceeds ``fail_after_s``.  The alive set
feeds the hash ring; a membership change therefore *is* a rebalance.

The table is host-clock aware by design (liveness is a wall-clock
question); simlint's wall-clock rule allowlists ``cluster/*`` for exactly
this reason.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ClusterError

__all__ = ["NodeInfo", "MembershipTable"]


@dataclass
class NodeInfo:
    """One node's gossiped row: identity, address, freshness, load.

    ``generation``/``heartbeat`` order freshness (see module docstring);
    ``queue_depth``/``in_flight`` are the load hints work-stealing uses
    to pick victims.  ``last_seen`` is *local* state (host-monotonic time
    this table last saw the row's freshness advance) and never travels on
    the wire.
    """

    node_id: str
    host: str
    port: int
    generation: int = 0
    heartbeat: int = 0
    queue_depth: int = 0
    in_flight: int = 0
    last_seen: float = field(default=0.0, compare=False)

    @property
    def freshness(self) -> Tuple[int, int]:
        return (self.generation, self.heartbeat)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def to_wire(self) -> dict:
        """The gossiped representation (no local-only fields)."""
        return {
            "node_id": self.node_id,
            "host": self.host,
            "port": self.port,
            "generation": self.generation,
            "heartbeat": self.heartbeat,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
        }

    @classmethod
    def from_wire(cls, row: dict) -> "NodeInfo":
        try:
            return cls(
                node_id=str(row["node_id"]),
                host=str(row["host"]),
                port=int(row["port"]),
                generation=int(row.get("generation", 0)),
                heartbeat=int(row.get("heartbeat", 0)),
                queue_depth=int(row.get("queue_depth", 0)),
                in_flight=int(row.get("in_flight", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(f"malformed membership row: {row!r}") from exc


class MembershipTable:
    """The local view of the cluster: every known node plus liveness.

    Thread-safe — the gossip agent writes while HTTP handlers read.

    Args:
        self_info: this node's own row (always alive, never swept).
        fail_after_s: a peer whose freshness has not advanced for this
            many host-seconds is declared dead and drops out of the ring.
    """

    def __init__(self, self_info: NodeInfo, fail_after_s: float = 5.0) -> None:
        if fail_after_s <= 0:
            raise ClusterError(f"fail_after_s must be positive, got {fail_after_s}")
        self.fail_after_s = fail_after_s
        self.self_id = self_info.node_id
        self_info.last_seen = time.monotonic()
        self._lock = threading.Lock()
        self._rows: Dict[str, NodeInfo] = {self_info.node_id: self_info}
        self._dead: Dict[str, NodeInfo] = {}

    # -- own row --------------------------------------------------------
    def bump_self(self, queue_depth: int = 0, in_flight: int = 0) -> NodeInfo:
        """Advance our heartbeat and load hints before a gossip round."""
        with self._lock:
            me = self._rows[self.self_id]
            me.heartbeat += 1
            me.queue_depth = queue_depth
            me.in_flight = in_flight
            me.last_seen = time.monotonic()
            return me

    @property
    def self_info(self) -> NodeInfo:
        with self._lock:
            return self._rows[self.self_id]

    # -- merge ----------------------------------------------------------
    def merge(self, rows: List[NodeInfo]) -> int:
        """Fold a peer's table into ours; returns how many rows advanced.

        A row wins only if its ``(generation, heartbeat)`` is strictly
        fresher than what we hold; our own row is never overwritten by
        gossip (we are the sole authority on ourselves).  A node we had
        declared dead is resurrected only by *fresher* evidence than the
        row it died with — typically a new generation after restart.
        """
        advanced = 0
        now = time.monotonic()
        with self._lock:
            for row in rows:
                if row.node_id == self.self_id:
                    continue
                dead = self._dead.get(row.node_id)
                if dead is not None:
                    if row.freshness <= dead.freshness:
                        continue
                    del self._dead[row.node_id]
                held = self._rows.get(row.node_id)
                if held is None or row.freshness > held.freshness:
                    row.last_seen = now
                    self._rows[row.node_id] = row
                    advanced += 1
        return advanced

    def sweep(self) -> List[str]:
        """Declare peers dead whose freshness stalled; returns their ids."""
        cutoff = time.monotonic() - self.fail_after_s
        died: List[str] = []
        with self._lock:
            for node_id in list(self._rows):
                if node_id == self.self_id:
                    continue
                row = self._rows[node_id]
                if row.last_seen < cutoff:
                    self._dead[node_id] = self._rows.pop(node_id)
                    died.append(node_id)
        return sorted(died)

    # -- views ----------------------------------------------------------
    def alive_nodes(self) -> List[NodeInfo]:
        """Every live row, self included, in stable node-id order."""
        with self._lock:
            return [self._rows[node_id] for node_id in sorted(self._rows)]

    def alive_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._rows)

    def get(self, node_id: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._rows.get(node_id)

    def peers(self) -> List[NodeInfo]:
        """Live rows other than our own (gossip / steal targets)."""
        with self._lock:
            return [
                self._rows[node_id]
                for node_id in sorted(self._rows)
                if node_id != self.self_id
            ]

    def to_wire(self) -> List[dict]:
        """The full table as gossip rows (local-only state stripped)."""
        with self._lock:
            return [self._rows[node_id].to_wire() for node_id in sorted(self._rows)]

    def describe(self) -> dict:
        """JSON-safe liveness summary for ``/healthz``."""
        with self._lock:
            alive = sorted(self._rows)
            dead = sorted(self._dead)
        return {"alive": alive, "dead": dead, "self": self.self_id}
