"""The router: membership's alive set → a ring → placement decisions.

A thin, thread-safe layer that owns the *current* :class:`HashRing` and
answers the three questions a node asks per request:

* ``owns(job_id)`` — is this job mine to queue and compute?
* ``owner_info(job_id)`` — who is, and at what address (the 307 target)?
* ``fill_targets(job_id)`` — which peers to probe, in preference order,
  when a lookup misses locally?

The ring is rebuilt (never patched) whenever :meth:`rebuild` sees the
alive set change; each rebuild is one *rebalance event*, counted so the
metrics surface shows churn.  Between rebuilds every lookup hits one
immutable ring — no lock is held during hashing.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from ..errors import ClusterError
from .membership import MembershipTable, NodeInfo
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["Router"]


class Router:
    """Placement decisions for one node, tracking the membership table."""

    def __init__(
        self, membership: MembershipTable, vnodes: int = DEFAULT_VNODES
    ) -> None:
        self.membership = membership
        self.vnodes = vnodes
        self._lock = threading.Lock()
        self._ring = HashRing(membership.alive_ids(), vnodes=vnodes)
        self.rebalances = 0

    @property
    def ring(self) -> HashRing:
        with self._lock:
            return self._ring

    def rebuild(self) -> bool:
        """Refresh the ring from the alive set; True when it changed."""
        alive = tuple(sorted(self.membership.alive_ids()))
        with self._lock:
            if alive == self._ring.nodes:
                return False
            self._ring = HashRing(alive, vnodes=self.vnodes)
            self.rebalances += 1
            return True

    # -- placement ------------------------------------------------------
    def owner_id(self, job_id: str) -> str:
        return self.ring.owner(job_id)

    def owns(self, job_id: str) -> bool:
        return self.ring.owner(job_id) == self.membership.self_id

    def owner_info(self, job_id: str) -> Optional[NodeInfo]:
        """The owner's membership row (None if it just died un-swept)."""
        return self.membership.get(self.ring.owner(job_id))

    def fill_targets(self, job_id: str, count: int = 2) -> List[NodeInfo]:
        """Peers to probe for a missing result: owner first, then its
        distinct successors, ourselves excluded."""
        ring = self.ring
        if ring.empty:
            raise ClusterError("hash ring is empty (no alive nodes)")
        targets: List[NodeInfo] = []
        for node_id in ring.preference(job_id, count + 1):
            if node_id == self.membership.self_id:
                continue
            info = self.membership.get(node_id)
            if info is not None:
                targets.append(info)
            if len(targets) == count:
                break
        return targets

    def describe(self) -> dict:
        """JSON-safe routing summary (``/cluster/v1/ring``, ``status``)."""
        ring = self.ring
        body = ring.describe()
        body["self"] = self.membership.self_id
        body["rebalances"] = self.rebalances
        return body
