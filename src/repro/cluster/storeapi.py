"""``PeerBackedStore`` — the networked tier of :class:`ResultStoreAPI`.

A decorator over the local SQLite :class:`~repro.campaign.store.ResultStore`
that adds exactly one behaviour: when a job id is *unknown locally*, ask
the ring for it before admitting defeat.  Everything else — every write,
every transition, every query of a job the local store knows — delegates
verbatim, so a single-node cluster is byte-identical to plain serve.

The miss path is deliberately narrow:

* a local row in **any** status short-circuits — status polls of queued
  or running jobs never generate peer traffic;
* only a genuinely unknown id triggers the injected ``fill`` callable
  (the cluster node wires it to "probe the ring preference list"), and a
  fetched result is committed via :meth:`adopt_done` **verbatim** before
  being re-read locally — after a fill the store is indistinguishable
  from one that computed the job itself;
* a fill that finds nothing re-raises the local "unknown job" error, so
  callers see the same exception surface as the SQLite tier.

The ``fill`` callable keeps this module network-agnostic (unit tests
inject a dict lookup; the node injects :class:`PeerClient` probes) and
the hit/miss counters feed the node's ``peer_fill`` metrics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..campaign.storeapi import ResultStoreAPI
from ..errors import ConfigError
from .peer import PeerResult

__all__ = ["PeerBackedStore", "ResultStoreAPI"]

#: a fill probe: job id → the peer's result, or None when no peer has it
FillFn = Callable[[str], Optional[PeerResult]]


class PeerBackedStore(ResultStoreAPI):
    """A local store that fills lookup misses from ring peers.

    Args:
        local: the durable tier every operation ultimately lands in.
        fill: the miss probe (see module docstring).  ``None`` disables
            peer fill entirely — useful while a node is still joining.
    """

    def __init__(self, local: ResultStoreAPI, fill: Optional[FillFn] = None) -> None:
        self.local = local
        self.path = local.path
        self._fill = fill
        self.fill_hits = 0
        self.fill_misses = 0

    def set_fill(self, fill: Optional[FillFn]) -> None:
        """Swap the miss probe (the node rewires it as the ring changes)."""
        self._fill = fill

    # -- the one behaviour this tier adds -------------------------------
    def get_job(self, job_id: str):
        try:
            return self.local.get_job(job_id)
        except ConfigError:
            if self._fill is None:
                raise
        result = self._fill(job_id)
        if result is None:
            self.fill_misses += 1
            raise ConfigError(f"unknown job id: {job_id}")
        if result.spec.job_id != job_id:
            raise ConfigError(
                f"peer fill returned job {result.spec.job_id} for {job_id} "
                "(content-identity violation)"
            )
        self.fill_hits += 1
        self.local.adopt_done(
            result.spec,
            result.payload_text,
            result.wall_s,
            engine=result.engine,
            kernel_version=result.kernel_version,
        )
        return self.local.get_job(job_id)

    # -- pure delegation ------------------------------------------------
    def close(self) -> None:
        self.local.close()

    def get_meta(self, key: str) -> Optional[str]:
        return self.local.get_meta(key)

    def set_meta(self, key: str, value: str) -> None:
        self.local.set_meta(key, value)

    def add_jobs(self, jobs: Sequence) -> int:
        return self.local.add_jobs(jobs)

    def requeue_one(self, job_id: str) -> bool:
        return self.local.requeue_one(job_id)

    def discard_pending(self, job_id: str) -> bool:
        return self.local.discard_pending(job_id)

    def reset_running(self) -> int:
        return self.local.reset_running()

    def requeue_failed(self, max_attempts: int) -> int:
        return self.local.requeue_failed(max_attempts)

    def pending_jobs(self) -> List:
        return self.local.pending_jobs()

    def mark_running(self, job_id: str, worker: str) -> None:
        self.local.mark_running(job_id, worker)

    def mark_done(self, job_id: str, payload: dict, wall_s: float) -> None:
        self.local.mark_done(job_id, payload, wall_s)

    def mark_failed(
        self, job_id: str, error: str, wall_s: Optional[float], requeue: bool
    ) -> None:
        self.local.mark_failed(job_id, error, wall_s, requeue)

    def adopt_done(
        self,
        spec,
        payload_text: str,
        wall_s: Optional[float],
        engine: Optional[str] = None,
        kernel_version: Optional[str] = None,
    ) -> bool:
        return self.local.adopt_done(
            spec, payload_text, wall_s, engine=engine, kernel_version=kernel_version
        )

    def counts(self) -> Dict[str, int]:
        return self.local.counts()

    def all_jobs(self) -> List:
        return self.local.all_jobs()

    def mean_wall_s(self) -> Optional[float]:
        return self.local.mean_wall_s()
