"""The node-to-node RPC client: gossip, result fetch/push, work-stealing.

One :class:`PeerClient` per node talks to every peer over the same HTTP
surface external clients use, just under the ``/cluster/v1`` prefix:

========  =========================  =====================================
method    path                       purpose
========  =========================  =====================================
POST      /cluster/v1/heartbeat      push our membership table, get theirs
GET       /cluster/v1/results/<id>   peer cache-fill: spec + verbatim
                                     payload of a ``done`` job, or 404
POST      /cluster/v1/results/<id>   hand a stolen job's result back to
                                     its owner (``adopt_done`` semantics)
POST      /cluster/v1/steal          ask a loaded victim for queued jobs
========  =========================  =====================================

Peer calls are *best effort*: the caller always has a correct fallback
(recompute locally, skip this gossip round, don't steal), so the client
uses one short timeout, no retries, and raises :class:`ClusterError` for
any transport failure — the agent loop treats that as "peer unreachable"
and the membership sweep does the rest.  Results payloads travel as the
store's verbatim text (never re-serialized) so adoption stays
byte-identical.
"""

from __future__ import annotations

import http.client
import json
from typing import List, Optional

from ..campaign.spec import JobSpec
from ..errors import ClusterError
from .membership import NodeInfo

__all__ = ["PeerClient", "PeerResult"]

CLUSTER_PREFIX = "/cluster/v1"


class PeerResult:
    """A completed job fetched from (or pushed to) a peer.

    ``payload_text`` is the owner store's verbatim JSON text; carrying the
    text (not a decoded dict) is what makes adoption byte-identical.
    """

    __slots__ = ("spec", "payload_text", "wall_s", "engine", "kernel_version")

    def __init__(
        self,
        spec: JobSpec,
        payload_text: str,
        wall_s: float,
        engine: Optional[str] = None,
        kernel_version: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.payload_text = payload_text
        self.wall_s = wall_s
        self.engine = engine
        self.kernel_version = kernel_version

    def to_wire(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "payload": self.payload_text,
            "wall_s": self.wall_s,
            "engine": self.engine,
            "kernel_version": self.kernel_version,
        }

    @classmethod
    def from_wire(cls, body: dict) -> "PeerResult":
        try:
            return cls(
                spec=JobSpec.from_dict(body["spec"]),
                payload_text=str(body["payload"]),
                wall_s=float(body.get("wall_s") or 0.0),
                engine=body.get("engine"),
                kernel_version=body.get("kernel_version"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(f"malformed peer result body: {exc}") from exc


class PeerClient:
    """Short-timeout, no-retry HTTP client for cluster-internal RPC.

    Args:
        timeout_s: per-call socket budget.  Deliberately short — every
            caller has a local fallback, and a slow peer must not stall
            the gossip agent or a request handler.
    """

    def __init__(self, timeout_s: float = 2.0) -> None:
        if timeout_s <= 0:
            raise ClusterError(f"peer timeout must be positive, got {timeout_s}")
        self.timeout_s = timeout_s

    # -- transport ------------------------------------------------------
    def _call(
        self, peer: NodeInfo, method: str, path: str, body: Optional[dict] = None
    ) -> tuple:
        """One request/response against ``peer``; returns (status, dict)."""
        payload = None if body is None else json.dumps(body).encode("utf-8")
        conn = http.client.HTTPConnection(
            peer.host, peer.port, timeout=self.timeout_s
        )
        try:
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ClusterError(
                f"peer {peer.node_id}@{peer.address} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ClusterError(
                f"peer {peer.node_id} sent a non-JSON body for {path}"
            ) from exc
        return response.status, decoded

    # -- gossip ---------------------------------------------------------
    def heartbeat(self, peer: NodeInfo, rows: List[dict]) -> List[NodeInfo]:
        """Exchange membership tables; returns the peer's rows."""
        status, body = self._call(
            peer, "POST", f"{CLUSTER_PREFIX}/heartbeat", {"rows": rows}
        )
        if status != 200:
            raise ClusterError(
                f"peer {peer.node_id} answered heartbeat with {status}", status=status
            )
        return [NodeInfo.from_wire(row) for row in body.get("rows", [])]

    # -- peer cache-fill ------------------------------------------------
    def fetch_result(self, peer: NodeInfo, job_id: str) -> Optional[PeerResult]:
        """A ``done`` job's spec + verbatim payload, or None (miss)."""
        status, body = self._call(
            peer, "GET", f"{CLUSTER_PREFIX}/results/{job_id}"
        )
        if status == 404:
            return None
        if status != 200:
            raise ClusterError(
                f"peer {peer.node_id} answered result fetch with {status}",
                status=status,
            )
        return PeerResult.from_wire(body)

    def push_result(self, peer: NodeInfo, result: PeerResult) -> bool:
        """Hand a stolen job's result to its owner; True if it adopted."""
        status, body = self._call(
            peer,
            "POST",
            f"{CLUSTER_PREFIX}/results/{result.spec.job_id}",
            result.to_wire(),
        )
        if status != 200:
            raise ClusterError(
                f"peer {peer.node_id} answered result push with {status}",
                status=status,
            )
        return bool(body.get("adopted"))

    # -- work-stealing --------------------------------------------------
    def steal(self, peer: NodeInfo, max_jobs: int, thief: str) -> List[JobSpec]:
        """Ask ``peer`` to hand over queued jobs; returns their specs."""
        status, body = self._call(
            peer,
            "POST",
            f"{CLUSTER_PREFIX}/steal",
            {"max_jobs": max_jobs, "thief": thief},
        )
        if status != 200:
            raise ClusterError(
                f"peer {peer.node_id} answered steal with {status}", status=status
            )
        try:
            return [JobSpec.from_dict(item) for item in body.get("jobs", [])]
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(
                f"peer {peer.node_id} sent malformed stolen jobs"
            ) from exc
