"""The individual ``simlint`` rules as one AST visitor.

Each rule has a short code and a kebab-case name; violations carry both so
reports and allowlists can refer to either.  The visitor makes a single
pass per file, with two small pre-passes that gather the information the
unordered-iteration rule needs (which names and ``self`` attributes are
set-typed).

Rules
-----

``SIM101 unseeded-random``
    A call into the process-global random state (``random.*`` or the
    ``numpy.random.*`` convenience functions).  Global streams make runs
    depend on import order and on every other component's draw count;
    simulation code must draw from a named, seeded
    :class:`repro.util.Rng` stream instead.  Explicitly-seeded building
    blocks (``SeedSequence``, ``Generator``, ``PCG64``, a ``default_rng``
    / ``RandomState`` call *with* a seed argument) are allowed.

``SIM102 wall-clock``
    A wall-clock read (``time.time``, ``time.perf_counter``,
    ``datetime.now``, ...).  In simulated-time paths these leak host time
    into results; legitimate wall-clock *profiling* (the speed
    experiments) is excused via the path allowlist or an inline
    ``# simlint: allow[wall-clock]`` pragma.

``SIM103 mutable-default``
    A mutable default argument (``def f(x=[])``).  The default is created
    once and shared across calls, so state leaks between supposedly
    independent simulations.

``SIM104 unordered-iteration``
    Direct iteration over a ``set`` expression in event-ordering code
    (paths matching the configured event-ordering patterns).  Set
    iteration order depends on element hashes — for objects, on memory
    addresses — so it is not reproducible across runs.  Wrap the iterable
    in ``sorted(...)`` or keep an insertion-ordered ``dict`` instead.
    Dicts are insertion-ordered on every supported Python (>= 3.7), so
    dict iteration is deterministic and deliberately not flagged.

``SIM105 bare-assert``
    An ``assert`` statement in library code.  Asserts are stripped under
    ``python -O``, silently disabling the check; raise a
    :class:`repro.errors.SimulationError` / ``ConfigError`` /
    ``ProtocolError`` instead.

``SIM106 swallowed-exception``
    An ``except`` handler that discards the exception — a body of nothing
    but ``pass``/``...``, or a bare ``except:`` that catches everything
    including ``KeyboardInterrupt``.  In a simulator a swallowed error
    does not crash; it silently diverges the results.  Handle the
    exception, re-raise, or excuse a deliberate suppression with
    ``# simlint: allow[swallowed-exception]`` on the ``except`` line.

``SIM107 unbounded-loop``
    A ``while`` loop in simulation-kernel code (paths matching the
    configured unbounded-loop patterns, by default ``core/*``, ``noc/*``,
    and ``serve/*`` — the serve daemon's event-driven accept loops are
    then excused via the path allowlist) that the analysis cannot prove
    terminates or fails loudly:
    its test is constant-truthy (``while True``) or contains no
    comparison, and its body reaches no ``break``, ``raise``, or
    ``return`` (a ``break`` inside a *nested* loop does not count — it
    exits the wrong loop).  Such a loop can spin forever on a wedged
    simulation, burning a campaign job's whole wall-clock budget with no
    diagnostics; add a cycle-budget check that raises
    :class:`repro.errors.StallError`, or excuse a loop bounded by
    collection drain with ``# simlint: allow[unbounded-loop]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

__all__ = ["RULES", "RULE_CODES", "Violation", "SimLintVisitor", "register_rules"]

#: rule name -> (code, one-line description) — the classic single-file rules
RULES: Dict[str, tuple] = {
    "parse-error": (
        "SIM100",
        "file could not be parsed (reported by the driver, not a rule)",
    ),
    "unseeded-random": (
        "SIM101",
        "process-global RNG call; use a seeded repro.util.Rng stream",
    ),
    "wall-clock": (
        "SIM102",
        "wall-clock read in simulated-time code (allowlist profiling paths)",
    ),
    "mutable-default": (
        "SIM103",
        "mutable default argument shared across calls",
    ),
    "unordered-iteration": (
        "SIM104",
        "iteration over an unordered set in event-ordering code",
    ),
    "bare-assert": (
        "SIM105",
        "assert statement is stripped under python -O; raise a repro error",
    ),
    "swallowed-exception": (
        "SIM106",
        "exception handler discards the error; simulations diverge silently",
    ),
    "unbounded-loop": (
        "SIM107",
        "while loop in kernel code with no provable exit or loud failure",
    ),
}

#: rule name -> (code, description) for *every* registered pass.  The
#: classic rules seed it; the deep (SIM2xx) pass extends it via
#: :func:`register_rules` on import, so one Finding dataclass serves both.
RULE_CODES: Dict[str, tuple] = dict(RULES)


def register_rules(rules: Dict[str, tuple]) -> None:
    """Add another pass's rules to the shared code registry."""
    RULE_CODES.update(rules)


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which rule fired, and why.

    Shared by the classic (SIM1xx) and deep (SIM2xx) passes.  ``end_line``
    / ``end_col`` bound the exact source span (0 when unknown: the finding
    is then a single point at ``line:col``); ``context`` names the
    enclosing function or class, which keeps baseline fingerprints stable
    across unrelated line shifts.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    end_line: int = 0
    end_col: int = 0
    context: str = ""

    @property
    def code(self) -> str:
        return RULE_CODES[self.rule][0]

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.rule}] {self.message}"
        )


# Wall-clock reads (resolved dotted names).
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.localtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

# numpy.random attributes that are explicitly-seeded building blocks (the
# machinery repro.util.Rng itself is built from), never global-state draws.
_NP_RANDOM_SEEDED = {
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
    "SeedSequence",
}
# Seeded only when called with an explicit seed argument.
_NP_RANDOM_SEEDABLE = {"default_rng", "RandomState"}

# stdlib random attributes that construct an independent, seedable stream.
_STDLIB_RANDOM_SEEDED = {"Random", "SystemRandom"}

_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "collections.defaultdict",
    "collections.deque",
    "collections.Counter",
    "collections.OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}


def _test_is_unbounded(test: ast.AST) -> bool:
    """A loop test that bounds nothing: constant-truthy or comparison-free.

    Comparisons (``while cycle < target``) are taken as evidence of a
    cycle or size budget; anything else (``while True``, ``while pending``,
    ``while not done``) promises nothing about termination on its own.
    """
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return not any(isinstance(n, ast.Compare) for n in ast.walk(test))


def _subtree_raises_or_returns(node: ast.AST) -> bool:
    """Does this statement's subtree raise/return, ignoring nested defs?"""
    if isinstance(node, (ast.Raise, ast.Return)):
        return True
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    for child in ast.iter_child_nodes(node):
        if _subtree_raises_or_returns(child):
            return True
    return False


def _stmt_blocks(stmt: ast.stmt):
    """Every nested statement block of a compound statement."""
    for fld in ("body", "orelse", "finalbody"):
        block = getattr(stmt, fld, None)
        if block:
            yield block
    for handler in getattr(stmt, "handlers", []):
        yield handler.body
    for case in getattr(stmt, "cases", []):
        yield case.body


def _loop_body_exits(body: List[ast.stmt]) -> bool:
    """Can this loop body reach a ``break``, ``raise``, or ``return``?

    ``break`` only counts at the loop's own nesting level — one inside a
    nested loop exits that inner loop, not this one.  ``raise``/``return``
    count anywhere except inside nested function/class definitions.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Break, ast.Raise, ast.Return)):
            return True
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            if _subtree_raises_or_returns(stmt):
                return True
            continue
        if any(_loop_body_exits(block) for block in _stmt_blocks(stmt)):
            return True
    return False


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _SelfSetAttrs(ast.NodeVisitor):
    """Pre-pass: which ``self.X`` attributes are ever assigned a set."""

    def __init__(self) -> None:
        self.set_attrs: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, (), self.set_attrs):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    self.set_attrs.add(attr)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        attr = _self_attr(node.target)
        if attr is not None and (
            _annotation_is_set(node.annotation)
            or (
                node.value is not None
                and _is_set_expr(node.value, (), self.set_attrs)
            )
        ):
            self.set_attrs.add(attr)
        self.generic_visit(node)


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _annotation_is_set(node: ast.AST) -> bool:
    name = _dotted_name(node)
    if name in ("set", "frozenset", "Set", "FrozenSet", "typing.Set"):
        return True
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet")
    return False


def _is_set_expr(
    node: ast.AST, set_names: tuple, set_attrs: Set[str]
) -> bool:
    """Can this expression be statically recognised as a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names, set_attrs) or _is_set_expr(
            node.right, set_names, set_attrs
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    attr = _self_attr(node)
    if attr is not None:
        return attr in set_attrs
    return False


class SimLintVisitor(ast.NodeVisitor):
    """Single-file rule pass.

    Args:
        path: display path for findings (usually relative to the lint root).
        event_ordering: True when the unordered-iteration rule applies to
            this file.
        enabled: the rule names to run.
        unbounded_loops: True when the unbounded-loop rule applies to this
            file (simulation-kernel paths).
    """

    def __init__(
        self,
        path: str,
        event_ordering: bool,
        enabled: Set[str],
        unbounded_loops: bool = False,
    ) -> None:
        self.path = path
        self.event_ordering = event_ordering
        self.unbounded_loops = unbounded_loops
        self.enabled = enabled
        self.violations: List[Violation] = []
        #: import alias -> real module path ("np" -> "numpy")
        self._modules: Dict[str, str] = {}
        #: from-imported name -> full dotted origin ("time" -> "time.time")
        self._from_names: Dict[str, str] = {}
        #: per-function stack of {name} known to hold sets
        self._set_name_stack: List[Set[str]] = [set()]
        #: self attributes (of the enclosing classes) known to hold sets
        self._set_attrs: Set[str] = set()

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.enabled:
            self.violations.append(
                Violation(
                    self.path,
                    getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0) + 1,
                    rule,
                    message,
                    end_line=getattr(node, "end_lineno", 0) or 0,
                    end_col=(getattr(node, "end_col_offset", 0) or 0) + 1,
                )
            )

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._modules[alias.asname or alias.name] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self._from_names[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a call target with import aliases undone."""
        name = _dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        if head in self._modules:
            head = self._modules[head]
        elif head in self._from_names:
            head = self._from_names[head]
        return f"{head}.{rest}" if rest else head

    # -- calls: unseeded randomness and wall-clock ----------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            self._check_random(node, resolved)
            self._check_wall_clock(node, resolved)
        self.generic_visit(node)

    def _check_random(self, node: ast.Call, resolved: str) -> None:
        if resolved.startswith("random."):
            leaf = resolved.split(".", 1)[1]
            if leaf not in _STDLIB_RANDOM_SEEDED:
                self._flag(
                    node,
                    "unseeded-random",
                    f"{resolved}() draws from the process-global stream; "
                    "use a named repro.util.Rng",
                )
        elif resolved.startswith("numpy.random."):
            leaf = resolved.rsplit(".", 1)[1]
            if leaf in _NP_RANDOM_SEEDED:
                return
            if leaf in _NP_RANDOM_SEEDABLE and (node.args or node.keywords):
                return
            self._flag(
                node,
                "unseeded-random",
                f"{resolved}() is unseeded global numpy randomness; "
                "use a named repro.util.Rng",
            )

    def _check_wall_clock(self, node: ast.Call, resolved: str) -> None:
        if resolved in _WALL_CLOCK_CALLS:
            self._flag(
                node,
                "wall-clock",
                f"{resolved}() reads the host clock; simulated-time code "
                "must use event/cycle time (profiling paths belong on the "
                "allowlist)",
            )

    # -- function definitions: mutable defaults + name scopes ------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _dotted_name(default.func) in _MUTABLE_FACTORIES
            ):
                self._flag(
                    default,
                    "mutable-default",
                    "mutable default is created once and shared across "
                    "calls; default to None and construct inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._set_name_stack.append(set())
        self.generic_visit(node)
        self._set_name_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        collector = _SelfSetAttrs()
        collector.visit(node)
        outer = self._set_attrs
        self._set_attrs = outer | collector.set_attrs
        self.generic_visit(node)
        self._set_attrs = outer

    # -- assignments: track which local names hold sets ------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self._set_name_stack[-1].add(target.id)
                else:
                    self._set_name_stack[-1].discard(target.id)
        self.generic_visit(node)

    def _is_set(self, node: ast.AST) -> bool:
        names = tuple(self._set_name_stack[-1])
        return _is_set_expr(node, names, self._set_attrs)

    # -- iteration order ------------------------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        if self.event_ordering and self._is_set(iter_node):
            self._flag(
                iter_node,
                "unordered-iteration",
                "set iteration order depends on element hashes and is not "
                "reproducible; iterate sorted(...) or an insertion-ordered "
                "dict",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    # -- loop boundedness ------------------------------------------------
    def visit_While(self, node: ast.While) -> None:
        if (
            self.unbounded_loops
            and _test_is_unbounded(node.test)
            and not _loop_body_exits(node.body)
        ):
            self._flag(
                node,
                "unbounded-loop",
                "loop has no comparison bound and no reachable "
                "break/raise/return; a wedged simulation spins here forever "
                "— add a cycle-budget StallError, or pragma a loop bounded "
                "by collection drain",
            )
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    # -- exception handlers ---------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        swallowed = all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        )
        if node.type is None:
            self._flag(
                node,
                "swallowed-exception",
                "bare 'except:' catches everything, including SystemExit and "
                "KeyboardInterrupt; name the exception types",
            )
        elif swallowed:
            self._flag(
                node,
                "swallowed-exception",
                "handler body is only pass/...; the error vanishes and the "
                "simulation silently diverges — handle it, re-raise, or "
                "pragma a deliberate suppression",
            )
        self.generic_visit(node)

    # -- asserts --------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._flag(
            node,
            "bare-assert",
            "stripped under python -O; raise SimulationError / ConfigError "
            "/ ProtocolError from repro.errors instead",
        )
        self.generic_visit(node)
