"""Runtime invariant checking for co-simulation runs.

The static pass (:mod:`repro.analysis.simlint`) catches hazards in the
source; this module catches the corresponding *dynamic* failures while a
simulation runs.  An :class:`InvariantChecker` is handed to
:class:`~repro.core.cosim.CoSimulator` (``invariants=`` argument, or
``build_cosim(config, check_invariants=True)``, or ``--check-invariants``
on the CLI) and is consulted at every synchronization-quantum boundary:

* **message conservation** — every message the system injected is either
  delivered, still in flight inside the network model, or waiting in the
  co-simulator's outbox; nothing is created or destroyed by the coupling;
* **monotonic time** — the system's and the network model's clocks land
  exactly on each window boundary and never move backwards;
* **NoC credit/VC conservation** — for the flit-level
  :class:`~repro.noc.network.CycleNetwork`, every (link, VC) pair's
  credits held upstream + credits in flight + flits in flight + flits
  buffered downstream must equal the configured buffer depth, and the
  output-VC ownership table must agree bijectively with the input-VC
  states.

All failures raise :class:`repro.errors.InvariantError` with enough
context to locate the broken exchange.  The checks are O(links x VCs) per
window, so they are cheap enough to leave on in tests and debugging runs;
production sweeps leave them off.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import InvariantError

__all__ = ["InvariantChecker", "check_network_invariants"]

# Input-VC "active" state (mirrors repro.noc.router; imported lazily in
# checks to keep this module import-light).
_ACTIVE = 2


def _unwrap_cycle_network(model) -> Optional[object]:
    """The flit-level CycleNetwork behind a network model, if there is one.

    Detailed adapters expose the simulator as ``.network``; only the OO
    cycle network has the per-router credit state these checks read (the
    SIMD network keeps packed arrays and has its own internal checks).
    """
    net = getattr(model, "network", None)
    if net is not None and hasattr(net, "routers") and hasattr(net, "links"):
        return net
    return None


def check_network_invariants(net) -> None:
    """Credit/VC conservation for a :class:`~repro.noc.network.CycleNetwork`.

    Call between cycles (the network steps in whole cycles, so any point
    outside :meth:`step` is consistent).  Raises
    :class:`~repro.errors.InvariantError` on the first broken invariant.
    """
    nvc = net.config.num_vcs
    depth = net.config.buffer_depth

    for (src, port), link in net.links.items():
        upstream = net.routers[src]
        downstream = net.routers[link.dst_router]
        fwd = link.in_flight_by_vc(nvc)
        back = link.credits_in_flight_by_vc(nvc)
        for vc in range(nvc):
            held = upstream.credits[port][vc]
            buffered = len(downstream.inputs[link.dst_port][vc].buffer)
            total = held + fwd[vc] + back[vc] + buffered
            if total != depth:
                raise InvariantError(
                    f"credit conservation broken on link r{src}.p{port} -> "
                    f"r{link.dst_router}.p{link.dst_port} vc {vc}: "
                    f"{held} held + {fwd[vc]} flits in flight + "
                    f"{back[vc]} credits in flight + {buffered} buffered "
                    f"!= depth {depth}"
                )
            if buffered > depth:
                raise InvariantError(
                    f"router {link.dst_router} port {link.dst_port} vc {vc} "
                    f"holds {buffered} flits (depth {depth})"
                )

    for router in net.routers:
        owners = {}
        for out_port, per_vc in enumerate(router.out_vc_owner):
            for out_vc, owner in enumerate(per_vc):
                if owner is None:
                    continue
                in_port, in_vc = owner
                ivc = router.inputs[in_port][in_vc]
                if (
                    ivc.state != _ACTIVE
                    or ivc.route_port != out_port
                    or ivc.out_vc != out_vc
                ):
                    raise InvariantError(
                        f"router {router.rid}: output VC ({out_port},{out_vc}) "
                        f"claims owner ({in_port},{in_vc}) but that input VC "
                        f"is state={ivc.state} route_port={ivc.route_port} "
                        f"out_vc={ivc.out_vc}"
                    )
                owners[(in_port, in_vc)] = (out_port, out_vc)
        for in_port, per_vc_in in enumerate(router.inputs):
            for in_vc, ivc in enumerate(per_vc_in):
                if ivc.state == _ACTIVE and (in_port, in_vc) not in owners:
                    raise InvariantError(
                        f"router {router.rid}: input VC ({in_port},{in_vc}) is "
                        f"ACTIVE on ({ivc.route_port},{ivc.out_vc}) but no "
                        "output VC records it as owner"
                    )


class InvariantChecker:
    """Quantum-boundary invariant checks for a co-simulation.

    Args:
        check_network: also run the NoC credit/VC conservation pass when
            the primary (or shadow) model wraps a ``CycleNetwork``.
        every: check every N-th window (1 = every window); time
            monotonicity is always tracked because it is O(1).
    """

    def __init__(self, check_network: bool = True, every: int = 1) -> None:
        if every < 1:
            raise InvariantError(f"'every' must be >= 1, got {every}")
        self.check_network = check_network
        self.every = every
        self.windows_checked = 0
        self._windows_seen = 0
        self._last_target: Optional[int] = None

    # ------------------------------------------------------------------
    def on_run_start(self, cosim) -> None:
        self._last_target = None

    def after_window(self, cosim, target: int) -> None:
        """Validate co-simulator state at a window boundary ``target``."""
        self._windows_seen += 1
        self._check_time(cosim, target)
        if self._windows_seen % self.every:
            return
        self._check_conservation(cosim)
        if self.check_network:
            self._check_networks(cosim)
        self.windows_checked += 1

    # ------------------------------------------------------------------
    def _check_time(self, cosim, target: int) -> None:
        if self._last_target is not None and target < self._last_target:
            raise InvariantError(
                f"simulated time moved backwards: window boundary {target} "
                f"after {self._last_target}"
            )
        self._last_target = target
        if cosim.system.now != target:
            raise InvariantError(
                f"system clock {cosim.system.now} disagrees with window "
                f"boundary {target}"
            )
        for name, model in (("network", cosim.network), ("shadow", cosim.shadow)):
            if model is None or model.inline:
                continue
            if model.cycle != target:
                raise InvariantError(
                    f"{name} model clock {model.cycle} disagrees with window "
                    f"boundary {target}; quantum coupling is broken"
                )

    def _check_conservation(self, cosim) -> None:
        in_network = getattr(cosim.network, "in_flight", 0)
        outbox = len(cosim._outbox)
        balance = cosim.deliveries + in_network + outbox
        if cosim.messages_sent != balance:
            raise InvariantError(
                "message conservation broken: "
                f"{cosim.messages_sent} sent != {cosim.deliveries} delivered "
                f"+ {in_network} in flight + {outbox} in outbox "
                f"(lost or duplicated {cosim.messages_sent - balance})"
            )
        recorded = len(cosim._applied.get(-1, ()))
        if recorded != cosim.deliveries:
            raise InvariantError(
                f"{cosim.deliveries} deliveries but {recorded} applied "
                "latencies recorded"
            )
        lats: List[int] = cosim._applied.get(-1, [])
        if lats and lats[-1] < 0:
            raise InvariantError(
                f"negative applied latency {lats[-1]}: a delivery predates "
                "its message's creation"
            )

    def _check_networks(self, cosim) -> None:
        for model in (cosim.network, cosim.shadow):
            if model is None:
                continue
            net = _unwrap_cycle_network(model)
            if net is not None:
                check_network_invariants(net)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "invariants": "conservation+time+noc" if self.check_network
            else "conservation+time",
            "every": self.every,
            "windows_checked": self.windows_checked,
        }
