"""Correctness tooling for the co-simulator.

Two complementary halves:

* :mod:`repro.analysis.simlint` — an AST-based static-analysis pass that
  flags simulation-correctness hazards (unseeded randomness, wall-clock
  reads in simulated-time paths, mutable default arguments, iteration over
  unordered sets in event-ordering code, and bare ``assert`` statements
  that vanish under ``python -O``).  Run it with ``python -m repro lint``.
* :mod:`repro.analysis.flow` — the interprocedural deep pass (SIM2xx):
  whole-program call graph, per-function dataflow summaries cached by
  content hash, nondeterminism taint, await-atomicity, fork-safety,
  unit-confusion, and resource-lifecycle rules.  Run it with ``python -m
  repro lint --deep``.
* :mod:`repro.analysis.invariants` — a runtime invariant checker the
  :class:`~repro.core.cosim.CoSimulator` can install: message conservation
  per synchronization quantum, monotonic simulated time, and NoC
  credit/VC conservation.  Enable it with ``--check-invariants`` on the
  harness CLI or ``build_cosim(config, check_invariants=True)``.

Both exist because the paper's headline numbers are only reproducible if
every run is bit-deterministic and every quantum exchange conserves
messages; these tools make violations loud instead of silent.
"""

from .flow import (
    DEEP_RULES,
    DeepConfig,
    DeepReport,
    deep_lint_paths,
    render_sarif,
    run_deep,
)
from .invariants import (
    InvariantChecker,
    check_network_invariants,
)
from .simlint import (
    RULES,
    LintConfig,
    Violation,
    lint_file,
    lint_paths,
    render_json,
    render_report,
)

__all__ = [
    "DEEP_RULES",
    "RULES",
    "DeepConfig",
    "DeepReport",
    "LintConfig",
    "Violation",
    "deep_lint_paths",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_report",
    "render_sarif",
    "run_deep",
    "InvariantChecker",
    "check_network_invariants",
]
