"""``simlint`` — the driver for the simulation-correctness lint pass.

Walks a tree of Python sources, runs the AST rules in
:mod:`repro.analysis.rules` over each file, and filters findings through
two allowlist mechanisms:

* **path allowlist** — per-rule glob patterns (relative to the lint root)
  for files whose use of a hazard is by design, e.g. wall-clock reads in
  ``harness/`` where profiling host time is the whole point;
* **inline pragma** — a ``# simlint: allow[rule-name]`` (or
  ``allow[*]``) comment on the offending line excuses that line only,
  for surgical exceptions such as the co-simulator's own wall-clock
  split accounting.

Run it as ``python -m repro lint`` (optionally ``--path DIR``); it exits
non-zero when any violation survives filtering, which is what CI gates
on.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .rules import RULES, SimLintVisitor, Violation

__all__ = [
    "RULES",
    "LintConfig",
    "Violation",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_report",
]

_PRAGMA = re.compile(r"#\s*simlint:\s*allow\[([\w\-*,\s]+)\]")


def _default_allow_paths() -> Dict[str, Tuple[str, ...]]:
    # The harness measures host time by design (speed experiments, CLI
    # stopwatch), and the campaign worker pool is the one sanctioned home
    # of host-clock reads in the campaign package (job durations, timeout
    # deadlines — time.monotonic only).  The serve daemon lives in
    # wall-clock reality end to end (Retry-After hints, service-time
    # quantiles, drain grace), and its accept/scheduler loops are
    # event-driven rather than cycle-bounded, so serve/* is the scoped
    # home of both hazards.  The bench package *measures* host time —
    # wall-clock readings are its product, not an accident.  Everything
    # else must account for wall-clock reads or unbounded loops with an
    # inline pragma.
    return {
        "wall-clock": (
            "harness/*",
            "campaign/pool.py",
            "serve/*",
            "bench/*",
            # chaos injects host-level faults (slow-commit delays, audit
            # round deadlines) — wall-clock is its subject matter.
            "chaos/*",
            # cluster liveness (gossip sweeps, lent-job re-admit deadlines)
            # is a wall-clock question by nature.
            "cluster/*",
        ),
        "unbounded-loop": ("serve/*", "chaos/*", "cluster/*"),
    }


@dataclass
class LintConfig:
    """What to check and what to excuse.

    Args:
        enabled: rule names to run (default: all of :data:`RULES`).
        allow_paths: rule name -> glob patterns (matched against the
            posix path relative to the lint root) that are exempt.
        event_ordering_paths: glob patterns for files where iteration
            order is simulation-visible; the unordered-iteration rule
            only applies there.
        unbounded_loop_paths: glob patterns for simulation-kernel files
            where every ``while`` loop must provably terminate or fail
            loudly; the unbounded-loop rule only applies there.
    """

    enabled: Tuple[str, ...] = tuple(RULES)
    allow_paths: Dict[str, Tuple[str, ...]] = field(
        default_factory=_default_allow_paths
    )
    event_ordering_paths: Tuple[str, ...] = (
        "core/*",
        "noc/*",
        "noc_gpu/*",
        "engine/*",
        "fullsys/*",
        "abstractnet/*",
        "dram/*",
    )
    unbounded_loop_paths: Tuple[str, ...] = (
        "core/*",
        "noc/*",
        "serve/*",
        "cluster/*",
    )


def _matches(relpath: str, patterns: Iterable[str]) -> bool:
    return any(fnmatch.fnmatch(relpath, p) for p in patterns)


def _pragma_allows(line: str, rule: str) -> bool:
    match = _PRAGMA.search(line)
    if match is None:
        return False
    allowed = {token.strip() for token in match.group(1).split(",")}
    return "*" in allowed or rule in allowed


def lint_file(
    path: Path,
    relpath: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> List[Violation]:
    """Run every enabled rule over one file; returns surviving findings."""
    config = config or LintConfig()
    rel = (relpath or path.name).replace("\\", "/")
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rel,
                exc.lineno or 0,
                (exc.offset or 0) or 1,
                "parse-error",
                f"cannot parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()

    enabled = {
        rule
        for rule in config.enabled
        if not _matches(rel, config.allow_paths.get(rule, ()))
    }
    visitor = SimLintVisitor(
        rel,
        event_ordering=_matches(rel, config.event_ordering_paths),
        enabled=enabled,
        unbounded_loops=_matches(rel, config.unbounded_loop_paths),
    )
    visitor.visit(tree)

    kept = []
    for violation in visitor.violations:
        line = lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        if not _pragma_allows(line, violation.rule):
            kept.append(violation)
    return kept


def lint_paths(
    roots: Sequence[Path], config: Optional[LintConfig] = None
) -> List[Violation]:
    """Lint every ``*.py`` under each root (files are accepted too)."""
    config = config or LintConfig()
    violations: List[Violation] = []
    for root in roots:
        root = Path(root)
        if root.is_file():
            violations.extend(lint_file(root, root.name, config))
            continue
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root).as_posix()
            violations.extend(lint_file(path, rel, config))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report: a JSON document CI turns into per-file
    annotations (see ``scripts/lint_annotations.py``)."""
    payload = {
        "ok": not violations,
        "count": len(violations),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "end_line": v.end_line,
                "end_col": v.end_col,
                "code": v.code,
                "rule": v.rule,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2)


def render_report(violations: Sequence[Violation]) -> str:
    """Human-readable report: one line per finding plus a per-rule tally."""
    if not violations:
        return "simlint: clean"
    lines = [v.render() for v in violations]
    tally: Dict[str, int] = {}
    for violation in violations:
        tally[violation.rule] = tally.get(violation.rule, 0) + 1
    summary = ", ".join(
        f"{count} {rule}" for rule, count in sorted(tally.items())
    )
    lines.append(f"simlint: {len(violations)} finding(s) ({summary})")
    return "\n".join(lines)


def default_lint_root() -> Path:
    """The installed ``repro`` package tree (what CI lints)."""
    return Path(__file__).resolve().parent.parent


def run(path: Optional[str] = None, fmt: str = "text") -> int:
    """Lint ``path`` (default: the repro package); returns a process code.

    ``fmt="json"`` emits :func:`render_json` instead of the human report,
    which the CI lint job feeds to ``scripts/lint_annotations.py`` for
    per-file annotations.
    """
    root = Path(path) if path else default_lint_root()
    if not root.exists():
        # A typo'd --path must not read as "clean" to CI.
        if fmt == "json":
            print(json.dumps({"ok": False, "error": f"path {root} does not exist"}))
        else:
            print(f"simlint: path {root} does not exist")
        return 2
    violations = lint_paths([root])
    print(render_json(violations) if fmt == "json" else render_report(violations))
    return 1 if violations else 0
