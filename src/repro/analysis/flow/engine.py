"""Driver for the deep pass: summaries → call graph → taint → findings.

:func:`deep_lint_paths` is to the SIM2xx family what
:func:`repro.analysis.simlint.lint_paths` is to SIM1xx, and it reuses
that module's pragma filter so ``# simlint: allow[...]`` comments work
identically across both passes.  A full deep *run* (what the CLI's
``--deep`` invokes) is classic + deep findings merged, then baseline-
subtracted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..rules import Violation
from ..simlint import LintConfig, _pragma_allows, lint_paths
from .baseline import apply_baseline, load_baseline
from .callgraph import build_callgraph
from .parser import ModuleSet, SummaryCache, load_modules
from .rules import DEEP_RULES, DeepConfig, deep_violations
from .taint import TaintAnalysis

__all__ = ["DeepReport", "deep_lint_paths", "run_deep"]


@dataclass
class DeepReport:
    """Findings plus analyzer coverage/caching telemetry."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def _filter_pragmas(
    violations: Sequence[Violation], sources: Dict[str, Path]
) -> List[Violation]:
    """Drop findings excused by an inline ``# simlint: allow[...]``."""
    kept: List[Violation] = []
    lines_cache: Dict[str, List[str]] = {}
    for v in violations:
        source = sources.get(v.path)
        if source is not None:
            if v.path not in lines_cache:
                try:
                    lines_cache[v.path] = source.read_text(
                        encoding="utf-8"
                    ).splitlines()
                except OSError:
                    lines_cache[v.path] = []
            lines = lines_cache[v.path]
            line = lines[v.line - 1] if 0 < v.line <= len(lines) else ""
            if _pragma_allows(line, v.rule):
                continue
        kept.append(v)
    return kept


def deep_lint_paths(
    roots: Sequence[Path],
    config: Optional[DeepConfig] = None,
    cache: Optional[SummaryCache] = None,
    modules: Optional[ModuleSet] = None,
) -> DeepReport:
    """Run only the SIM2xx rules over the tree."""
    config = config or DeepConfig()
    mods = modules if modules is not None else load_modules(roots, cache)
    graph = build_callgraph(mods.modules)
    taint = TaintAnalysis(graph)
    raw = deep_violations(mods.modules, graph, taint, config)
    kept = _filter_pragmas(raw, mods.sources)
    per_rule = {rule: 0 for rule in DEEP_RULES}
    for v in kept:
        per_rule[v.rule] = per_rule.get(v.rule, 0) + 1
    stats = {
        "modules": len(mods.modules),
        "functions": sum(
            len(f["functions"]) for f in mods.modules.values()
        ),
        "call_edges": graph.edge_count(),
        "cache_hits": mods.cache_hits,
        "cache_misses": mods.cache_misses,
    }
    stats.update({f"rule:{r}": n for r, n in per_rule.items()})
    return DeepReport(violations=kept, stats=stats)


def run_deep(
    roots: Sequence[Path],
    classic_config: Optional[LintConfig] = None,
    deep_config: Optional[DeepConfig] = None,
    cache_dir: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    include_kernels: bool = False,
    kernels_config=None,
) -> DeepReport:
    """The full ``lint --deep`` pipeline: classic + SIM2xx + baseline.

    With ``include_kernels`` the SIM3xx kernel pass
    (:mod:`repro.analysis.arrays`) joins the merge, sharing this cache
    dir, so ``lint --deep --kernels`` gates on one combined report.
    """
    cache = SummaryCache(cache_dir)
    report = deep_lint_paths([Path(r) for r in roots], deep_config, cache)
    classic = lint_paths([Path(r) for r in roots], classic_config)
    kernel_violations: List[Violation] = []
    if include_kernels:
        from ..arrays.engine import kernels_lint_paths

        kernels = kernels_lint_paths(
            [Path(r) for r in roots], kernels_config, cache_dir
        )
        kernel_violations = kernels.violations
        report.stats.update(kernels.stats)
    merged = sorted(
        list(classic) + report.violations + kernel_violations,
        key=lambda v: (v.path, v.line, v.col, v.rule),
    )
    baseline = load_baseline(baseline_path) if baseline_path else {}
    kept, suppressed = apply_baseline(merged, baseline)
    report.violations = kept
    report.suppressed = suppressed
    classic_counts: Dict[str, int] = {}
    for v in classic:
        classic_counts[v.rule] = classic_counts.get(v.rule, 0) + 1
    report.stats.update(
        {f"rule:{r}": n for r, n in sorted(classic_counts.items())}
    )
    report.stats["suppressed"] = suppressed
    return report
