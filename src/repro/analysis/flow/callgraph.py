"""Whole-program call graph over the per-module summaries.

Nodes are ``"<relpath>::<qualname>"`` strings; edges come from the call
sites, fork targets, and decorator lists the extractor recorded.  Names
are resolved with a deliberately simple, conservative scheme:

1. a bare or ``Class.method`` name defined in the same module wins;
2. ``self.meth`` resolves within the caller's own class, then module;
3. a from-import resolves against the *project* module whose relative
   path matches the imported module's dotted suffix (``from ..campaign
   import pool`` → ``campaign/pool.py``), including relative imports;
4. anything else (stdlib, third-party, computed receivers) stays
   unresolved — absent from the graph, never a spurious edge.

That is exactly the precision the SIM2xx rules need: interprocedural
taint and fork-reachability within ``src/repro``, nothing more.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["CallGraph", "build_callgraph"]


def _module_dotted(relpath: str) -> str:
    """``serve/scheduler.py`` → ``serve.scheduler`` (package-relative)."""
    dotted = relpath[:-3] if relpath.endswith(".py") else relpath
    dotted = dotted.replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


class CallGraph:
    """Resolved call edges plus the name tables used to build them."""

    def __init__(self, modules: Dict[str, Dict]) -> None:
        self.modules = modules
        #: node -> set of callee nodes
        self.edges: Dict[str, Set[str]] = {}
        #: dotted module name -> relpath (longest-suffix lookup table)
        self.module_index: Dict[str, str] = {
            _module_dotted(rel): rel for rel in modules
        }
        #: (relpath, local name) -> node, for intra-module resolution
        self.local_defs: Dict[Tuple[str, str], str] = {}
        self._build_local_defs()
        self._build_edges()

    # -- construction ---------------------------------------------------
    def _build_local_defs(self) -> None:
        for rel, facts in self.modules.items():
            for qual in facts["functions"]:
                node = f"{rel}::{qual}"
                self.local_defs[(rel, qual)] = node
                # a method is also reachable by its bare name within the
                # class scope; keep full quals only to avoid ambiguity
            for cls, info in facts["classes"].items():
                for meth in info["methods"]:
                    self.local_defs.setdefault(
                        (rel, f"{cls}.{meth}"), f"{rel}::{cls}.{meth}"
                    )

    def node_for(self, rel: str, qual: str) -> str:
        return f"{rel}::{qual}"

    def resolve(
        self, rel: str, caller_qual: str, name: Optional[str]
    ) -> Optional[str]:
        """Resolve a (possibly dotted) callee name from inside a caller."""
        if not name or name.startswith("?"):
            return None
        facts = self.modules[rel]
        caller = facts["functions"].get(caller_qual, {})
        cls = caller.get("class")

        # self.meth → own class method, then a bare module-level function
        if name.startswith("self.") or name.startswith("cls."):
            leaf = name.split(".", 1)[1]
            if "." not in leaf:
                if cls and (rel, f"{cls}.{leaf}") in self.local_defs:
                    return self.local_defs[(rel, f"{cls}.{leaf}")]
            return None

        # same-module definition (function, Class.method, nested)
        if (rel, name) in self.local_defs:
            return self.local_defs[(rel, name)]
        if cls and (rel, f"{cls}.{name}") in self.local_defs:
            return self.local_defs[(rel, f"{cls}.{name}")]

        # Class() constructor → Class.__init__ in this module
        if (rel, f"{name}.__init__") in self.local_defs:
            return self.local_defs[(rel, f"{name}.__init__")]

        # relative from-import (from .b import helper; from ..pkg import f)
        via_site = self._resolve_from_site(rel, name)
        if via_site is not None:
            return via_site

        # cross-module: resolve the module part against project paths
        return self._resolve_dotted(rel, name)

    def _resolve_from_site(self, rel: str, name: str) -> Optional[str]:
        sites = self.modules[rel].get("imports", {}).get("from_sites", {})
        head, _, rest = name.partition(".")
        if head not in sites:
            return None
        level, module, orig = sites[head]
        if level:
            pkg_parts = rel.split("/")[:-1]
            if level - 1 > len(pkg_parts):
                return None
            base = pkg_parts[: len(pkg_parts) - (level - 1)]
            mod_dotted = ".".join(base + (module.split(".") if module else []))
        else:
            mod_dotted = module or ""
        symbol = orig + (f".{rest}" if rest else "")
        for candidate_mod, candidate_sym in (
            (mod_dotted, symbol),  # orig is a function/class in module
            (f"{mod_dotted}.{orig}" if mod_dotted else orig, rest),
        ):
            if not candidate_mod or not candidate_sym:
                continue
            target_rel = self._module_relpath(candidate_mod)
            if target_rel is None:
                continue
            if (target_rel, candidate_sym) in self.local_defs:
                return self.local_defs[(target_rel, candidate_sym)]
            init = f"{candidate_sym}.__init__"
            if (target_rel, init) in self.local_defs:
                return self.local_defs[(target_rel, init)]
        return None

    def _resolve_dotted(self, rel: str, dotted: str) -> Optional[str]:
        """``campaign.pool.submit_job`` / ``pool.submit_job`` → node."""
        parts = dotted.split(".")
        # try successively shorter module prefixes, longest first
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            func = ".".join(parts[split:])
            target_rel = self._module_relpath(module)
            if target_rel is None:
                continue
            if (target_rel, func) in self.local_defs:
                return self.local_defs[(target_rel, func)]
            if (target_rel, f"{func}.__init__") in self.local_defs:
                return self.local_defs[(target_rel, f"{func}.__init__")]
        return None

    def _module_relpath(self, dotted: str) -> Optional[str]:
        """Match a dotted module name to a project relpath by suffix."""
        if dotted in self.module_index:
            return self.module_index[dotted]
        # absolute imports carry the installed package prefix
        # (repro.campaign.pool) while relpaths are package-relative
        # (campaign/pool.py): match on dotted suffix
        for known, rel in self.module_index.items():
            if dotted.endswith("." + known) or known.endswith("." + dotted):
                return rel
        for known, rel in self.module_index.items():
            if known.split(".")[-1] == dotted:
                return rel
        return None

    def _build_edges(self) -> None:
        for rel, facts in self.modules.items():
            for qual, fn in facts["functions"].items():
                node = self.node_for(rel, qual)
                out = self.edges.setdefault(node, set())
                names: List[Optional[str]] = [c["fn"] for c in fn["calls"]]
                names += [site.get("target") for site in fn["fork_sites"]]
                names += list(fn.get("decorators", ()))
                # ref terms inside call args (callbacks, partial targets)
                for call in fn["calls"]:
                    for _, term in call["args"]:
                        names.extend(_ref_names(term))
                for name in names:
                    target = self.resolve(rel, qual, name)
                    if target is not None:
                        out.add(target)

    # -- queries --------------------------------------------------------
    def reachable(self, start: str, max_depth: int = 6) -> Set[str]:
        """Nodes reachable from ``start`` within ``max_depth`` edges."""
        seen = {start}
        frontier = deque([(start, 0)])
        while frontier:
            node, depth = frontier.popleft()
            if depth >= max_depth:
                continue
            for nxt in self.edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, depth + 1))
        return seen

    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())


def _ref_names(term: Dict) -> Iterable[str]:
    kind = term.get("k")
    if kind == "ref":
        yield term["fn"]
    elif kind == "join":
        for sub in term["t"]:
            yield from _ref_names(sub)
    elif kind == "call":
        for _, sub in term.get("args", ()):
            yield from _ref_names(sub)


def build_callgraph(modules: Dict[str, Dict]) -> CallGraph:
    return CallGraph(modules)
