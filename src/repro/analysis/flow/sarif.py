"""SARIF 2.1.0 rendering for lint findings (classic and deep alike).

One run object, one driver, rules drawn from the shared
:data:`repro.analysis.rules.RULE_CODES` registry.  Each result carries
the baseline fingerprint as a ``partialFingerprints`` entry so GitHub
code scanning tracks findings across commits the same way the local
baseline does.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from ..rules import RULE_CODES, Violation
from .baseline import fingerprint_all

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _region(v: Violation) -> Dict:
    region: Dict = {"startLine": max(v.line, 1), "startColumn": max(v.col, 1)}
    if v.end_line:
        region["endLine"] = v.end_line
        if v.end_col:
            region["endColumn"] = v.end_col
    return region


def render_sarif(
    violations: Sequence[Violation],
    tool_name: str = "simlint",
    prefix: Optional[str] = None,
) -> str:
    """Serialize findings as a SARIF log (``prefix`` rebases file URIs)."""
    rules = [
        {
            "id": code,
            "name": rule.replace("-", " ").title().replace(" ", ""),
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule, (code, summary) in sorted(
            RULE_CODES.items(), key=lambda item: item[1][0]
        )
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for v, fp in zip(violations, fingerprint_all(violations)):
        uri = f"{prefix}{v.path}" if prefix else v.path
        results.append(
            {
                "ruleId": v.code,
                "ruleIndex": rule_index[v.code],
                "level": "error",
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": _region(v),
                        }
                    }
                ],
                "partialFingerprints": {"simlint/v1": fp},
            }
        )
    log = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": (
                            "https://github.com/paper-repro/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
