"""Suppression baseline: CI fails only on *new* findings.

A baseline is a committed JSON document of finding fingerprints.  The
fingerprint deliberately excludes line numbers — it is built from
``(rule, path, context, occurrence-index)`` where *context* is the
semantic anchor the rule recorded (function + attribute, function +
resource name …) and the occurrence index disambiguates repeats of the
same anchor.  Editing unrelated lines above a baselined finding
therefore does not resurrect it, while a genuinely new instance of the
same hazard in the same function does fail CI.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ..rules import Violation

__all__ = [
    "fingerprint_all",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

_BASELINE_VERSION = 1


def fingerprint_all(violations: Sequence[Violation]) -> List[str]:
    """Stable fingerprint per finding (order follows the input)."""
    seen: Counter = Counter()
    prints: List[str] = []
    for v in violations:
        anchor = (v.rule, v.path, v.context)
        index = seen[anchor]
        seen[anchor] += 1
        raw = f"{v.rule}|{v.path}|{v.context}|{index}"
        prints.append(hashlib.sha256(raw.encode("utf-8")).hexdigest()[:20])
    return prints


def load_baseline(path: Path) -> Dict[str, str]:
    """fingerprint -> short description; empty when absent/invalid."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if payload.get("version") != _BASELINE_VERSION:
        return {}
    prints = payload.get("fingerprints")
    return dict(prints) if isinstance(prints, dict) else {}


def write_baseline(path: Path, violations: Sequence[Violation]) -> int:
    """Write the baseline for the given findings; returns the count."""
    prints = fingerprint_all(violations)
    payload = {
        "version": _BASELINE_VERSION,
        "fingerprints": {
            fp: f"{v.code} {v.path}:{v.line} {v.context or v.message[:60]}"
            for fp, v in zip(prints, violations)
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return len(violations)


def apply_baseline(
    violations: Sequence[Violation], baseline: Dict[str, str]
) -> Tuple[List[Violation], int]:
    """``(surviving findings, suppressed count)``."""
    if not baseline:
        return list(violations), 0
    prints = fingerprint_all(violations)
    kept = [v for v, fp in zip(violations, prints) if fp not in baseline]
    return kept, len(violations) - len(kept)
