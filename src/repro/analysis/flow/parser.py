"""File collection, content hashing, and the incremental summary cache.

The deep pass's per-module facts (:mod:`.summaries`) are pure functions
of file content, so they cache trivially: one JSON document maps each
relative path to ``{"sha": <content hash>, "facts": {...}}``.  A warm run
re-hashes every file (cheap) and only re-parses the ones whose hash
moved; everything interprocedural (call graph, taint fixpoint, rule
scoping) is recomputed from the summaries each run, which is what keeps
the cache key config-independent.

The cache document carries a version stamp combining the schema version
with :data:`repro.analysis.flow.summaries.FACTS_VERSION`; any mismatch
discards the whole cache rather than attempting migration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ConfigError
from .summaries import FACTS_VERSION, extract_module

__all__ = ["SummaryCache", "ModuleSet", "collect_files", "load_modules"]

_CACHE_SCHEMA = 1
_CACHE_FILENAME = "summaries.json"


def cache_stamp() -> str:
    return f"{_CACHE_SCHEMA}.{FACTS_VERSION}"


def collect_files(roots: Sequence[Path]) -> List[Tuple[Path, str]]:
    """Every ``*.py`` under each root as ``(path, relpath)`` pairs.

    Mirrors :func:`repro.analysis.simlint.lint_paths` collection order so
    classic and deep findings sort identically.
    """
    files: List[Tuple[Path, str]] = []
    for root in roots:
        root = Path(root)
        if root.is_file():
            files.append((root, root.name))
            continue
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            files.append((path, path.relative_to(root).as_posix()))
    return files


class SummaryCache:
    """Content-hash keyed store of per-module facts.

    ``cache_dir=None`` disables persistence entirely (library default);
    the CLI points it at ``$REPRO_LINT_CACHE`` or ``.simlint_cache``.

    Other passes reuse this store with their own document: ``filename``
    picks the file inside the cache dir and ``stamp`` the version string
    that invalidates it (the kernel pass folds its shape-contract
    registry hash into the stamp, for example).
    """

    def __init__(
        self,
        cache_dir: Optional[Path],
        filename: str = _CACHE_FILENAME,
        stamp: Optional[str] = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.filename = filename
        self.stamp = stamp if stamp is not None else cache_stamp()
        self.entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        self._loaded_stamp: Optional[str] = None
        if self.cache_dir is not None:
            self._load()

    def _path(self) -> Path:
        if self.cache_dir is None:
            raise ConfigError("summary cache is disabled (no cache_dir)")
        return self.cache_dir / self.filename

    def _load(self) -> None:
        try:
            payload = json.loads(self._path().read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if payload.get("version") != self.stamp:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self.entries = entries
            self._loaded_stamp = payload["version"]

    def save(self) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {"version": self.stamp, "entries": self.entries}
        tmp = self._path().with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self._path())

    def lookup(self, relpath: str, sha: str) -> Tuple[bool, Optional[Dict]]:
        """``(hit, facts)`` — facts may be None for cached parse failures."""
        entry = self.entries.get(relpath)
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            return True, entry["facts"]
        self.misses += 1
        return False, None

    def store(self, relpath: str, sha: str, facts: Optional[Dict]) -> None:
        self.entries[relpath] = {"sha": sha, "facts": facts}

    def prune(self, live_relpaths: Sequence[str]) -> None:
        live = set(live_relpaths)
        for stale in [k for k in self.entries if k not in live]:
            del self.entries[stale]


@dataclass
class ModuleSet:
    """Everything the interprocedural phases need, plus cache telemetry."""

    #: relpath -> module facts (parse failures excluded)
    modules: Dict[str, Dict] = field(default_factory=dict)
    #: relpaths that failed to parse (classic pass reports these)
    unparsed: List[str] = field(default_factory=list)
    #: relpath -> absolute source path (for pragma re-reads)
    sources: Dict[str, Path] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0


def load_modules(
    roots: Sequence[Path], cache: Optional[SummaryCache] = None
) -> ModuleSet:
    """Hash, (re)summarize, and collect facts for every module."""
    cache = cache or SummaryCache(None)
    result = ModuleSet()
    files = collect_files(roots)
    for path, rel in files:
        try:
            raw = path.read_bytes()
        except OSError:
            result.unparsed.append(rel)
            continue
        sha = hashlib.sha256(raw).hexdigest()
        hit, facts = cache.lookup(rel, sha)
        if not hit:
            facts = extract_module(rel, raw.decode("utf-8", errors="replace"))
            cache.store(rel, sha, facts)
        result.sources[rel] = path
        if facts is None:
            result.unparsed.append(rel)
        else:
            result.modules[rel] = facts
    cache.prune([rel for _, rel in files])
    cache.save()
    result.cache_hits = cache.hits
    result.cache_misses = cache.misses
    return result
