"""The SIM2xx deep rule family: scoping, messages, fact interpretation.

The extractor (:mod:`.summaries`) records *candidates*; this module
decides which of them are findings under a :class:`DeepConfig` — the
deep-pass analogue of :class:`repro.analysis.simlint.LintConfig`, with
per-rule path scopes chosen to match where each hazard is meaningful:

* SIM201 sinks are the simulation kernels (a tainted write to serve's
  own bookkeeping is not a reproducibility bug; one into a router is);
* SIM202 only applies where multiple tasks share an event loop (serve);
* SIM203 only applies where the tree actually forks (campaign, serve,
  resilience);
* SIM204/205 are global — unit confusion and leaked resources are wrong
  everywhere.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..rules import Violation, register_rules
from .callgraph import CallGraph
from .taint import TaintAnalysis

__all__ = ["DEEP_RULES", "DeepConfig", "deep_violations"]

#: rule name -> (code, summary) — same shape as the classic RULES table
DEEP_RULES: Dict[str, tuple] = {
    "nondeterminism-taint": (
        "SIM201",
        "nondeterministic value flows into simulation-visible state",
    ),
    "await-atomicity": (
        "SIM202",
        "read-modify-write of shared state spans an await",
    ),
    "fork-unsafety": (
        "SIM203",
        "resource created pre-fork is used in the forked child",
    ),
    "unit-confusion": (
        "SIM204",
        "simulated-cycle and wall-clock quantities mixed",
    ),
    "resource-lifecycle": (
        "SIM205",
        "resource can leak on an error path",
    ),
}

register_rules(DEEP_RULES)


def _matches(relpath: str, patterns: Iterable[str]) -> bool:
    return any(fnmatch.fnmatch(relpath, p) for p in patterns)


@dataclass
class DeepConfig:
    """Scoping for the SIM2xx rules (all patterns are lint-root relative)."""

    enabled: Tuple[str, ...] = tuple(DEEP_RULES)
    #: rule name -> exempt path globs
    allow_paths: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: where tainted state writes are simulation-visible (SIM201 sinks)
    taint_sink_paths: Tuple[str, ...] = (
        "core/*",
        "noc/*",
        "noc_gpu/*",
        "fullsys/*",
        "abstractnet/*",
        "dram/*",
    )
    #: where coroutines share an event loop (SIM202)
    async_state_paths: Tuple[str, ...] = ("serve/*",)
    #: where processes fork (SIM203)
    fork_paths: Tuple[str, ...] = ("campaign/*", "serve/*", "resilience/*")
    #: unit discipline applies everywhere (SIM204)
    unit_paths: Tuple[str, ...] = ("*",)
    #: resource discipline applies everywhere (SIM205)
    resource_paths: Tuple[str, ...] = ("*",)

    def applies(self, rule: str, relpath: str) -> bool:
        if rule not in self.enabled:
            return False
        if _matches(relpath, self.allow_paths.get(rule, ())):
            return False
        scope = {
            "nondeterminism-taint": self.taint_sink_paths,
            "await-atomicity": self.async_state_paths,
            "fork-unsafety": self.fork_paths,
            "unit-confusion": self.unit_paths,
            "resource-lifecycle": self.resource_paths,
        }[rule]
        return _matches(relpath, scope)


def _violation(
    rel: str,
    loc: List[int],
    end: List[int],
    rule: str,
    message: str,
    context: str,
) -> Violation:
    return Violation(
        rel,
        loc[0],
        loc[1],
        rule,
        message,
        end_line=end[0],
        end_col=end[1] if end[0] else 0,
        context=context,
    )


# -- SIM202 -------------------------------------------------------------
def _sim202(rel: str, facts: Dict) -> List[Violation]:
    out: List[Violation] = []
    # shared-state precondition: the attribute is touched by >1 function
    # of the module (two coroutines, or a coroutine plus anything else)
    touchers: Dict[Tuple[Optional[str], str], int] = {}
    for fn in facts["functions"].values():
        for attr in set(fn["attr_reads"]) | set(fn["attr_writes"]):
            key = (fn.get("class"), attr)
            touchers[key] = touchers.get(key, 0) + 1
    for qual, fn in facts["functions"].items():
        for hazard in fn["async_hazards"]:
            key = (fn.get("class"), hazard["attr"])
            if touchers.get(key, 0) < 2:
                continue
            out.append(
                _violation(
                    rel,
                    hazard["loc"],
                    hazard.get("end", [0, 0]),
                    "await-atomicity",
                    f"`self.{hazard['attr']}` is read before an await and "
                    f"written after it in `{qual}`; another task can "
                    "interleave at the suspension point — recompute after "
                    "the await or guard with an async lock",
                    context=f"{qual}:{hazard['attr']}",
                )
            )
    return out


# -- SIM203 -------------------------------------------------------------
def _sim203(rel: str, facts: Dict, graph: CallGraph) -> List[Violation]:
    out: List[Violation] = []
    # collect pre-fork resources visible to this module's classes/globals
    class_resources: Dict[str, List[Dict]] = {
        cls: info["resources"] for cls, info in facts["classes"].items()
    }
    global_resources = {
        r["name"]: r for r in facts.get("module_resources", ())
    }
    for qual, fn in facts["functions"].items():
        cls = fn.get("class")
        for site in fn["fork_sites"]:
            target = site.get("target")
            target_node = graph.resolve(rel, qual, target)
            if target_node is None:
                continue
            reach = graph.reachable(target_node, max_depth=6)
            used_attrs: set = set()
            used_globals: set = set()
            for node in reach:
                node_rel, _, node_qual = node.partition("::")
                node_fn = graph.modules[node_rel]["functions"][node_qual]
                used_attrs |= set(node_fn["attr_reads"]) | set(
                    node_fn["attr_writes"]
                )
                used_globals |= set(node_fn["global_reads"])
            hazards: List[str] = []
            if cls:
                for res in class_resources.get(cls, ()):
                    if res["name"] in used_attrs:
                        hazards.append(
                            f"self.{res['name']} ({res['kind']})"
                        )
            for name, res in global_resources.items():
                if name in used_globals:
                    hazards.append(f"{name} ({res['kind']})")
            if hazards:
                out.append(
                    _violation(
                        rel,
                        site["loc"],
                        site.get("end", [0, 0]),
                        "fork-unsafety",
                        f"fork target `{target}` reaches pre-fork "
                        f"resource(s) {', '.join(sorted(hazards))}; "
                        "inherited handles are invalid or shared in the "
                        "child — open them post-fork instead",
                        context=f"{qual}:{target}",
                    )
                )
    return out


# -- SIM204 -------------------------------------------------------------
def _sim204(rel: str, facts: Dict) -> List[Violation]:
    out: List[Violation] = []
    for qual, fn in facts["functions"].items():
        for mix in fn["unit_mixes"]:
            out.append(
                _violation(
                    rel,
                    mix["loc"],
                    mix.get("end", [0, 0]),
                    "unit-confusion",
                    f"mixes simulated cycles with wall-clock time in "
                    f"`{qual}`: {mix['detail']} — convert explicitly or "
                    "keep the domains apart",
                    context=f"{qual}:{mix['detail']}",
                )
            )
    return out


# -- SIM205 -------------------------------------------------------------
def _sim205(rel: str, facts: Dict) -> List[Violation]:
    out: List[Violation] = []
    for qual, fn in facts["functions"].items():
        for leak in fn["resource_leaks"]:
            if leak["mode"] == "never-released":
                detail = (
                    f"`{leak['name']}` ({leak['kind']}) acquired in "
                    f"`{qual}` is never released and never escapes"
                )
            else:
                detail = (
                    f"`{leak['name']}` ({leak['kind']}) acquired in "
                    f"`{qual}` leaks if a call between acquire and "
                    "release raises — close it in a finally block or "
                    "use a with statement"
                )
            out.append(
                _violation(
                    rel,
                    leak["loc"],
                    leak.get("end", [0, 0]),
                    "resource-lifecycle",
                    detail,
                    context=f"{qual}:{leak['name']}",
                )
            )
    return out


# -- SIM201 -------------------------------------------------------------
def _sim201(rel: str, taint: TaintAnalysis) -> List[Violation]:
    out: List[Violation] = []
    for finding in taint.findings_for(rel):
        attr = finding["attr"]
        target = attr[2:] if attr.startswith("g:") else f"self.{attr}"
        out.append(
            _violation(
                rel,
                finding["loc"],
                finding.get("end", [0, 0]),
                "nondeterminism-taint",
                f"value from {finding['source']} reaches simulation state "
                f"`{target}` via `{finding['via']}` without derive_seed "
                "or an explicit sort",
                context=f"{finding['via']}:{attr}",
            )
        )
    return out


def deep_violations(
    modules: Dict[str, Dict],
    graph: CallGraph,
    taint: TaintAnalysis,
    config: Optional[DeepConfig] = None,
) -> List[Violation]:
    """All SIM2xx findings for a summarized module set, scope-filtered."""
    config = config or DeepConfig()
    out: List[Violation] = []
    for rel, facts in modules.items():
        if config.applies("nondeterminism-taint", rel):
            out.extend(_sim201(rel, taint))
        if config.applies("await-atomicity", rel):
            out.extend(_sim202(rel, facts))
        if config.applies("fork-unsafety", rel):
            out.extend(_sim203(rel, facts, graph))
        if config.applies("unit-confusion", rel):
            out.extend(_sim204(rel, facts))
        if config.applies("resource-lifecycle", rel):
            out.extend(_sim205(rel, facts))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out
