"""SIM201: interprocedural nondeterminism taint.

Works in two phases over the cached summaries:

1. **Fixpoint** — for every function, compute (a) whether its return
   value can carry a nondeterminism source outright, and (b) which of
   its parameters flow into its return value or into simulation state
   (``self.X`` / global writes).  Both are iterated to a fixed point over
   the call graph so taint crosses any number of call hops, including
   recursion (the visited-set per evaluation breaks cycles).
2. **Reporting** — re-walk each *sink-scoped* function's state writes and
   call sites, evaluate their terms under the fixpoint tables, and emit
   one finding per tainted write (or per tainted argument passed into a
   parameter that some callee stores into state).

Sanitizers (``derive_seed``, ``sorted`` …) were already collapsed to
``clean`` terms at extraction time, so the fixpoint never needs to know
about them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph

__all__ = ["TaintAnalysis"]

_MAX_ROUNDS = 24


class TaintAnalysis:
    """Global taint tables plus finding generation."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.modules = graph.modules
        #: node -> source description when its return can be tainted
        self.returns_taint: Dict[str, Optional[str]] = {}
        #: node -> set of param indices that flow into the return value
        self.params_to_return: Dict[str, Set[int]] = {}
        #: node -> {param index -> state attr written}
        self.params_to_state: Dict[str, Dict[int, str]] = {}
        self._fixpoint()

    # -- term evaluation -------------------------------------------------
    def eval_term(
        self,
        rel: str,
        qual: str,
        term: Dict,
        visiting: Optional[Set[str]] = None,
    ) -> Tuple[Optional[str], Set[int]]:
        """``(source description | None, {param indices})`` for a term."""
        visiting = visiting if visiting is not None else set()
        kind = term.get("k")
        if kind == "src":
            return term["s"], set()
        if kind == "param":
            return None, {term["i"]}
        if kind == "join":
            src: Optional[str] = None
            params: Set[int] = set()
            for sub in term["t"]:
                s, p = self.eval_term(rel, qual, sub, visiting)
                src = src or s
                params |= p
            return src, params
        if kind == "call":
            return self._eval_call(rel, qual, term, visiting)
        return None, set()

    def _eval_call(
        self, rel: str, qual: str, term: Dict, visiting: Set[str]
    ) -> Tuple[Optional[str], Set[int]]:
        callee = self.graph.resolve(rel, qual, term.get("fn"))
        src: Optional[str] = None
        params: Set[int] = set()
        if callee is not None and callee not in visiting:
            src = self.returns_taint.get(callee)
            passthrough = self.params_to_return.get(callee, set())
            callee_params = self._param_names(callee)
            for key, arg in term.get("args", ()):
                idx = self._param_index(callee_params, key)
                if idx is not None and idx in passthrough:
                    s, p = self.eval_term(rel, qual, arg, visiting)
                    src = src or s
                    params |= p
        elif callee is None:
            # unresolved callee: taint passes through conservatively only
            # when an argument is already a direct source — a plain call
            # of a clean value stays clean (precision over recall)
            for _, arg in term.get("args", ()):
                s, p = self.eval_term(rel, qual, arg, visiting)
                src = src or s
                params |= p
        return src, params

    def _param_names(self, node: str) -> List[str]:
        rel, _, qual = node.partition("::")
        return self.modules[rel]["functions"][qual]["params"]

    @staticmethod
    def _param_index(names: List[str], key) -> Optional[int]:
        if isinstance(key, int):
            return key if key < len(names) else None
        if isinstance(key, str) and key in names:
            return names.index(key)
        return None

    # -- fixpoint ---------------------------------------------------------
    def _fixpoint(self) -> None:
        for rel, facts in self.modules.items():
            for qual in facts["functions"]:
                node = f"{rel}::{qual}"
                self.returns_taint[node] = None
                self.params_to_return[node] = set()
                self.params_to_state[node] = {}
        for _ in range(_MAX_ROUNDS):
            if not self._one_round():
                break

    def _one_round(self) -> bool:
        changed = False
        for rel, facts in self.modules.items():
            for qual, fn in facts["functions"].items():
                node = f"{rel}::{qual}"
                ret_src: Optional[str] = self.returns_taint[node]
                ret_params = set(self.params_to_return[node])
                for ret in fn["returns"]:
                    visiting = {node}
                    s, p = self.eval_term(rel, qual, ret["term"], visiting)
                    ret_src = ret_src or s
                    ret_params |= p
                state_params = dict(self.params_to_state[node])
                for write in fn["state_writes"]:
                    visiting = {node}
                    _, p = self.eval_term(rel, qual, write["term"], visiting)
                    for idx in p:
                        state_params.setdefault(idx, write["attr"])
                if ret_src != self.returns_taint[node]:
                    self.returns_taint[node] = ret_src
                    changed = True
                if ret_params != self.params_to_return[node]:
                    self.params_to_return[node] = ret_params
                    changed = True
                if state_params != self.params_to_state[node]:
                    self.params_to_state[node] = state_params
                    changed = True
        return changed

    # -- findings ---------------------------------------------------------
    def findings_for(self, rel: str) -> List[Dict]:
        """SIM201 raw findings for one (sink-scoped) module."""
        out: List[Dict] = []
        facts = self.modules[rel]
        for qual, fn in facts["functions"].items():
            node = f"{rel}::{qual}"
            for write in fn["state_writes"]:
                src, _ = self.eval_term(rel, qual, write["term"], {node})
                if src is not None:
                    out.append(
                        {
                            "loc": write["loc"],
                            "end": write.get("end", [0, 0]),
                            "attr": write["attr"],
                            "source": src,
                            "via": qual,
                        }
                    )
            # tainted argument into a callee that stores it in state
            for call in fn["calls"]:
                callee = self.graph.resolve(rel, qual, call.get("fn"))
                if callee is None:
                    continue
                to_state = self.params_to_state.get(callee, {})
                if not to_state:
                    continue
                names = self._param_names(callee)
                for key, arg in call["args"]:
                    idx = self._param_index(names, key)
                    if idx is None or idx not in to_state:
                        continue
                    src, _ = self.eval_term(rel, qual, arg, {node})
                    if src is not None:
                        out.append(
                            {
                                "loc": call["loc"],
                                "end": call.get("end", [0, 0]),
                                "attr": to_state[idx],
                                "source": src,
                                "via": f"{qual} → {callee.split('::')[1]}",
                            }
                        )
        return out
