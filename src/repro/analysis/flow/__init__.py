"""``repro.analysis.flow`` — interprocedural concurrency & determinism
analysis (the SIM2xx deep rule family).

Pipeline: :mod:`.summaries` extracts per-function dataflow facts in one
AST pass per module (cached by content hash in :mod:`.parser`);
:mod:`.callgraph` links them into a whole-program call graph;
:mod:`.taint` runs the SIM201 nondeterminism fixpoint; :mod:`.rules`
interprets the facts as findings under a :class:`DeepConfig`;
:mod:`.engine` drives the whole thing and merges with the classic pass;
:mod:`.sarif` and :mod:`.baseline` handle interchange and suppression.
"""

from .baseline import (
    apply_baseline,
    fingerprint_all,
    load_baseline,
    write_baseline,
)
from .callgraph import CallGraph, build_callgraph
from .engine import DeepReport, deep_lint_paths, run_deep
from .parser import ModuleSet, SummaryCache, collect_files, load_modules
from .rules import DEEP_RULES, DeepConfig, deep_violations
from .sarif import render_sarif
from .summaries import extract_module
from .taint import TaintAnalysis

__all__ = [
    "DEEP_RULES",
    "CallGraph",
    "DeepConfig",
    "DeepReport",
    "ModuleSet",
    "SummaryCache",
    "TaintAnalysis",
    "apply_baseline",
    "build_callgraph",
    "collect_files",
    "deep_lint_paths",
    "deep_violations",
    "extract_module",
    "fingerprint_all",
    "load_baseline",
    "load_modules",
    "render_sarif",
    "run_deep",
    "write_baseline",
]
