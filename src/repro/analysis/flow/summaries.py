"""Per-function dataflow summaries: one AST pass, pure JSON-able facts.

The extractor walks each module exactly once and records, per function:

* **taint terms** — every ``return``, simulation-state write (``self.X =``
  or declared-``global`` assignment), and call site is summarized as a
  small symbolic *term* describing where its value came from: a direct
  nondeterminism source, a parameter, another call, or clean.  Terms are
  plain dicts, so a module's facts serialize to JSON and can be cached by
  content hash; the interprocedural taint pass (:mod:`.taint`) evaluates
  them against the whole-program call graph.
* **async atomicity events** — read→await→dependent-write candidates for
  SIM202, with ``async with`` treated as a critical section.
* **resource lifecycle** — acquisitions (pipes, connections, files,
  temp artifacts), their releases, whether the release is guarded by a
  ``finally``/``except``, and whether the value escapes (SIM205).
* **unit tags** — wall-time vs simulated-cycle typing of locals, and any
  arithmetic/comparison that mixes the two (SIM204).
* **fork sites and resource definitions** — ``Process(target=...)``
  creations and connection/lock/file objects bound to ``self`` attributes
  or module globals, for the SIM203 reachability check.

Nothing here is a finding yet: :mod:`.rules` and :mod:`.taint` interpret
these facts under a :class:`~repro.analysis.flow.rules.DeepConfig`, which
is what keeps the cached facts config-independent.

Terms
-----

``{"k": "src", "s": <descr>, "loc": [line, col]}``
    a direct nondeterminism source (unseeded RNG, wall clock, entropy,
    ``id()``, unordered set materialization);
``{"k": "param", "i": <index>}``
    the function's i-th parameter (``self`` excluded for methods);
``{"k": "call", "fn": <name>, "args": [[pos-or-kwname, term], ...],
"loc": [line, col]}``
    the result of a call (resolved lazily against the call graph);
``{"k": "ref", "fn": <name>}``
    a reference to a function object (fork targets, partials);
``{"k": "join", "t": [terms]}``
    a value combined from several sources;
``{"k": "clean"}``
    statically untainted.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..rules import (
    _NP_RANDOM_SEEDABLE,
    _NP_RANDOM_SEEDED,
    _STDLIB_RANDOM_SEEDED,
    _WALL_CLOCK_CALLS,
    _dotted_name,
)

__all__ = ["extract_module", "FACTS_VERSION"]

#: bump when the facts schema or extraction logic changes (cache key part)
FACTS_VERSION = 1

CLEAN: Dict[str, Any] = {"k": "clean"}

#: calls that launder nondeterminism into something deterministic
_SANITIZERS = {
    "derive_seed",
    "repro.util.derive_seed",
    "util.derive_seed",
    "sorted",
    "len",
    "min",
    "max",
    "sum",
}

#: direct entropy sources beyond the RNG/wall-clock families
_ENTROPY_CALLS = {
    "os.urandom": "os.urandom()",
    "uuid.uuid1": "uuid.uuid1()",
    "uuid.uuid4": "uuid.uuid4()",
    "secrets.token_bytes": "secrets entropy",
    "secrets.token_hex": "secrets entropy",
    "secrets.randbits": "secrets entropy",
    "os.getpid": "os.getpid()",
}

#: resource factories for SIM203/SIM205, resolved call name -> kind
_RESOURCE_FACTORIES = {
    "open": "open file",
    "io.open": "open file",
    "gzip.open": "open file",
    "sqlite3.connect": "SQLite connection",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "http.client.HTTPConnection": "HTTP connection",
    "subprocess.Popen": "child process",
    "tempfile.NamedTemporaryFile": "temp file",
    "tempfile.TemporaryFile": "temp file",
    "tempfile.TemporaryDirectory": "temp directory",
    "tempfile.mkstemp": "temp file",
    "tempfile.mkdtemp": "temp directory",
}

#: lock-ish factories: fork-hazard resources but not SIM205 leak candidates
_LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "condition",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
}

_CLOSE_METHODS = {
    "close",
    "terminate",
    "kill",
    "shutdown",
    "release",
    "cleanup",
    "unlink",
}

_CYCLE_NAME = re.compile(r"(?:^|_)(?:cycles?|quanta|quantum)(?:$|_)")
_WALL_NAME = re.compile(r"(?:^|_)wall(?:$|_)|_s$|_seconds$|_secs$")

#: wall-clock producing calls (classic set plus the sanctioned wrapper)
_WALL_CALLS = set(_WALL_CLOCK_CALLS) | {"now_monotonic", "pool.now_monotonic"}


def _loc(node: ast.AST) -> List[int]:
    return [getattr(node, "lineno", 0), getattr(node, "col_offset", 0) + 1]


def _end(node: ast.AST) -> List[int]:
    return [
        getattr(node, "end_lineno", 0) or 0,
        (getattr(node, "end_col_offset", 0) or 0) + 1,
    ]


def _join(terms: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    keep = [t for t in terms if t.get("k") != "clean"]
    if not keep:
        return CLEAN
    if len(keep) == 1:
        return keep[0]
    return {"k": "join", "t": keep}


def _names_in(node: ast.AST) -> List[str]:
    return [n.id for n in ast.walk(node) if isinstance(n, ast.Name)]


class _ImportTable:
    """Alias resolution for one module (imports at any nesting depth)."""

    def __init__(self, tree: ast.Module) -> None:
        #: alias -> dotted module ("np" -> "numpy")
        self.modules: Dict[str, str] = {}
        #: from-imported name -> dotted origin ("connect" -> "sqlite3.connect")
        self.names: Dict[str, str] = {}
        #: from-imported name -> (relative level, module-or-None) for
        #: project-local call-graph resolution
        self.from_sites: Dict[str, Tuple[int, Optional[str], str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_sites[local] = (node.level, node.module, alias.name)
                    if node.module and not node.level:
                        self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.modules:
            head = self.modules[head]
        elif head in self.names:
            head = self.names[head]
        return f"{head}.{rest}" if rest else head


def _source_descr(resolved: str, node: ast.Call) -> Optional[str]:
    """Is this resolved call a direct nondeterminism source?"""
    if resolved in _WALL_CALLS:
        return f"wall clock ({resolved})"
    if resolved in _ENTROPY_CALLS:
        return _ENTROPY_CALLS[resolved]
    if resolved == "id":
        return "id() (memory address)"
    if resolved.startswith("random."):
        leaf = resolved.split(".", 1)[1]
        if leaf not in _STDLIB_RANDOM_SEEDED:
            return f"unseeded RNG ({resolved})"
    if resolved.startswith("numpy.random."):
        leaf = resolved.rsplit(".", 1)[1]
        if leaf in _NP_RANDOM_SEEDED:
            return None
        if leaf in _NP_RANDOM_SEEDABLE and (node.args or node.keywords):
            return None
        return f"unseeded RNG ({resolved})"
    return None


class _FunctionExtractor:
    """One linear pass over a function body, accumulating every fact."""

    def __init__(
        self,
        module_facts: "_ModuleExtractor",
        qualname: str,
        node: ast.AST,
        class_name: Optional[str],
    ) -> None:
        self.m = module_facts
        self.qualname = qualname
        self.node = node
        self.class_name = class_name
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        args = node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        self.self_name: Optional[str] = None
        if class_name and names and names[0] in ("self", "cls"):
            self.self_name = names.pop(0)
        self.params = names
        self.env: Dict[str, Dict[str, Any]] = {
            name: {"k": "param", "i": i} for i, name in enumerate(names)
        }
        self.set_names: set = set()
        self.unit_env: Dict[str, str] = {}
        self.global_names: set = set()
        # outputs
        self.returns: List[Dict[str, Any]] = []
        self.state_writes: List[Dict[str, Any]] = []
        self.calls: List[Dict[str, Any]] = []
        self.fork_sites: List[Dict[str, Any]] = []
        self.attr_reads: set = set()
        self.attr_writes: set = set()
        self.global_reads: set = set()
        self.async_hazards: List[Dict[str, Any]] = []
        self.unit_mixes: List[Dict[str, Any]] = []
        self.resource_leaks: List[Dict[str, Any]] = []
        # async-atomicity state
        self.await_count = 0
        self.lock_depth = 0
        self.attr_read_at: Dict[str, Tuple[int, set]] = {}
        # resource-lifecycle state
        self.resources: Dict[str, Dict[str, Any]] = {}
        self.call_clock = 0
        self.guard_depth = 0  # inside a finally/except block

    # -- entry ----------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        self.walk_block(self.node.body)  # type: ignore[attr-defined]
        self.finish_resources()
        decorators = [
            self.m.imports.resolve(_dotted_name(d.func if isinstance(d, ast.Call) else d))
            for d in getattr(self.node, "decorator_list", [])
        ]
        return {
            "name": self.qualname,
            "class": self.class_name,
            "params": self.params,
            "is_async": self.is_async,
            "lineno": getattr(self.node, "lineno", 0),
            "decorators": [d for d in decorators if d],
            "returns": self.returns,
            "state_writes": self.state_writes,
            "calls": self.calls,
            "fork_sites": self.fork_sites,
            "attr_reads": sorted(self.attr_reads),
            "attr_writes": sorted(self.attr_writes),
            "global_reads": sorted(self.global_reads),
            "async_hazards": self.async_hazards,
            "unit_mixes": self.unit_mixes,
            "resource_leaks": self.resource_leaks,
        }

    # -- expression evaluation ------------------------------------------
    def eval(self, node: Optional[ast.AST]) -> Dict[str, Any]:
        """Taint term of an expression (records calls/sources on the way)."""
        if node is None:
            return CLEAN
        if isinstance(node, ast.Await):
            self.await_count += 1
            return self.eval(node.value)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            origin = self.m.imports.resolve(node.id)
            if (
                node.id in self.m.function_names
                or origin != node.id
                or node.id in self.m.imports.from_sites
            ):
                return {"k": "ref", "fn": origin or node.id}
            self.note_global_read(node.id)
            return CLEAN
        if isinstance(node, ast.Attribute):
            attr = self.self_attr(node)
            if attr is not None:
                self.note_attr_read(attr, node)
                # a self-attribute can be a bound method (fork targets,
                # callbacks): keep the name as a ref for the call graph
                return {"k": "ref", "fn": f"self.{attr}"}
            self.eval(node.value)
            return CLEAN
        if isinstance(node, (ast.BinOp,)):
            self.check_units(node)
            return _join([self.eval(node.left), self.eval(node.right)])
        if isinstance(node, ast.Compare):
            self.check_units(node)
            return _join([self.eval(node.left)] + [self.eval(c) for c in node.comparators])
        if isinstance(node, ast.BoolOp):
            return _join([self.eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return _join([self.eval(node.body), self.eval(node.orelse)])
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _join([self.eval(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            terms = [self.eval(v) for v in node.values if v is not None]
            terms += [self.eval(k) for k in node.keys if k is not None]
            return _join(terms)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.JoinedStr):
            return _join([self.eval(v) for v in node.values])
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                if self.is_set_expr(gen.iter):
                    self.bind_comp_target(gen.target, self.set_iter_source(gen.iter))
                else:
                    self.bind_comp_target(gen.target, self.eval(gen.iter))
            return self.eval(node.elt)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self.eval(gen.iter)
            return _join([self.eval(node.key), self.eval(node.value)])
        if isinstance(node, ast.Lambda):
            return CLEAN
        if isinstance(node, ast.NamedExpr):
            term = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = term
            return term
        if isinstance(node, ast.Constant):
            return CLEAN
        # fall through: evaluate children for their side records
        for child in ast.iter_child_nodes(node):
            self.eval(child)
        return CLEAN

    def eval_call(self, node: ast.Call) -> Dict[str, Any]:
        resolved = self.m.imports.resolve(_dotted_name(node.func)) or ""
        if not resolved and isinstance(node.func, ast.Attribute):
            # method on a computed object: evaluate receiver, keep leaf name
            self.eval(node.func.value)
            resolved = f"?.{node.func.attr}"
        elif resolved.startswith(("self.", "cls.")):
            # a self.X.y(...) call reads attribute X (SIM202/203 care)
            parts = resolved.split(".")
            if len(parts) >= 3:
                self.note_attr_read(parts[1], node)
        arg_terms: List[List[Any]] = []
        for i, arg in enumerate(node.args):
            arg_terms.append([i, self.eval(arg)])
        for kw in node.keywords:
            arg_terms.append([kw.arg or "**", self.eval(kw.value)])

        descr = _source_descr(resolved, node)
        if descr is not None:
            return {"k": "src", "s": descr, "loc": _loc(node)}
        leaf = resolved.rsplit(".", 1)[-1]
        if resolved in _SANITIZERS or leaf in ("derive_seed",):
            return CLEAN
        if resolved in ("list", "tuple", "iter") and node.args and self.is_set_expr(
            node.args[0]
        ):
            return {
                "k": "src",
                "s": "unordered set materialization",
                "loc": _loc(node),
            }
        self.check_fork_site(node, resolved, arg_terms)
        term = {"k": "call", "fn": resolved, "args": arg_terms, "loc": _loc(node)}
        self.calls.append(
            {"fn": resolved, "args": arg_terms, "loc": _loc(node), "end": _end(node)}
        )
        return term

    # -- helpers --------------------------------------------------------
    def self_attr(self, node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and self.self_name is not None
            and node.value.id == self.self_name
        ):
            return node.attr
        return None

    def note_attr_read(self, attr: str, node: ast.AST) -> None:
        self.attr_reads.add(attr)
        if self.is_async and not self.lock_depth:
            prior = self.attr_read_at.get(attr)
            if prior is None or prior[0] < self.await_count:
                self.attr_read_at[attr] = (self.await_count, set())

    def note_global_read(self, name: str) -> None:
        if name not in self.env and not name.startswith("__"):
            self.global_reads.add(name)

    def bind_comp_target(self, target: ast.AST, term: Dict[str, Any]) -> None:
        for name in _names_in(target):
            self.env[name] = term

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _dotted_name(node.func) in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        attr = self.self_attr(node)
        return attr is not None and attr in self.m.set_attrs

    def set_iter_source(self, node: ast.AST) -> Dict[str, Any]:
        return {"k": "src", "s": "unordered set iteration", "loc": _loc(node)}

    # -- units (SIM204) --------------------------------------------------
    def unit_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            resolved = self.m.imports.resolve(_dotted_name(node.func)) or ""
            if resolved in _WALL_CALLS:
                return "wall"
            leaf = resolved.rsplit(".", 1)[-1]
            if _CYCLE_NAME.search(leaf):
                return "cycle"
            return None
        if isinstance(node, ast.Name):
            if node.id in self.unit_env:
                return self.unit_env[node.id]
            return self.unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return self.unit_of_name(node.attr)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left, right = self.unit_of(node.left), self.unit_of(node.right)
            return left or right
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        return None

    @staticmethod
    def unit_of_name(name: str) -> Optional[str]:
        lowered = name.lower()
        if _CYCLE_NAME.search(lowered):
            return "cycle"
        if _WALL_NAME.search(lowered):
            return "wall"
        return None

    def check_units(self, node: ast.AST) -> None:
        """Flag +,- or comparisons mixing wall-clock and cycle quantities."""
        pairs: List[Tuple[ast.AST, ast.AST]] = []
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            pairs.append((node.left, node.right))
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            pairs.extend(zip(operands, operands[1:]))
        for left, right in pairs:
            lu, ru = self.unit_of(left), self.unit_of(right)
            if lu and ru and lu != ru:
                self.unit_mixes.append(
                    {
                        "loc": _loc(node),
                        "end": _end(node),
                        "left": lu,
                        "right": ru,
                        "detail": f"{ast.unparse(left)} ({lu}) vs "
                        f"{ast.unparse(right)} ({ru})",
                    }
                )

    # -- fork sites (SIM203) ---------------------------------------------
    def check_fork_site(
        self, node: ast.Call, resolved: str, arg_terms: List[List[Any]]
    ) -> None:
        if not (resolved == "Process" or resolved.endswith(".Process")):
            return
        target: Optional[str] = None
        for key, term in arg_terms:
            if key == "target":
                target = self.ref_name(term)
        self.fork_sites.append(
            {"target": target, "loc": _loc(node), "end": _end(node)}
        )

    @staticmethod
    def ref_name(term: Dict[str, Any]) -> Optional[str]:
        if term.get("k") == "ref":
            return term["fn"]
        if term.get("k") == "call" and term.get("fn", "").endswith("partial"):
            for _, arg in term.get("args", []):
                if arg.get("k") == "ref":
                    return arg["fn"]
        return None

    # -- resources (SIM205) ----------------------------------------------
    def resource_kind(self, resolved: str) -> Optional[str]:
        if resolved in _RESOURCE_FACTORIES:
            return _RESOURCE_FACTORIES[resolved]
        if resolved == "Pipe" or resolved.endswith(".Pipe"):
            return "pipe"
        return None

    def open_resource(self, name: str, kind: str, node: ast.AST) -> None:
        self.resources[name] = {
            "kind": kind,
            "loc": _loc(node),
            "end": _end(node),
            "opened_at": self.call_clock,
            "closed_at": None,
            "guarded": False,
            "escaped": False,
            "weak_escape": False,
        }

    def note_escape(self, node: ast.AST, weak: bool) -> None:
        for name in _names_in(node):
            res = self.resources.get(name)
            if res is not None:
                res["weak_escape" if weak else "escaped"] = True

    def note_close(self, node: ast.Call) -> bool:
        """True when this call is ``<resource>.close()``-like."""
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _CLOSE_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            res = self.resources.get(node.func.value.id)
            if res is not None and res["closed_at"] is None:
                res["closed_at"] = self.call_clock
                if self.guard_depth:
                    res["guarded"] = True
                return True
        return False

    def finish_resources(self) -> None:
        for name, res in self.resources.items():
            if res["escaped"]:
                continue
            if res["closed_at"] is None:
                if res["weak_escape"]:
                    continue
                self.resource_leaks.append(
                    {
                        "name": name,
                        "kind": res["kind"],
                        "loc": res["loc"],
                        "end": res["end"],
                        "mode": "never-released",
                    }
                )
            elif not res["guarded"] and res["closed_at"] > res["opened_at"]:
                # released only on the straight-line path: a raise from any
                # call between acquire and release leaks it
                self.resource_leaks.append(
                    {
                        "name": name,
                        "kind": res["kind"],
                        "loc": res["loc"],
                        "end": res["end"],
                        "mode": "error-path",
                    }
                )

    # -- statements ------------------------------------------------------
    def walk_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.m.extract_function(stmt, parent=self.qualname, class_name=None)
            return
        if isinstance(stmt, ast.ClassDef):
            self.m.extract_class(stmt, parent=self.qualname)
            return
        if isinstance(stmt, ast.Global):
            self.global_names.update(stmt.names)
            return
        if isinstance(stmt, ast.Return):
            term = self.eval(stmt.value)
            if stmt.value is not None:
                self.returns.append({"term": term, "loc": _loc(stmt)})
                self.note_escape(stmt.value, weak=False)
            return
        if isinstance(stmt, ast.Assign):
            self.handle_assign(stmt.targets, stmt.value, stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.handle_assign([stmt.target], stmt.value, stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            self.handle_aug_assign(stmt)
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call) and self.note_close(stmt.value):
                for arg in stmt.value.args:
                    self.eval(arg)
                return
            self.bump_call_clock(stmt)
            self.eval(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.bump_call_clock(stmt.test)
            self.eval(stmt.test)
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.bump_call_clock(stmt.iter)
            if self.is_set_expr(stmt.iter):
                self.bind_comp_target(stmt.target, self.set_iter_source(stmt.iter))
            else:
                term = self.eval(stmt.iter)
                self.bind_comp_target(stmt.target, term)
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self.walk_block(stmt.body)
            self.guard_depth += 1
            for handler in stmt.handlers:
                self.walk_block(handler.body)
            self.walk_block(stmt.finalbody)
            self.guard_depth -= 1
            self.walk_block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            is_lock = isinstance(stmt, ast.AsyncWith)
            with_names = set()
            for item in stmt.items:
                self.bump_call_clock(item.context_expr)
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    with_names.update(_names_in(item.optional_vars))
            if is_lock:
                self.lock_depth += 1
                self.attr_read_at.clear()
            self.walk_block(stmt.body)
            if is_lock:
                self.lock_depth -= 1
                self.attr_read_at.clear()
            # with-managed names never leak; forget any accidental tracking
            for name in with_names:
                self.resources.pop(name, None)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
            return
        if isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Pass, ast.Break,
                             ast.Continue, ast.Nonlocal)):
            return
        if isinstance(stmt, (ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
            return
        # anything else: evaluate child expressions, walk child blocks
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child)
            elif isinstance(child, ast.stmt):
                self.walk_stmt(child)

    def bump_call_clock(self, node: ast.AST) -> None:
        if any(isinstance(n, ast.Call) for n in ast.walk(node)):
            self.call_clock += 1

    def handle_assign(
        self, targets: Sequence[ast.AST], value: ast.AST, stmt: ast.stmt
    ) -> None:
        awaits_before = self.await_count
        reads_before = dict(self.attr_read_at)
        self.bump_call_clock(value)
        term = self.eval(value)
        awaits_in_rhs = self.await_count - awaits_before
        rhs_names = set(_names_in(value))
        rhs_attrs = {
            a for a in (self.self_attr(n) for n in ast.walk(value)) if a is not None
        }

        # resource acquisition?
        kind = None
        if isinstance(value, ast.Call):
            resolved = self.m.imports.resolve(_dotted_name(value.func)) or ""
            kind = self.resource_kind(resolved)

        for target in targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = term
                if self.is_set_expr(value):
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)
                unit = self.unit_of(value)
                if unit:
                    self.unit_env[target.id] = unit
                if kind is not None:
                    self.open_resource(target.id, kind, stmt)
                if target.id in self.global_names:
                    self.record_state_write(f"g:{target.id}", term, stmt)
                # names bound from a pre-await attr read participate in
                # the SIM202 dependency check
                for attr, (count, names) in self.attr_read_at.items():
                    if attr in rhs_attrs:
                        names.add(target.id)
            elif isinstance(target, ast.Tuple) and kind is not None:
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.env[elt.id] = term
                        self.open_resource(elt.id, kind, stmt)
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.env[elt.id] = term
            else:
                attr = self.self_attr(target)
                if attr is not None:
                    self.attr_writes.add(attr)
                    self.record_state_write(attr, term, stmt)
                    self.note_escape(value, weak=False)
                    self.check_async_write(
                        attr, rhs_names, rhs_attrs, awaits_in_rhs,
                        reads_before, stmt,
                    )
                elif isinstance(target, ast.Subscript):
                    self.eval(target.value)
                    self.eval(target.slice)
                    self.note_escape(value, weak=False)

        # a resource passed into any call escapes weakly (ownership moves)
        if kind is None:
            for call in ast.walk(value):
                if isinstance(call, ast.Call):
                    for arg in list(call.args) + [k.value for k in call.keywords]:
                        self.note_escape(arg, weak=True)

    def handle_aug_assign(self, stmt: ast.AugAssign) -> None:
        awaits_before = self.await_count
        self.bump_call_clock(stmt.value)
        term = self.eval(stmt.value)
        awaits_in_rhs = self.await_count - awaits_before
        if isinstance(stmt.target, ast.Name):
            self.env[stmt.target.id] = _join(
                [self.env.get(stmt.target.id, CLEAN), term]
            )
            if stmt.target.id in self.global_names:
                self.record_state_write(f"g:{stmt.target.id}", term, stmt)
            return
        attr = self.self_attr(stmt.target)
        if attr is not None:
            self.attr_writes.add(attr)
            self.attr_reads.add(attr)
            self.record_state_write(attr, term, stmt)
            if self.is_async and not self.lock_depth and awaits_in_rhs:
                # self.x += await f(): the read-modify-write spans a
                # suspension point
                self.async_hazards.append(
                    {
                        "attr": attr,
                        "loc": _loc(stmt),
                        "end": _end(stmt),
                        "read_loc": _loc(stmt),
                    }
                )

    def record_state_write(
        self, attr: str, term: Dict[str, Any], stmt: ast.stmt
    ) -> None:
        self.state_writes.append(
            {"attr": attr, "term": term, "loc": _loc(stmt), "end": _end(stmt)}
        )

    def check_async_write(
        self,
        attr: str,
        rhs_names: set,
        rhs_attrs: set,
        awaits_in_rhs: int,
        reads_before: Dict[str, Tuple[int, set]],
        stmt: ast.stmt,
    ) -> None:
        if not self.is_async or self.lock_depth:
            return
        if awaits_in_rhs and attr in rhs_attrs:
            # read and write of the same attribute with an await between,
            # all inside one statement
            self.async_hazards.append(
                {"attr": attr, "loc": _loc(stmt), "end": _end(stmt),
                 "read_loc": _loc(stmt)}
            )
            return
        prior = reads_before.get(attr)
        if prior is None:
            return
        read_count, bound_names = prior
        if read_count < self.await_count and (
            bound_names & rhs_names or attr in rhs_attrs
        ):
            self.async_hazards.append(
                {"attr": attr, "loc": _loc(stmt), "end": _end(stmt),
                 "read_loc": _loc(stmt)}
            )


class _ModuleExtractor:
    """Drive per-function extraction over one module."""

    def __init__(self, relpath: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.tree = tree
        self.imports = _ImportTable(tree)
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.module_resources: List[Dict[str, Any]] = []
        self.set_attrs: set = set()
        self.function_names: set = {
            n.name
            for n in tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def run(self) -> Dict[str, Any]:
        # pre-pass: set-typed self attributes (shared with the classic pass)
        from ..rules import _SelfSetAttrs

        collector = _SelfSetAttrs()
        collector.visit(self.tree)
        self.set_attrs = collector.set_attrs

        module_body = []
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.extract_function(stmt, parent=None, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self.extract_class(stmt, parent=None)
            else:
                module_body.append(stmt)
        self.extract_module_level(module_body)
        return {
            "path": self.relpath,
            "functions": self.functions,
            "classes": self.classes,
            "module_resources": self.module_resources,
            "imports": {
                "modules": self.imports.modules,
                "from_sites": {
                    k: list(v) for k, v in self.imports.from_sites.items()
                },
            },
        }

    def extract_module_level(self, body: List[ast.stmt]) -> None:
        """Module-scope resource globals (pre-fork state for SIM203)."""
        for stmt in body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not isinstance(value, ast.Call):
                continue
            resolved = self.imports.resolve(_dotted_name(value.func)) or ""
            kind = _RESOURCE_FACTORIES.get(resolved) or _LOCK_FACTORIES.get(resolved)
            if kind is None and (resolved == "Pipe" or resolved.endswith(".Pipe")):
                kind = "pipe"
            if kind is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.module_resources.append(
                        {"scope": "global", "name": target.id, "kind": kind,
                         "loc": _loc(stmt)}
                    )

    def extract_class(self, node: ast.ClassDef, parent: Optional[str]) -> None:
        qual = f"{parent}.{node.name}" if parent else node.name
        methods = []
        resources = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                self.extract_function(stmt, parent=qual, class_name=qual)
            elif isinstance(stmt, ast.ClassDef):
                self.extract_class(stmt, parent=qual)
        # resource attrs: self.X = <factory>() anywhere in the class body
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Assign):
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            resolved = self.imports.resolve(_dotted_name(stmt.value.func)) or ""
            kind = _RESOURCE_FACTORIES.get(resolved) or _LOCK_FACTORIES.get(resolved)
            if kind is None and (resolved == "Pipe" or resolved.endswith(".Pipe")):
                kind = "pipe"
            if kind is None:
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    resources.append(
                        {"scope": "self", "name": target.attr, "kind": kind,
                         "loc": _loc(stmt)}
                    )
        self.classes[qual] = {"methods": methods, "resources": resources}

    def extract_function(
        self,
        node: ast.AST,
        parent: Optional[str],
        class_name: Optional[str],
    ) -> None:
        name = node.name  # type: ignore[attr-defined]
        qual = f"{parent}.{name}" if parent else name
        extractor = _FunctionExtractor(self, qual, node, class_name)
        self.functions[qual] = extractor.run()


def extract_module(relpath: str, source: str) -> Optional[Dict[str, Any]]:
    """Parse and summarize one module; None when it cannot be parsed.

    (Parse failures are the classic pass's SIM100 business — the deep pass
    simply skips what it cannot read.)
    """
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError:
        return None
    return _ModuleExtractor(relpath, tree).run()
